//! Golden regression tests over the experiment registry.
//!
//! Every registry entry's quick-fidelity report is reduced to a **fingerprint** — per table:
//! the title, the row count, and the final row (the headline numbers a figure would plot
//! last) — and compared against the committed expectations below. The whole pipeline is
//! seeded and bit-deterministic across pool sizes and execution modes, so any drift in these
//! strings is a real behavioural change in auction, training, churn, or accounting code —
//! it must be reviewed and, if intended, re-committed here, instead of silently shifting the
//! figures.
//!
//! To regenerate after an intentional change:
//!
//! ```bash
//! cargo test --test golden -- --nocapture 2>&1 | grep -A2 'fingerprint\['
//! ```
//! (the failure output prints the actual fingerprint of every drifted entry).

use fmore::fl::engine::RoundEngine;
use fmore::mec::population::{NodePopulation, PopulationSpec, SpecVersion};
use fmore::sim::experiments::registry::{self, ExperimentReport, Fidelity};
use fmore::sim::experiments::scale::{ScaleConfig, ScaleGame};
use fmore::sim::ScenarioRunner;

/// Reduces a report to its committed-comparable form.
fn fingerprint(report: &ExperimentReport) -> String {
    report
        .tables
        .iter()
        .map(|t| {
            let last = t
                .rows
                .last()
                .map_or_else(|| "<empty>".to_string(), |r| r.join(";"));
            format!("{} [rows={}] last: {}", t.title, t.rows.len(), last)
        })
        .collect::<Vec<_>>()
        .join(" || ")
}

/// The committed quick-fidelity fingerprints, in registry order.
const EXPECTED: &[(&str, &str)] = &[
    (
        "accuracy",
        "Accuracy and loss per round — MNIST-O [rows=3] last: \
         3;0.4917;0.5417;0.4500;1.5406;1.4950;1.6426",
    ),
    (
        "scores",
        "Winner score distribution (Fig. 8) [rows=4] last: FixFL;9.257;7.417;12",
    ),
    (
        "impact-n",
        "Impact of N (Fig. 9) [rows=2] last: 70%;not reached;not reached",
    ),
    (
        "impact-k",
        "Impact of K (Fig. 10) [rows=2] last: 70%;not reached;4",
    ),
    (
        "impact-psi",
        "Impact of ψ (Fig. 11) [rows=3] last: 0.9;9.1;18.2;20.0",
    ),
    (
        "cluster",
        "Cluster deployment: accuracy and training time (Figs. 12-13) [rows=3] last: \
         3;0.3583;40.6;0.3917;47.7",
    ),
    (
        "headline",
        "Headline metrics: FMore vs RandFL [rows=2] last: \
         cluster CIFAR-10 (target 0%);40.4%;-8.5%",
    ),
    (
        "churn-dropout",
        "Dropout sweep: graceful degradation under churn (dynamic MEC) [rows=3] last: \
         0.50;0.3675;0.3650;0.417;0.417;302.0;302.0",
    ),
    (
        "churn-time",
        "Cluster comparison under churn: accuracy and training time (dynamic MEC) [rows=6] \
         last: t-to-acc 0.30 (s);68.5;;182.5;",
    ),
    (
        "churn-waste",
        "Straggler sweep: payment waste under deadline pressure (dynamic MEC) [rows=3] last: \
         0.80;6.796;0.947;17;2;0.900",
    ),
    (
        "scale-selection",
        "Population-scale selection: streamed top-K over lazily derived bidders [rows=3] last: \
         20000;20000;64;8.7094;0.7587;128;-",
    ),
    (
        "scale-memory",
        "Population-scale memory: streamed peak vs dense bid store [rows=3] last: \
         20000;202.0;937.5;4.6x",
    ),
    (
        "scale-parity",
        "Population-scale parity: streamed selection vs dense full-sort [rows=2] last: \
         5000;64;yes;0.0e0",
    ),
    (
        "service-soak",
        "Service soak: 4 concurrent jobs on one pool [rows=4] last: \
         job3-psi-FMore-v2;psi-FMore;v2;3;0;7.0;3.8042;yes",
    ),
    (
        "chaos-soak",
        "Chaos soak: 4 tenants, fault plan on the odd half [rows=4] last: \
         job3-psi-FMore-v2-chaos;yes;3;2;6;1;2;1.00;yes;yes",
    ),
    (
        "adversary-soak",
        "Byzantine convergence: 10-member panel, 20 rounds, ~30% poisoned [rows=5] last: \
         krum;99.9;99.9;0.0;40;robust || \
         Adversary soak: 4 tenants, Byzantine plan + reputation on the odd half [rows=4] last: \
         job3-psi-FMore-v2-adv;trimmed-mean;yes;8;1;14;10;yes",
    ),
];

/// FNV-1a offset basis; the digests below fold exact bit patterns, so any single-ULP
/// drift anywhere in the v2 derivation or selection pipeline changes them.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one 64-bit word into an FNV-1a digest.
fn fold_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Folds the exact bits of one `f64` into an FNV-1a digest.
fn fold_bits(h: u64, x: f64) -> u64 {
    fold_word(h, x.to_bits())
}

/// The committed digests of the v2 fused-stream contract: θ draws, per-round profile
/// draws, and one full streamed selection round (winner ids, scores, payments).
///
/// [`SpecVersion::V2`] has no registry entry, so these digests **are** its goldens: v1's
/// fingerprints pin the original two-stream contract above, and these pin the fused
/// single-stream derivation the population-scale fast path runs on. Drift means the v2
/// contract changed — review it, and if intended re-commit the printed actual values.
const V2_DIGESTS: [u64; 3] = [
    0xcb9f_3f96_ef72_fdf4,
    0x6f64_c2af_a705_6325,
    0x4f8a_3889_a0c9_e718,
];

#[test]
fn v2_population_and_selection_digests_match_committed_values() {
    let spec = PopulationSpec::scale_default(4_096, 2_020).with_version(SpecVersion::V2);
    let population = NodePopulation::new(spec).expect("valid spec");
    let mut theta_digest = FNV_OFFSET;
    let mut profile_digest = FNV_OFFSET;
    for i in 0..population.len() {
        theta_digest = fold_bits(theta_digest, population.theta(i));
        for round in 0..3 {
            let p = population.profile(i, round);
            profile_digest = fold_bits(profile_digest, p.cpu_cores);
            profile_digest = fold_bits(profile_digest, p.bandwidth_mbps);
            profile_digest = fold_bits(profile_digest, p.data_size);
        }
    }
    let config = ScaleConfig::quick().with_spec_version(SpecVersion::V2);
    let game = ScaleGame::new(5_000, &config).expect("game builds");
    let stage = game
        .run_streamed(&RoundEngine::inline(), &config)
        .expect("streamed round");
    let mut selection_digest = FNV_OFFSET;
    for w in &stage.winners {
        selection_digest = fold_word(selection_digest, w.node.0);
        selection_digest = fold_bits(selection_digest, w.score);
        selection_digest = fold_bits(selection_digest, w.payment);
    }
    let actual = [theta_digest, profile_digest, selection_digest];
    assert_eq!(
        actual, V2_DIGESTS,
        "v2 goldens drifted (θ, profile, selection) — actual {actual:#x?}; if the change is \
         intended, update V2_DIGESTS in tests/golden.rs"
    );
}

#[test]
fn every_registry_entry_matches_its_committed_fingerprint() {
    let runner = ScenarioRunner::new();
    let reports = registry::run_all(&runner, Fidelity::Quick).expect("registry runs");
    assert_eq!(reports.len(), EXPECTED.len(), "registry size drifted");
    let mut drifted = Vec::new();
    for (report, (name, expected)) in reports.iter().zip(EXPECTED) {
        assert_eq!(&report.name, name, "registry order drifted");
        let actual = fingerprint(report);
        if actual != *expected {
            println!("fingerprint[{name}]\n  expected: {expected}\n  actual:   {actual}");
            drifted.push(*name);
        }
    }
    assert!(
        drifted.is_empty(),
        "golden fingerprints drifted for {drifted:?} — see the printed actual values; if the \
         change is intended, update EXPECTED in tests/golden.rs"
    );
}
