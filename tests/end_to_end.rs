//! Cross-crate integration tests: auction → federated learning → MEC cluster → experiment
//! harness, exercised through the public `fmore` facade exactly as a downstream user would.

use fmore::auction::prelude::*;
use fmore::auction::properties;
use fmore::fl::config::FlConfig;
use fmore::fl::selection::SelectionStrategy;
use fmore::fl::trainer::FederatedTrainer;
use fmore::mec::cluster::{ClusterConfig, ClusterStrategy, MecCluster};
use fmore::ml::dataset::TaskKind;
use fmore::numerics::{seeded_rng, UniformDist};
use fmore::sim::experiments::{accuracy, headline, scores};
use fmore::sim::ScenarioRunner;

/// The full FMore pipeline on a small task: equilibrium bidding, auction-based selection,
/// local training, aggregation — and the selection advantage it is supposed to deliver.
#[test]
fn fmore_selects_better_nodes_than_random_and_learns() {
    let mut config = FlConfig::fast_test(TaskKind::MnistO);
    config.clients = 20;
    config.winners_per_round = 5;
    config.partition.clients = 20;
    config.train_samples = 1200;
    config.rounds_sanity();

    let mut fmore = FederatedTrainer::new(config.clone(), SelectionStrategy::fmore(), 3).unwrap();
    let mut random = FederatedTrainer::new(config, SelectionStrategy::random(), 3).unwrap();

    let fmore_history = fmore.run(4).unwrap();
    let random_history = random.run(4).unwrap();

    // FMore pays its winners, RandFL does not.
    assert!(fmore_history.total_payment() > 0.0);
    assert_eq!(random_history.total_payment(), 0.0);

    // FMore's winners carry more data into each aggregation round than random selection
    // (that is exactly what the scoring rule rewards).
    let mean_data = |h: &fmore::fl::metrics::TrainingHistory| {
        let total: usize = h.rounds.iter().map(|r| r.total_data()).sum();
        total as f64 / h.rounds.len() as f64
    };
    assert!(
        mean_data(&fmore_history) >= mean_data(&random_history) * 0.9,
        "FMore should not feed dramatically less data than random selection"
    );

    // Both learn something.
    assert!(fmore_history.final_accuracy() > 0.2);
    assert!(random_history.final_accuracy() > 0.1);
}

// Small extension trait so the test reads naturally; verifies the config is valid.
trait ConfigSanity {
    fn rounds_sanity(&self);
}
impl ConfigSanity for FlConfig {
    fn rounds_sanity(&self) {
        assert!(self.validate().is_ok());
    }
}

/// The equilibrium strategy produced by the auction crate is consistent with the theory the
/// paper states (Theorems 2, 3, 5) when driven through the facade crate.
#[test]
fn equilibrium_theory_holds_through_the_facade() {
    let build = |n: usize, k: usize| {
        EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0]).unwrap())
            .cost(QuadraticCost::new(vec![1.0]).unwrap())
            .theta(UniformDist::new(0.2, 1.0).unwrap())
            .bounds(vec![(0.0, 4.0)])
            .population(n)
            .winners(k)
            .grid_size(96)
            .build()
            .unwrap()
    };
    let by_n: Vec<_> = [10, 20, 40].iter().map(|&n| build(n, 4)).collect();
    assert!(properties::profit_decreases_with_population(&by_n, 0.4, 1e-6).unwrap());
    let by_k: Vec<_> = [2, 4, 8].iter().map(|&k| build(30, k)).collect();
    assert!(properties::profit_increases_with_winners(&by_k, 0.4, 1e-6).unwrap());

    let solver = build(30, 6);
    let scoring = Additive::new(vec![1.0]).unwrap();
    assert!(
        properties::incentive_compatibility_holds(&solver, &scoring, 0.5, &[0.5, 0.9]).unwrap()
    );
}

/// One auction round run end-to-end through the facade: bids in, ranked outcome and
/// first-price payments out.
#[test]
fn auction_round_through_the_facade() {
    let scoring = CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap();
    let auction = Auction::new(
        ScoringRule::new(scoring),
        2,
        SelectionRule::TopK,
        PricingRule::FirstPrice,
    );
    let bids = vec![
        SubmittedBid::new(NodeId(0), Quality::new(vec![0.9, 0.8]), 2.0),
        SubmittedBid::new(NodeId(1), Quality::new(vec![0.5, 0.5]), 1.0),
        SubmittedBid::new(NodeId(2), Quality::new(vec![0.95, 0.9]), 1.5),
    ];
    let outcome = auction.run(bids, &mut seeded_rng(1)).unwrap();
    assert_eq!(outcome.winners().len(), 2);
    // Node 2 has the best quality at a lower ask than node 0: it must rank first.
    assert_eq!(outcome.ranked()[0].node, NodeId(2));
    assert!(outcome.total_payment() > 0.0);
}

/// The MEC cluster simulation produces monotone cumulative time and pays only under FMore.
#[test]
fn mec_cluster_round_trip() {
    let config = ClusterConfig::fast_test();
    let mut fmore = MecCluster::new(config.clone(), ClusterStrategy::FMore, 11).unwrap();
    let mut randfl = MecCluster::new(config, ClusterStrategy::RandFL, 11).unwrap();
    let fmore_history = fmore.run(3).unwrap();
    let randfl_history = randfl.run(3).unwrap();

    assert!(fmore.ledger().total() > 0.0);
    assert_eq!(randfl.ledger().total(), 0.0);
    for history in [&fmore_history, &randfl_history] {
        let times = history.cumulative_time_series();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        assert!(history.final_accuracy() >= 0.0);
    }
}

/// The experiment harness produces the figures and the headline table end to end.
#[test]
fn experiment_harness_produces_figures_and_headline() {
    let runner = ScenarioRunner::new();
    let figure =
        accuracy::run(&runner, &accuracy::AccuracyConfig::quick(TaskKind::MnistO)).unwrap();
    assert_eq!(figure.curves.len(), 3);
    let table = figure.to_table().to_markdown();
    assert!(table.contains("FMore accuracy"));

    let score_dist =
        scores::run(&runner, &accuracy::AccuracyConfig::quick(TaskKind::MnistO)).unwrap();
    assert!(score_dist.mean_winner_score("FMore") >= score_dist.mean_winner_score("RandFL"));

    let sim_headline = headline::simulation_headline(&figure, 0.3);
    let md = headline::headline_table(&[sim_headline], None).to_markdown();
    assert!(md.contains("simulation MNIST-O"));
}

/// Reproducibility across the whole stack: the same seed yields the same history, a different
/// seed does not.
#[test]
fn whole_stack_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut trainer = FederatedTrainer::new(
            FlConfig::fast_test(TaskKind::MnistF),
            SelectionStrategy::fmore(),
            seed,
        )
        .unwrap();
        trainer.run(2).unwrap()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

/// The population-scale smoke CI runs by name: a 100 000-bidder selection round (bid
/// derivation → sharded scoring → bounded top-K → payments) through the streaming auction
/// core, cross-checked against the dense full-sort path at a size where materialising the
/// population is still cheap.
#[test]
fn hundred_thousand_bidder_selection_smoke() {
    use fmore::fl::engine::RoundEngine;
    use fmore::sim::experiments::scale::{ScaleConfig, ScaleGame};

    let mut config = ScaleConfig::quick();
    config.populations = vec![100_000];
    let game = ScaleGame::new(100_000, &config).expect("scale game builds");
    let stage = game
        .run_streamed(&RoundEngine::inline(), &config)
        .expect("streamed round runs");
    assert_eq!(stage.offered, 100_000);
    assert_eq!(stage.winners.len(), 64, "a full winner set at 1e5 bidders");
    assert!(stage.winners.iter().all(|w| w.payment > 0.0));
    // Winners arrive in rank order with strictly positive scores.
    assert!(stage.winners.windows(2).all(|w| w[0].score >= w[1].score));
    // Transient bid memory stays shard-scale: far below the ~4.8 MB a dense store of
    // 100 000 three-dimensional bids would hold.
    assert!(
        stage.peak_bid_bytes < 1_000_000,
        "peak bid bytes {} is no longer shard-scale",
        stage.peak_bid_bytes
    );

    // Dense parity at 20 000 bidders: same bids, same winners, same payments, bit for bit.
    let parity_n = 20_000;
    let game = ScaleGame::new(parity_n, &config).expect("scale game builds");
    let streamed = game
        .run_streamed(&RoundEngine::inline(), &config)
        .expect("streamed round runs");
    let dense = game.run_dense().expect("dense round runs");
    assert_eq!(streamed.winners.len(), dense.winners().len());
    for (s, d) in streamed.winners.iter().zip(dense.winners()) {
        assert_eq!(s.node, d.node);
        assert_eq!(s.payment.to_bits(), d.payment.to_bits());
    }
}

/// Named CI smoke for the bounded ψ admission at scale: one streamed ψ-FMore (ψ = 0.8)
/// selection round over 10,000,000 lazily derived bidders — the histogram-planned
/// admission walk plus (when needed) the refinement pass — completing with a full winner
/// set at the shard-scale peak the 1e5 top-K smoke holds. Ignored by default (a 1e7 round
/// is too slow for the debug-mode tier-1 run); CI runs it by name in release.
#[test]
#[ignore = "ten-million-bidder round; CI runs it by name in release"]
fn ten_million_bidder_psi_selection_smoke() {
    use fmore::auction::SelectionRule;
    use fmore::fl::engine::RoundEngine;
    use fmore::sim::experiments::scale::{ScaleConfig, ScaleGame};

    let config = ScaleConfig::paper();
    let game = ScaleGame::with_selection(10_000_000, &config, SelectionRule::PsiFMore { psi: 0.8 })
        .expect("scale game builds");
    let stage = game
        .run_streamed(&RoundEngine::inline(), &config)
        .expect("streamed round runs");
    assert_eq!(stage.offered, 10_000_000);
    assert_eq!(
        stage.winners.len(),
        64,
        "a full ψ winner set at 1e7 bidders"
    );
    assert!(stage.winners.iter().all(|w| w.payment > 0.0));
    // The memory contract of the two-pass admission: resident bid bytes stay bounded by
    // the shard and the standing pool, three orders of magnitude below a dense store.
    assert!(
        stage.peak_bid_bytes < 1_000_000,
        "peak bid bytes {} is no longer shard-scale",
        stage.peak_bid_bytes
    );
}

/// CI smoke for the always-on service: the `service-soak` registry entry drives concurrent
/// mixed-scheme jobs through one `AuctionService` at quick fidelity, and every job's
/// interleaved history matches its solo run (the entry itself errors otherwise).
#[test]
fn service_soak_quick_smoke() {
    use fmore::sim::experiments::registry::{find, Fidelity};
    let runner = ScenarioRunner::new();
    let report = find("service-soak")
        .expect("service-soak is registered")
        .run(&runner, Fidelity::Quick)
        .expect("quick soak runs");
    assert_eq!(report.name, "service-soak");
    let md = report.to_markdown();
    assert!(md.contains("psi-FMore"), "mixed schemes soaked:\n{md}");
    assert!(
        md.contains("v1") && md.contains("v2"),
        "both stream contracts soaked"
    );
    assert!(
        !md.contains("NO"),
        "every job matched its solo history:\n{md}"
    );
}

/// CI smoke for the fault layer: the `chaos-soak` registry entry runs the soak fleet with
/// an active fault plan on half the tenants and asserts the full robustness contract —
/// healthy jobs bit-identical to solo, faulted jobs recovered within their retry budget,
/// and a mid-run checkpoint/restore leg matching the uninterrupted run (the entry itself
/// errors on any violation; the verdict columns make a violation visible here too).
#[test]
fn chaos_soak_quick_smoke() {
    use fmore::sim::experiments::registry::{find, Fidelity};
    let runner = ScenarioRunner::new();
    let report = find("chaos-soak")
        .expect("chaos-soak is registered")
        .run(&runner, Fidelity::Quick)
        .expect("quick chaos soak runs");
    assert_eq!(report.name, "chaos-soak");
    let md = report.to_markdown();
    assert!(md.contains("-chaos"), "faulted tenants are labelled:\n{md}");
    assert!(
        !md.contains("NO"),
        "every robustness verdict is green:\n{md}"
    );
}

/// CI smoke for the adversary layer: the `adversary-soak` registry entry runs the
/// Byzantine convergence panel plus the reputation-loop fleet at quick fidelity and
/// asserts the full resilience contract — robust rules within 5 points of clean, plain
/// FedAvg degraded under the identical attack, every tenant bit-identical to its solo
/// run, and the adversarial win-rate falling from the early to the late half (the entry
/// itself errors on any violation; the verdict columns make a violation visible here too).
#[test]
fn adversary_soak_quick_smoke() {
    use fmore::sim::experiments::registry::{find, Fidelity};
    let runner = ScenarioRunner::new();
    let report = find("adversary-soak")
        .expect("adversary-soak is registered")
        .run(&runner, Fidelity::Quick)
        .expect("quick adversary soak runs");
    assert_eq!(report.name, "adversary-soak");
    let md = report.to_markdown();
    assert!(
        md.contains("-adv"),
        "adversarial tenants are labelled:\n{md}"
    );
    assert!(md.contains("robust"), "robust verdicts are rendered:\n{md}");
    assert!(
        md.contains("degrades"),
        "the FedAvg contrast is rendered:\n{md}"
    );
    assert!(
        !md.contains("NO"),
        "every resilience verdict is green:\n{md}"
    );
}
