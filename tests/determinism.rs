//! Determinism guarantees of the round engine: for every selection scheme, the same seed
//! produces a bit-identical `TrainingHistory` across repeated runs — and across execution
//! substrates (inline, spawn-per-round, 1-thread pool, N-thread pool).
//!
//! This is the contract the pooled engine was built around: results are collected into
//! pre-sized slots indexed by submission order and every training job owns a seed derived
//! from `(run seed, round, client)`, so thread scheduling can never leak into the output.

use fmore::fl::config::FlConfig;
use fmore::fl::engine::RoundEngine;
use fmore::fl::metrics::TrainingHistory;
use fmore::fl::selection::SelectionStrategy;
use fmore::fl::trainer::FederatedTrainer;
use fmore::mec::cluster::{ClusterConfig, ClusterStrategy, MecCluster};
use fmore::ml::dataset::TaskKind;
use fmore::sim::{ScenarioRunner, ScenarioSpec};

const ROUNDS: usize = 3;
const SEED: u64 = 2024;

fn strategies() -> Vec<(&'static str, SelectionStrategy)> {
    vec![
        ("RandFL", SelectionStrategy::random()),
        ("FixFL", SelectionStrategy::fixed_first(4)),
        ("FMore", SelectionStrategy::fmore()),
        ("psi-FMore", SelectionStrategy::psi_fmore(0.6)),
    ]
}

fn history_with(strategy: SelectionStrategy, engine: RoundEngine, seed: u64) -> TrainingHistory {
    let mut trainer = FederatedTrainer::with_engine(
        FlConfig::fast_test(TaskKind::MnistO),
        strategy,
        seed,
        engine,
    )
    .expect("fast config is valid");
    trainer.run(ROUNDS).expect("training runs")
}

/// Same seed ⇒ bit-identical history on repeated runs; different seed ⇒ different history.
#[test]
fn repeated_runs_are_bit_identical_per_scheme() {
    for (name, strategy) in strategies() {
        let a = history_with(strategy.clone(), RoundEngine::default(), SEED);
        let b = history_with(strategy.clone(), RoundEngine::default(), SEED);
        assert_eq!(
            a, b,
            "{name}: same seed must reproduce the identical history"
        );
        let c = history_with(strategy, RoundEngine::default(), SEED + 1);
        assert_ne!(a, c, "{name}: a different seed must change the history");
    }
}

/// A 1-thread pool and an N-thread pool produce bit-identical histories for every scheme —
/// worker count is a pure wall-clock knob.
#[test]
fn pool_size_one_and_n_agree_per_scheme() {
    for (name, strategy) in strategies() {
        let one = history_with(strategy.clone(), RoundEngine::pooled(1), SEED);
        let many = history_with(strategy.clone(), RoundEngine::pooled(4), SEED);
        assert_eq!(one, many, "{name}: pool size must not affect results");
    }
}

/// All four execution substrates agree: inline, the seed's spawn-per-round path, and pools.
#[test]
fn every_execution_mode_agrees_per_scheme() {
    for (name, strategy) in strategies() {
        let inline = history_with(strategy.clone(), RoundEngine::inline(), SEED);
        let spawned = history_with(strategy.clone(), RoundEngine::spawn_per_round(), SEED);
        let pooled = history_with(strategy.clone(), RoundEngine::pooled(3), SEED);
        assert_eq!(inline, spawned, "{name}: spawn-per-round must match inline");
        assert_eq!(inline, pooled, "{name}: pooled must match inline");
    }
}

/// The scenario runner inherits the guarantee: running specs through differently sized
/// runner pools — and in parallel vs sequentially — changes nothing.
#[test]
fn scenario_runner_is_deterministic_across_pool_sizes() {
    let specs: Vec<ScenarioSpec> = strategies()
        .into_iter()
        .map(|(name, strategy)| {
            ScenarioSpec::new(
                name,
                FlConfig::fast_test(TaskKind::MnistO),
                strategy,
                ROUNDS,
                SEED,
            )
        })
        .collect();
    let one = ScenarioRunner::with_threads(1).run_all(&specs).unwrap();
    let many = ScenarioRunner::with_threads(4).run_all(&specs).unwrap();
    assert_eq!(one, many);
    let sequential: Vec<_> = specs
        .iter()
        .map(|s| ScenarioRunner::with_threads(2).run(s).unwrap())
        .collect();
    assert_eq!(one, sequential);
}

/// The MEC cluster — which funnels its auction through the same engine — is deterministic
/// across engine substrates too.
#[test]
fn cluster_is_deterministic_across_engines() {
    let run = |engine: RoundEngine| {
        let mut cluster = MecCluster::with_engine(
            ClusterConfig::fast_test(),
            ClusterStrategy::FMore,
            SEED,
            engine,
        )
        .expect("fast cluster config is valid");
        cluster.run(ROUNDS).expect("cluster runs")
    };
    let inline = run(RoundEngine::inline());
    assert_eq!(inline, run(RoundEngine::pooled(1)));
    assert_eq!(inline, run(RoundEngine::pooled(4)));
    assert_eq!(inline, run(RoundEngine::spawn_per_round()));
}
