//! Determinism guarantees of the round engine: for every selection scheme, the same seed
//! produces a bit-identical `TrainingHistory` across repeated runs — and across execution
//! substrates (inline, spawn-per-round, 1-thread pool, N-thread pool).
//!
//! This is the contract the pooled engine was built around: results are collected into
//! pre-sized slots indexed by submission order and every training job owns a seed derived
//! from `(run seed, round, client)`, so thread scheduling can never leak into the output.

use fmore::fl::config::FlConfig;
use fmore::fl::engine::{RoundEngine, Task, WorkerPool};
use fmore::fl::metrics::TrainingHistory;
use fmore::fl::selection::SelectionStrategy;
use fmore::fl::trainer::FederatedTrainer;
use fmore::mec::cluster::{ClusterConfig, ClusterStrategy, MecCluster};
use fmore::mec::dynamics::{ChurnModel, DynamicsConfig};
use fmore::ml::dataset::TaskKind;
use fmore::sim::{ClusterScenarioSpec, ScenarioRunner, ScenarioSpec};

const ROUNDS: usize = 3;
const SEED: u64 = 2024;

fn strategies() -> Vec<(&'static str, SelectionStrategy)> {
    vec![
        ("RandFL", SelectionStrategy::random()),
        ("FixFL", SelectionStrategy::fixed_first(4)),
        ("FMore", SelectionStrategy::fmore()),
        ("psi-FMore", SelectionStrategy::psi_fmore(0.6)),
    ]
}

fn history_with(strategy: SelectionStrategy, engine: RoundEngine, seed: u64) -> TrainingHistory {
    let mut trainer = FederatedTrainer::with_engine(
        FlConfig::fast_test(TaskKind::MnistO),
        strategy,
        seed,
        engine,
    )
    .expect("fast config is valid");
    trainer.run(ROUNDS).expect("training runs")
}

/// Same seed ⇒ bit-identical history on repeated runs; different seed ⇒ different history.
#[test]
fn repeated_runs_are_bit_identical_per_scheme() {
    for (name, strategy) in strategies() {
        let a = history_with(strategy.clone(), RoundEngine::default(), SEED);
        let b = history_with(strategy.clone(), RoundEngine::default(), SEED);
        assert_eq!(
            a, b,
            "{name}: same seed must reproduce the identical history"
        );
        let c = history_with(strategy, RoundEngine::default(), SEED + 1);
        assert_ne!(a, c, "{name}: a different seed must change the history");
    }
}

/// A 1-thread pool and an N-thread pool produce bit-identical histories for every scheme —
/// worker count is a pure wall-clock knob.
#[test]
fn pool_size_one_and_n_agree_per_scheme() {
    for (name, strategy) in strategies() {
        let one = history_with(strategy.clone(), RoundEngine::pooled(1), SEED);
        let many = history_with(strategy.clone(), RoundEngine::pooled(4), SEED);
        assert_eq!(one, many, "{name}: pool size must not affect results");
    }
}

/// All four execution substrates agree: inline, the seed's spawn-per-round path, and pools.
#[test]
fn every_execution_mode_agrees_per_scheme() {
    for (name, strategy) in strategies() {
        let inline = history_with(strategy.clone(), RoundEngine::inline(), SEED);
        let spawned = history_with(strategy.clone(), RoundEngine::spawn_per_round(), SEED);
        let pooled = history_with(strategy.clone(), RoundEngine::pooled(3), SEED);
        assert_eq!(inline, spawned, "{name}: spawn-per-round must match inline");
        assert_eq!(inline, pooled, "{name}: pooled must match inline");
    }
}

/// The scenario runner inherits the guarantee: running specs through differently sized
/// runner pools — and in parallel vs sequentially — changes nothing.
#[test]
fn scenario_runner_is_deterministic_across_pool_sizes() {
    let specs: Vec<ScenarioSpec> = strategies()
        .into_iter()
        .map(|(name, strategy)| {
            ScenarioSpec::new(
                name,
                FlConfig::fast_test(TaskKind::MnistO),
                strategy,
                ROUNDS,
                SEED,
            )
        })
        .collect();
    let one = ScenarioRunner::with_threads(1).run_all(&specs).unwrap();
    let many = ScenarioRunner::with_threads(4).run_all(&specs).unwrap();
    assert_eq!(one, many);
    let sequential: Vec<_> = specs
        .iter()
        .map(|s| ScenarioRunner::with_threads(2).run(s).unwrap())
        .collect();
    assert_eq!(one, sequential);
}

/// The MEC cluster — which funnels its auction through the same engine — is deterministic
/// across engine substrates too.
#[test]
fn cluster_is_deterministic_across_engines() {
    let run = |engine: RoundEngine| {
        let mut cluster = MecCluster::with_engine(
            ClusterConfig::fast_test(),
            ClusterStrategy::FMore,
            SEED,
            engine,
        )
        .expect("fast cluster config is valid");
        cluster.run(ROUNDS).expect("cluster runs")
    };
    let inline = run(RoundEngine::inline());
    assert_eq!(inline, run(RoundEngine::pooled(1)));
    assert_eq!(inline, run(RoundEngine::pooled(4)));
    assert_eq!(inline, run(RoundEngine::spawn_per_round()));
}

/// The churn-capable cluster inherits the full guarantee: dropouts, stragglers, deadline
/// misses, and re-auction waves are drawn on the control thread, so a dynamic run is
/// bit-identical across inline, spawn-per-round, and 1-vs-N-thread pooled execution — for
/// both schemes.
#[test]
fn dynamic_cluster_is_deterministic_across_engines() {
    let dynamics = DynamicsConfig::new(
        ChurnModel::edge_default()
            .with_dropout(0.3)
            .with_stragglers(0.3, 5.0),
    )
    .with_deadline(70.0);
    for strategy in [ClusterStrategy::FMore, ClusterStrategy::RandFL] {
        let run = |engine: RoundEngine| {
            let config = ClusterConfig::fast_test().with_dynamics(dynamics);
            let mut cluster = MecCluster::with_engine(config, strategy, SEED, engine)
                .expect("dynamic cluster config is valid");
            cluster.run(ROUNDS).expect("dynamic cluster runs")
        };
        let inline = run(RoundEngine::inline());
        assert_eq!(inline, run(RoundEngine::pooled(1)), "{strategy:?}");
        assert_eq!(inline, run(RoundEngine::pooled(4)), "{strategy:?}");
        assert_eq!(inline, run(RoundEngine::spawn_per_round()), "{strategy:?}");
        // Churn actually fired — the guarantee is not vacuous.
        assert!(
            inline.total_dropouts() + inline.total_stragglers() > 0,
            "{strategy:?}: churn model produced no events"
        );
    }
}

/// The registry-facing path of the acceptance criterion: a dropout-sweep scenario pair runs
/// bit-identically through 1-thread and N-thread scenario runners.
#[test]
fn dropout_sweep_scenarios_agree_across_runner_pool_sizes() {
    let dynamics = DynamicsConfig::new(ChurnModel::stable().with_dropout(0.5)).with_deadline(60.0);
    let specs: Vec<ClusterScenarioSpec> = [ClusterStrategy::FMore, ClusterStrategy::RandFL]
        .into_iter()
        .map(|strategy| {
            ClusterScenarioSpec::new(
                strategy.name(),
                ClusterConfig::fast_test(),
                strategy,
                ROUNDS,
                SEED,
            )
            .with_dynamics(dynamics)
        })
        .collect();
    let one = ScenarioRunner::with_threads(1)
        .run_clusters(&specs)
        .unwrap();
    let many = ScenarioRunner::with_threads(4)
        .run_clusters(&specs)
        .unwrap();
    assert_eq!(one, many);
    let sequential: Vec<_> = specs
        .iter()
        .map(|s| ScenarioRunner::with_threads(2).run_cluster(s).unwrap())
        .collect();
    assert_eq!(one, sequential);
}

// ---------------------------------------------------------------------------
// WorkerPool stress: churn-sized fan-outs and panic recovery.
// ---------------------------------------------------------------------------

/// A churn-sized fan-out (hundreds of tasks, uneven durations) returns bit-identical results
/// across 1/2/N-thread pools and inline execution.
#[test]
fn churn_sized_fanout_is_deterministic_across_thread_counts() {
    let make_tasks = || -> Vec<Task<u64>> {
        (0..512u64)
            .map(|i| {
                Box::new(move || {
                    // Seeded per-task computation with uneven cost, like a round whose
                    // stragglers run long.
                    let mut rng = fmore::numerics::seeded_rng(i);
                    let spins = 1 + (i % 17) as usize * 50;
                    let mut acc = 0u64;
                    for _ in 0..spins {
                        acc = acc
                            .wrapping_add(rand::Rng::gen::<u64>(&mut rng))
                            .rotate_left(7);
                    }
                    acc
                }) as Task<u64>
            })
            .collect()
    };
    let inline: Vec<u64> = make_tasks().into_iter().map(|t| t()).collect();
    for threads in [1usize, 2, 8] {
        let pool = WorkerPool::new(threads);
        assert_eq!(
            pool.run_indexed(make_tasks()),
            inline,
            "{threads}-thread pool diverged from inline"
        );
        // A second wave on the same pool stays correct (no leftover state).
        assert_eq!(pool.run_indexed(make_tasks()), inline);
    }
}

/// A panicking task propagates to the submitter but must not kill the worker: the pool keeps
/// its full capacity and stays deterministic for subsequent churn-sized waves.
#[test]
fn pool_recovers_from_panicking_tasks_under_load() {
    let pool = WorkerPool::new(4);
    for wave in 0..3 {
        // Wave with one poisoned task among many.
        let mut tasks: Vec<Task<usize>> = (0..128usize)
            .map(|i| Box::new(move || i * 3) as Task<usize>)
            .collect();
        tasks[64] = Box::new(|| panic!("poisoned task"));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run_indexed(tasks)));
        assert!(
            result.is_err(),
            "wave {wave}: the panic must reach the submitter"
        );

        // The pool is still fully usable and ordered afterwards.
        let clean: Vec<Task<usize>> = (0..256usize)
            .map(|i| Box::new(move || i + wave) as Task<usize>)
            .collect();
        assert_eq!(
            pool.run_indexed(clean),
            (0..256).map(|i| i + wave).collect::<Vec<_>>(),
            "wave {wave}: pool lost capacity or ordering after a panic"
        );
    }
}

/// The per-slot panic markers of `run_indexed_checked` distinguish "this worker's job
/// died" from "this job produced an empty result": healthy slots still deliver (including
/// genuinely empty values), the panicked slot carries its index and message, and the pool
/// keeps full capacity for the next wave. Before the markers existed, a panicked job was
/// indistinguishable from a missing result until the whole wave's panic propagated.
#[test]
fn panic_markers_distinguish_dead_jobs_from_empty_results() {
    let pool = WorkerPool::new(4);
    let mut tasks: Vec<Task<Vec<u64>>> = (0..64usize)
        .map(|i| {
            Box::new(move || {
                if i % 2 == 0 {
                    Vec::new() // a legitimately empty result
                } else {
                    vec![i as u64]
                }
            }) as Task<Vec<u64>>
        })
        .collect();
    tasks[13] = Box::new(|| panic!("churned mid-round"));
    let results = pool.run_indexed_checked(tasks);
    assert_eq!(results.len(), 64);
    for (i, result) in results.iter().enumerate() {
        match result {
            Err(marker) => {
                assert_eq!(i, 13, "only slot 13 was poisoned");
                assert_eq!(marker.slot, 13);
                assert!(marker.message.contains("churned mid-round"));
            }
            Ok(value) if i % 2 == 0 => {
                assert!(value.is_empty(), "slot {i} should be empty-but-alive");
            }
            Ok(value) => assert_eq!(value, &vec![i as u64]),
        }
    }
    // Full capacity afterwards: a clean churn-sized wave delivers in order.
    let clean: Vec<Task<usize>> = (0..256usize)
        .map(|i| Box::new(move || i) as Task<usize>)
        .collect();
    let values: Vec<usize> = pool
        .run_indexed_checked(clean)
        .into_iter()
        .map(|r| r.expect("clean wave has no panics"))
        .collect();
    assert_eq!(values, (0..256).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------------
// Slot-state reuse: scratch arenas must not bleed between rounds.
// ---------------------------------------------------------------------------

/// Reusing per-slot training state (model instances + scratch arenas) across consecutive
/// `run_round` calls on the same pool is bit-identical to paying the warm-up again with
/// fresh state every round — and to a second trainer running on its own fresh pool. Any
/// scratch value leaking from round N into round N+1 would break this equality.
#[test]
fn arena_reuse_does_not_bleed_between_rounds() {
    for (name, strategy) in strategies() {
        // Reference: slots reused across all rounds on a shared pool.
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let mut reused = FederatedTrainer::with_engine(
            FlConfig::fast_test(TaskKind::MnistO),
            strategy.clone(),
            SEED,
            RoundEngine::with_pool(std::sync::Arc::clone(&pool)),
        )
        .expect("fast config is valid");
        let reference: Vec<_> = (0..ROUNDS)
            .map(|_| reused.run_round().expect("round runs"))
            .collect();

        // Same pool, but per-slot scratch state dropped between every round.
        let mut cleared = FederatedTrainer::with_engine(
            FlConfig::fast_test(TaskKind::MnistO),
            strategy.clone(),
            SEED,
            RoundEngine::with_pool(pool),
        )
        .expect("fast config is valid");
        for (round, expected) in reference.iter().enumerate() {
            let metrics = cleared.run_round().expect("round runs");
            assert_eq!(
                &metrics, expected,
                "{name}: round {round} diverged when slot state was cleared between rounds"
            );
            cleared.clear_slot_state();
        }

        // A fresh trainer on a fresh pool agrees too.
        let fresh = history_with(strategy, RoundEngine::pooled(2), SEED);
        assert_eq!(
            fresh.rounds, reference,
            "{name}: fresh-pool run diverged from the slot-reusing run"
        );
    }
}

// ---------------------------------------------------------------------------
// Population-scale streaming: sharding and pool width must not exist in the output.
// ---------------------------------------------------------------------------

/// A streamed population selection round is bit-identical across shard counts (1 / 2 / 8
/// shards) and execution substrates (inline, 1-thread, 8-thread pools): tie-break keys
/// depend only on a bid's global stream position, and shards are merged into the bounded
/// selector in population order regardless of which worker scored them.
#[test]
fn streamed_selection_is_identical_across_shard_counts_and_pools() {
    use fmore::sim::experiments::scale::{ScaleConfig, ScaleGame};
    let n = 3_000usize;
    let base = ScaleConfig {
        populations: vec![n],
        winners: 32,
        shard_size: n, // one shard
        reserve: 32,
        parity_limit: n,
        grid_size: 48,
        seed: 99,
        timed: false,
        spec_version: fmore::mec::population::SpecVersion::V1,
    };

    let reference = {
        let game = ScaleGame::new(n, &base).expect("game builds");
        game.run_streamed(&RoundEngine::inline(), &base)
            .expect("round runs")
    };
    assert_eq!(reference.winners.len(), 32);

    for shards in [1usize, 2, 8] {
        let config = ScaleConfig {
            shard_size: n.div_ceil(shards),
            ..base.clone()
        };
        for engine in [
            RoundEngine::inline(),
            RoundEngine::pooled(1),
            RoundEngine::pooled(8),
        ] {
            let game = ScaleGame::new(n, &config).expect("game builds");
            let stage = game.run_streamed(&engine, &config).expect("round runs");
            assert_eq!(
                reference.winners,
                stage.winners,
                "{shards} shards on {:?} changed the winner set",
                engine.mode()
            );
            assert_eq!(
                reference.standing.candidates(),
                stage.standing.candidates(),
                "{shards} shards on {:?} changed the standing pool",
                engine.mode()
            );
        }
    }
}

/// Executor width is a pure wall-clock knob across the whole selection-and-payment
/// surface: under active work stealing (many shards in flight, skew-free ranges split and
/// stolen between workers), winner sets, standing pools, and the cluster's payment
/// ledgers are bit-identical across 1/2/8-worker pools.
#[test]
fn winners_pools_and_ledgers_agree_across_executor_widths() {
    use fmore::sim::experiments::scale::{ScaleConfig, ScaleGame};
    // Streamed population selection: small shards so every width runs many waves and the
    // per-shard local selections land on different workers run to run.
    let n = 4_000usize;
    let config = ScaleConfig {
        populations: vec![n],
        winners: 24,
        shard_size: 256,
        reserve: 24,
        parity_limit: n,
        grid_size: 48,
        seed: 1_234,
        timed: false,
        spec_version: fmore::mec::population::SpecVersion::V1,
    };
    let game = ScaleGame::new(n, &config).expect("game builds");
    let reference = game
        .run_streamed(&RoundEngine::pooled(1), &config)
        .expect("round runs");
    assert_eq!(reference.winners.len(), 24);
    for width in [2usize, 8] {
        let stage = game
            .run_streamed(&RoundEngine::pooled(width), &config)
            .expect("round runs");
        assert_eq!(
            reference.winners, stage.winners,
            "width {width} changed the winner set"
        );
        assert_eq!(
            reference.standing.candidates(),
            stage.standing.candidates(),
            "width {width} changed the standing pool"
        );
        assert_eq!(reference.offered, stage.offered);
    }

    // Cluster payment accounting: the ledger accumulated over a full run is identical
    // across widths (training jobs, auction, and payments all ride the same executor).
    let run = |width: usize| {
        let mut cluster = MecCluster::with_engine(
            ClusterConfig::fast_test(),
            ClusterStrategy::FMore,
            SEED,
            RoundEngine::pooled(width),
        )
        .expect("fast cluster config is valid");
        let history = cluster.run(ROUNDS).expect("cluster runs");
        (history, cluster.ledger().clone())
    };
    let (history_1, ledger_1) = run(1);
    for width in [2usize, 8] {
        let (history, ledger) = run(width);
        assert_eq!(history_1, history, "width {width} changed the history");
        assert_eq!(ledger_1, ledger, "width {width} changed the payment ledger");
    }
    assert!(ledger_1.total() > 0.0, "FMore rounds actually paid winners");
}

/// The full scale sweep (all three figures) is bit-identical across runner pool sizes —
/// the population-scale twin of the figure-level determinism the dense experiments pin.
#[test]
fn scale_sweep_figures_are_identical_across_pool_sizes() {
    use fmore::sim::experiments::scale::{self, ScaleConfig};
    let config = ScaleConfig {
        populations: vec![800, 2_400],
        winners: 16,
        shard_size: 512,
        reserve: 16,
        parity_limit: 2_400,
        grid_size: 48,
        seed: 7,
        timed: false,
        spec_version: fmore::mec::population::SpecVersion::V1,
    };
    let wide = ScenarioRunner::with_threads(8);
    let narrow = ScenarioRunner::with_threads(1);
    assert_eq!(
        scale::run_selection(&wide, &config).unwrap(),
        scale::run_selection(&narrow, &config).unwrap(),
    );
    assert_eq!(
        scale::run_memory(&wide, &config).unwrap(),
        scale::run_memory(&narrow, &config).unwrap(),
    );
    let parity = scale::run_parity(&wide, &config).unwrap();
    assert_eq!(parity, scale::run_parity(&narrow, &config).unwrap());
    assert!(parity.all_identical());
}

// ---------------------------------------------------------------------------
// Multi-tenant service: neighbours and pool width must not exist in a job's history.
// ---------------------------------------------------------------------------

/// The service's core isolation guarantee: 1/2/8-worker pools × 2–8 interleaved jobs of
/// mixed schemes and stream contracts produce bit-identical per-job histories vs solo runs
/// of the same specs at the same width — and the auction-observable fingerprint is
/// additionally identical *across* widths (only the memory-accounting `peak_bid_bytes`
/// may widen with the pool).
#[test]
fn concurrent_jobs_match_solo_histories_across_pools() {
    use fmore::fl::service::{AuctionService, ServiceConfig};
    use fmore::sim::experiments::service_soak::{job_specs, SoakConfig};

    let config = SoakConfig {
        jobs: 8,
        rounds: 2,
        population: 384,
        shard_size: 96,
        winners: 8,
        reserve: 8,
        grid_size: 48,
        seed: 5_050,
        fan_out: Default::default(),
    };
    let specs = job_specs(&config).expect("soak specs build");

    let solo_at = |threads: usize| -> Vec<fmore::fl::service::JobHistory> {
        specs
            .iter()
            .map(|spec| {
                let service = AuctionService::with_engine(
                    ServiceConfig::default(),
                    RoundEngine::pooled(threads),
                );
                let id = service.admit(spec.clone()).expect("admission");
                for _ in 0..config.rounds {
                    service.run_round(id).expect("solo round runs");
                }
                service.close(id).expect("close returns the history")
            })
            .collect()
    };

    let mut fingerprints_by_width = Vec::new();
    for threads in [1usize, 2, 8] {
        let solo = solo_at(threads);
        fingerprints_by_width.push(solo.iter().map(|h| h.fingerprint()).collect::<Vec<_>>());
        for jobs in [2usize, 5, 8] {
            let service = AuctionService::with_engine(
                ServiceConfig {
                    max_jobs: jobs,
                    max_pending: 4,
                },
                RoundEngine::pooled(threads),
            );
            let ids: Vec<_> = specs[..jobs]
                .iter()
                .map(|s| service.admit(s.clone()).expect("admission"))
                .collect();
            // One OS thread per job, all multiplexed on the shared pool.
            std::thread::scope(|scope| {
                for &id in &ids {
                    let service = &service;
                    let rounds = config.rounds;
                    scope.spawn(move || {
                        for _ in 0..rounds {
                            service.request_round(id).expect("queue has room");
                            assert_eq!(service.run_pending(id).expect("drain runs"), 1);
                        }
                    });
                }
            });
            for (j, &id) in ids.iter().enumerate() {
                let interleaved = service.close(id).expect("close returns the history");
                assert_eq!(
                    interleaved, solo[j],
                    "{threads}-thread pool, {jobs} jobs: job {j} diverged from its solo run"
                );
            }
        }
    }
    // Across widths, the auction-observable content is invariant too.
    assert_eq!(fingerprints_by_width[0], fingerprints_by_width[1]);
    assert_eq!(fingerprints_by_width[0], fingerprints_by_width[2]);
}

/// The cross-layer poisoned-neighbour regression (ISSUE 7): job A's training work panics
/// every round, job B — built by the same sim-layer spec factory and driven concurrently on
/// the same pool — completes every round bit-identically to a solo run, the process
/// survives, and A's failures are typed `JobPanic` records in A's own history.
#[test]
fn poisoned_job_never_aborts_its_neighbours_round() {
    use fmore::fl::service::{AuctionService, ServiceConfig};
    use fmore::fl::FlError;
    use fmore::sim::experiments::service_soak::{job_specs, SoakConfig};
    use std::sync::Arc;

    let config = SoakConfig::quick();
    let mut specs = job_specs(&config).expect("soak specs build");
    let healthy_spec = specs[1].clone();
    specs[0].work = Some(Arc::new(|_round, _slot, _winner| {
        panic!("poisoned tenant: training task dies")
    }));

    // Reference: the healthy job solo on its own pool.
    let solo = {
        let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
        let id = service.admit(healthy_spec.clone()).expect("admission");
        for _ in 0..config.rounds {
            service.run_round(id).expect("healthy round runs");
        }
        service.close(id).expect("close")
    };

    let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
    let poisoned = service.admit(specs[0].clone()).expect("admission");
    let healthy = service.admit(healthy_spec).expect("admission");
    std::thread::scope(|scope| {
        let service = &service;
        let rounds = config.rounds;
        scope.spawn(move || {
            for _ in 0..rounds {
                let err = service.run_round(poisoned).expect_err("poisoned rounds fail");
                assert!(
                    matches!(err, FlError::JobPanic(ref p) if p.message.contains("poisoned tenant")),
                    "unexpected failure: {err}"
                );
            }
        });
        scope.spawn(move || {
            for _ in 0..rounds {
                service
                    .run_round(healthy)
                    .expect("neighbour round survives");
            }
        });
    });

    let poisoned_history = service.close(poisoned).expect("close");
    assert_eq!(poisoned_history.failed(), config.rounds);
    assert!(poisoned_history
        .rounds
        .iter()
        .all(|r| matches!(r.outcome, Err(FlError::JobPanic(_)))));
    let healthy_history = service.close(healthy).expect("close");
    assert_eq!(
        healthy_history, solo,
        "the healthy job's history must be untouched by its poisoned neighbour"
    );
}

// ---------------------------------------------------------------------------
// Chaos determinism (ISSUE 8): active fault injection must change nothing it
// doesn't name — healthy tenants bit-match solo, faulted tenants recover with
// typed records, and a checkpointed run equals the uninterrupted one.
// ---------------------------------------------------------------------------

/// The chaos pin: under an active `FaultPlan` injecting panics, stalls, dropouts, and
/// corrupted updates into half the fleet, (a) every *healthy* job's interleaved history is
/// bit-identical to its solo run at the same pool width, (b) every *faulted* job recovers
/// all its rounds within the watchdog's retry budget, with each injected fault and each
/// retried error present as typed entries in its `RoundRecord`s, and (c) the whole fleet's
/// fingerprints are invariant across pool widths.
#[test]
fn chaos_fleet_heals_within_budget_and_spares_healthy_tenants() {
    use fmore::fl::service::{AuctionService, ServiceConfig};
    use fmore::fl::WatchdogSpec;
    use fmore::sim::experiments::chaos_soak::{job_specs, ChaosConfig};

    let config = ChaosConfig::quick();
    let specs = job_specs(&config).expect("chaos specs build");
    let rounds = config.soak.rounds;

    let solo_at = |threads: usize| -> Vec<fmore::fl::service::JobHistory> {
        specs
            .iter()
            .map(|spec| {
                let service = AuctionService::with_engine(
                    ServiceConfig::default(),
                    RoundEngine::pooled(threads),
                );
                let id = service.admit(spec.clone()).expect("admission");
                for _ in 0..rounds {
                    // Faulted rounds may fail an attempt and recover; the recorded
                    // outcome is what the determinism comparison pins.
                    let _ = service.run_round(id);
                }
                service.close(id).expect("close")
            })
            .collect()
    };

    let mut fingerprints_by_width = Vec::new();
    for threads in [1usize, 4] {
        let solo = solo_at(threads);
        fingerprints_by_width.push(solo.iter().map(|h| h.fingerprint()).collect::<Vec<_>>());

        // The interleaved fleet: all four tenants on one shared service, one driver
        // thread each, faulted beside healthy.
        let service =
            AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(threads));
        let ids: Vec<_> = specs
            .iter()
            .map(|s| service.admit(s.clone()).expect("admission"))
            .collect();
        std::thread::scope(|scope| {
            for &id in &ids {
                let service = &service;
                scope.spawn(move || {
                    for _ in 0..rounds {
                        service.request_round(id).expect("queue has room");
                        service.run_pending(id).expect("drain runs");
                    }
                });
            }
        });

        for (j, &id) in ids.iter().enumerate() {
            let interleaved = service.close(id).expect("close");
            // (a) + chaos replayability: every tenant — healthy *and* faulted — matches
            // its solo run bit-for-bit (fault draws are deterministic).
            assert_eq!(
                interleaved, solo[j],
                "{threads}-thread pool: job {j} diverged from its solo run"
            );
            let is_faulted = specs[j].faults.is_some();
            // (b) every faulted job recovered every round within the retry budget…
            assert_eq!(
                interleaved.completed(),
                rounds,
                "job {j} did not recover every round"
            );
            let total_faults: usize = interleaved.rounds.iter().map(|r| r.faults.len()).sum();
            if is_faulted {
                assert!(total_faults > 0, "faulted job {j} recorded no faults");
                // …with its faults and retried errors as typed entries.
                for record in &interleaved.rounds {
                    assert_eq!(
                        record.retry_errors.len() as u32,
                        record.attempts - 1,
                        "job {j}: retries and typed errors disagree"
                    );
                    assert!(record.retry_errors.iter().all(WatchdogSpec::retryable));
                    if record.attempts > 1 {
                        assert!(
                            record.backoff_secs > 0.0,
                            "job {j}: retry without backoff accounting"
                        );
                        assert!(
                            !record.faults.is_empty(),
                            "job {j}: a retried round must name its faults"
                        );
                    }
                }
                assert!(
                    interleaved.rounds.iter().any(|r| r.attempts > 1),
                    "chaos rates must trip the watchdog at least once for job {j}"
                );
            } else {
                assert_eq!(total_faults, 0, "healthy job {j} recorded injected faults");
                assert!(interleaved.rounds.iter().all(|r| r.attempts == 1));
            }
        }
    }
    // (c) the auction-observable content is invariant across pool widths.
    assert_eq!(fingerprints_by_width[0], fingerprints_by_width[1]);
}

/// The checkpoint pin: a job checkpointed mid-run, serialised to bytes, decoded, and
/// restored onto a *fresh* service finishes with a history bit-identical to the
/// uninterrupted run's — for a healthy tenant and for one under active fault injection.
#[test]
fn checkpoint_restore_equals_the_uninterrupted_run_even_under_chaos() {
    use fmore::fl::service::{AuctionService, JobCheckpoint, ServiceConfig};
    use fmore::sim::experiments::chaos_soak::{job_specs, ChaosConfig};

    let config = ChaosConfig::quick();
    let specs = job_specs(&config).expect("chaos specs build");
    let rounds = 4usize;

    // Job 0 is healthy, job 1 runs under the chaos plan.
    for spec in [&specs[0], &specs[1]] {
        let uninterrupted = {
            let service =
                AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
            let id = service.admit(spec.clone()).expect("admission");
            for _ in 0..rounds {
                let _ = service.run_round(id);
            }
            service.close(id).expect("close")
        };

        for cut in 1..rounds {
            let service =
                AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
            let id = service.admit(spec.clone()).expect("admission");
            for _ in 0..cut {
                let _ = service.run_round(id);
            }
            let bytes = service.checkpoint(id).expect("checkpoint").to_bytes();
            let decoded = JobCheckpoint::from_bytes(&bytes).expect("decode");
            let fresh =
                AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
            let resumed = fresh.restore(spec.clone(), decoded).expect("restore");
            for _ in cut..rounds {
                let _ = fresh.run_round(resumed);
            }
            let history = fresh.close(resumed).expect("close");
            assert_eq!(
                history, uninterrupted,
                "job '{}' interrupted after round {cut} diverged from the uninterrupted run",
                spec.name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Training fan-out granularity (ISSUE 9): dispatch shape is a pure wall-clock knob.
// ---------------------------------------------------------------------------

/// Splitting local training into per-epoch or per-batch task units must never change a
/// history: every [`FanOutGranularity`] × every pool width reproduces the per-winner
/// inline run bit-for-bit. Shuffles draw from the job RNG and dropout from the model
/// scratch RNG in the same order regardless of how the work is chopped, so the parameter
/// trajectories — and therefore the aggregated history — are byte-equal.
#[test]
fn fan_out_granularity_is_invisible_in_every_history() {
    use fmore::fl::engine::FanOutGranularity;

    let reference = history_with(SelectionStrategy::fmore(), RoundEngine::inline(), SEED);
    for granularity in [
        FanOutGranularity::PerWinner,
        FanOutGranularity::PerEpoch,
        FanOutGranularity::PerBatch,
    ] {
        for threads in [1usize, 2, 8] {
            let mut trainer = FederatedTrainer::with_engine(
                FlConfig::fast_test(TaskKind::MnistO),
                SelectionStrategy::fmore(),
                SEED,
                RoundEngine::pooled(threads),
            )
            .expect("fast config is valid");
            trainer.set_fan_out(granularity);
            let history = trainer.run(ROUNDS).expect("training runs");
            assert_eq!(
                history, reference,
                "{granularity:?} on a {threads}-thread pool diverged from per-winner inline"
            );
        }
    }
}

/// The service leg of the same pin, under active fault injection: the chaos fleet's
/// history fingerprints are identical whether the per-winner work stage dispatches
/// directly through `try_run_tasks` or is wrapped into one-unit task chains
/// (`fan_out: PerEpoch`/`PerBatch`), across 1/2/8-thread pools. Injected work panics
/// land on the same winner slots either way — the chain index *is* the submission slot.
#[test]
fn chained_work_dispatch_matches_direct_dispatch_even_under_chaos() {
    use fmore::fl::engine::FanOutGranularity;
    use fmore::fl::service::{AuctionService, ServiceConfig};
    use fmore::sim::experiments::chaos_soak::{job_specs, ChaosConfig};

    let config = ChaosConfig::quick();
    let rounds = config.soak.rounds;
    let fingerprints = |fan_out: FanOutGranularity, threads: usize| -> Vec<u64> {
        let mut specs = job_specs(&config).expect("chaos specs build");
        for spec in &mut specs {
            spec.fan_out = fan_out;
        }
        specs
            .iter()
            .map(|spec| {
                let service = AuctionService::with_engine(
                    ServiceConfig::default(),
                    RoundEngine::pooled(threads),
                );
                let id = service.admit(spec.clone()).expect("admission");
                for _ in 0..rounds {
                    // Faulted rounds may exhaust the watchdog; the recorded outcome is
                    // what the fingerprint comparison pins.
                    let _ = service.run_round(id);
                }
                service.close(id).expect("close").fingerprint()
            })
            .collect()
    };

    let reference = fingerprints(FanOutGranularity::PerWinner, 2);
    for fan_out in [FanOutGranularity::PerEpoch, FanOutGranularity::PerBatch] {
        for threads in [1usize, 2, 8] {
            assert_eq!(
                fingerprints(fan_out, threads),
                reference,
                "{fan_out:?} dispatch on a {threads}-thread pool changed a chaos fingerprint"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Adversary determinism (ISSUE 10): seeded Byzantine behaviour must replay
// bit-for-bit at every pool width, and an all-honest adversary plan must be
// indistinguishable from no plan at all.
// ---------------------------------------------------------------------------

/// The adversary pin: the Byzantine fleet — untruthful bids, poisoned updates, a live
/// reputation loop, robust aggregation — produces bit-identical histories across 1-, 2-,
/// and 8-worker pools, interleaved or solo. Every adversary draw is a pure function of
/// `(plan seed ⊕ job seed, round, slot)`, so thread scheduling can never leak into who
/// distorts, who poisons, or who gets quarantined.
#[test]
fn adversary_fleet_is_bit_identical_across_pool_widths() {
    use fmore::fl::service::{AuctionService, JobHistory, ServiceConfig};
    use fmore::sim::experiments::adversary_soak::{job_specs, AdversaryConfig};

    let config = AdversaryConfig::quick();
    let specs = job_specs(&config).expect("adversary specs build");
    let rounds = config.soak.rounds;

    let solo_at = |threads: usize| -> Vec<JobHistory> {
        specs
            .iter()
            .map(|spec| {
                let service = AuctionService::with_engine(
                    ServiceConfig::default(),
                    RoundEngine::pooled(threads),
                );
                let id = service.admit(spec.clone()).expect("admission");
                for _ in 0..rounds {
                    let _ = service.run_round(id);
                }
                service.close(id).expect("close")
            })
            .collect()
    };

    let reference = solo_at(2);
    let quarantined: usize = reference
        .iter()
        .flat_map(|h| &h.rounds)
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|s| s.quarantined)
        .sum();
    assert!(
        quarantined > 0,
        "the Byzantine fleet quarantined nothing — the pin would be vacuous"
    );
    // Across pool widths, the auction-observable content (which `fingerprint()` folds;
    // `peak_bid_bytes` is legitimately width-dependent) is invariant.
    let reference_prints: Vec<u64> = reference.iter().map(|h| h.fingerprint()).collect();
    for threads in [1usize, 8] {
        let prints: Vec<u64> = solo_at(threads).iter().map(|h| h.fingerprint()).collect();
        assert_eq!(
            prints, reference_prints,
            "a {threads}-worker pool changed an adversary-fleet fingerprint"
        );
    }

    // Interleaved on one shared service: still bit-identical to solo.
    let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
    let ids: Vec<_> = specs
        .iter()
        .map(|s| service.admit(s.clone()).expect("admission"))
        .collect();
    std::thread::scope(|scope| {
        for &id in &ids {
            let service = &service;
            scope.spawn(move || {
                for _ in 0..rounds {
                    service.request_round(id).expect("queue has room");
                    service.run_pending(id).expect("drain runs");
                }
            });
        }
    });
    for (j, &id) in ids.iter().enumerate() {
        assert_eq!(
            service.close(id).expect("close"),
            reference[j],
            "job {j} interleaved beside Byzantine tenants diverged from its solo run"
        );
    }
}

/// The inertness pin: decorating every tenant of the *plain* service-soak fleet with an
/// all-honest `AdversaryPlan` plus an idle reputation ledger reproduces the undecorated
/// fleet's histories byte-for-byte — the adversary layer is pure potential until a rate
/// is nonzero, so the committed golden fingerprints cannot drift from wiring alone.
#[test]
fn honest_adversary_decoration_reproduces_undecorated_histories() {
    use fmore::fl::service::{AuctionService, ServiceConfig};
    use fmore::fl::{AdversaryPlan, ReputationSpec};
    use fmore::sim::experiments::service_soak::{job_specs, SoakConfig};

    let config = SoakConfig::quick();
    let rounds = config.rounds;
    let run = |decorate: bool| -> Vec<fmore::fl::service::JobHistory> {
        let mut specs = job_specs(&config).expect("soak specs build");
        if decorate {
            for (j, spec) in specs.iter_mut().enumerate() {
                spec.adversaries = Some(AdversaryPlan::honest(0xFACE + j as u64));
                spec.reputation = Some(ReputationSpec::standard());
            }
        }
        specs
            .iter()
            .map(|spec| {
                let service =
                    AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
                let id = service.admit(spec.clone()).expect("admission");
                for _ in 0..rounds {
                    service.run_round(id).expect("clean fleet rounds run");
                }
                service.close(id).expect("close")
            })
            .collect()
    };
    assert_eq!(
        run(false),
        run(true),
        "an all-honest adversary plan must be bitwise inert"
    );
}
