//! Randomised property tests on the core mechanism invariants, run against the public
//! facade crate through the vendored `minicheck` harness (seeded generation + shrinking over
//! the same `fmore_numerics` RNG the simulators use — the build environment has no registry
//! access, so `proptest` is unavailable).
//!
//! Every property runs 64 deterministic cases; a failure panics with the shrunk minimal
//! counterexample and the seed to replay it.

use fmore::auction::prelude::*;
use fmore::fl::engine::{apply_deadline, ParticipantTiming};
use fmore::mec::{ResourceProfile, TimeModel};
use fmore::numerics::normalize::MinMaxNormalizer;
use fmore::numerics::{Distribution1D, UniformDist};
use minicheck::{check, ensure, Config, F64Range, Tuple2, Tuple3, UsizeRange, VecOf};

/// The quasi-linear scoring rule is monotone: more quality or a lower ask never lowers the
/// score.
#[test]
fn score_is_monotone_in_quality_and_antitone_in_ask() {
    let rule = ScoringRule::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap());
    let strategy = Tuple2(
        Tuple2(F64Range::new(0.0, 1.0), F64Range::new(0.0, 1.0)),
        Tuple3(
            F64Range::new(0.0, 0.5),
            F64Range::new(0.0, 1.0),
            F64Range::new(0.0, 0.5),
        ),
    );
    check(
        &Config::seeded(0xA1),
        &strategy,
        |((q1, q2), (bump, ask, discount))| {
            let base = rule.score(&Quality::new(vec![*q1, *q2]), *ask).unwrap();
            let better_quality = rule
                .score(&Quality::new(vec![q1 + bump, *q2]), *ask)
                .unwrap();
            let cheaper = rule
                .score(&Quality::new(vec![*q1, *q2]), (ask - discount).max(0.0))
                .unwrap();
            ensure(better_quality >= base - 1e-12, || {
                format!("quality bump lowered the score: {better_quality} < {base}")
            })?;
            ensure(cheaper >= base - 1e-12, || {
                format!("ask discount lowered the score: {cheaper} < {base}")
            })
        },
    );
}

/// First-price auctions always pay winners exactly their ask, and the winner set is never
/// larger than K or the number of bidders; every winner's score weakly beats every loser's.
#[test]
fn auction_awards_are_consistent() {
    let strategy = Tuple3(
        VecOf::new(F64Range::new(0.0, 2.0), 1, 40),
        UsizeRange::new(1, 10),
        UsizeRange::new(0, 1_000),
    );
    check(&Config::seeded(0xA2), &strategy, |(asks, k, tie_seed)| {
        let rule = ScoringRule::new(Additive::new(vec![1.0]).unwrap());
        let auction = Auction::new(rule, *k, SelectionRule::TopK, PricingRule::FirstPrice);
        let bids: Vec<SubmittedBid> = asks
            .iter()
            .enumerate()
            .map(|(i, &ask)| SubmittedBid::new(NodeId(i as u64), Quality::new(vec![1.0]), ask))
            .collect();
        let outcome = auction
            .run(bids, &mut fmore::numerics::seeded_rng(*tie_seed as u64))
            .map_err(|e| e.to_string())?;
        ensure(outcome.winners().len() == (*k).min(asks.len()), || {
            format!(
                "{} winners for K={k}, N={}",
                outcome.winners().len(),
                asks.len()
            )
        })?;
        for award in outcome.winners() {
            let original = asks[award.node.0 as usize];
            ensure((award.payment - original).abs() < 1e-12, || {
                format!("first price paid {} for ask {original}", award.payment)
            })?;
        }
        let winner_ids = outcome.winner_ids();
        let min_winner = outcome
            .winners()
            .iter()
            .map(|w| w.score)
            .fold(f64::INFINITY, f64::min);
        for bid in outcome.ranked() {
            if !winner_ids.contains(&bid.node) {
                ensure(bid.score <= min_winner + 1e-9, || {
                    format!("loser score {} beats worst winner {min_winner}", bid.score)
                })?;
            }
        }
        Ok(())
    });
}

fn quadratic_solver() -> (EquilibriumSolver, QuadraticCost) {
    let cost = QuadraticCost::new(vec![1.0]).unwrap();
    let solver = EquilibriumSolver::builder()
        .scoring(Additive::new(vec![1.0]).unwrap())
        .cost(cost.clone())
        .theta(UniformDist::new(0.2, 1.0).unwrap())
        .bounds(vec![(0.0, 4.0)])
        .population(25)
        .winners(5)
        .grid_size(64)
        .build()
        .unwrap();
    (solver, cost)
}

/// Individual rationality: every equilibrium bid asks at least its private cost (a positive
/// margin), expects non-negative profit, and carries a valid win probability — so a
/// first-price winner is never paid below cost.
#[test]
fn equilibrium_bids_are_individually_rational() {
    let (solver, cost) = quadratic_solver();
    check(
        &Config::seeded(0xA3),
        &F64Range::new(0.21, 0.99),
        |&theta| {
            let bid = solver.bid_for(theta).map_err(|e| e.to_string())?;
            let c = cost.value(bid.quality.as_slice(), theta);
            ensure(bid.ask >= c - 1e-6, || {
                format!(
                    "IR margin violated: ask {} < cost {c} at theta {theta}",
                    bid.ask
                )
            })?;
            ensure(bid.expected_profit >= -1e-9, || {
                format!("negative expected profit {}", bid.expected_profit)
            })?;
            ensure((0.0..=1.0).contains(&bid.win_probability), || {
                format!("win probability {} outside [0, 1]", bid.win_probability)
            })
        },
    );
}

/// Truthfulness margin: playing the equilibrium bid of one's **true** type is (up to grid
/// discretisation) at least as profitable as submitting the equilibrium bid of any other
/// type — the expected-utility deviation test behind the paper's Theorem 2 incentive claim.
#[test]
fn equilibrium_bidding_is_truthful_up_to_discretisation() {
    let (solver, cost) = quadratic_solver();
    let strategy = Tuple2(F64Range::new(0.21, 0.99), F64Range::new(0.21, 0.99));
    check(&Config::seeded(0xA8), &strategy, |&(theta, deviation)| {
        let truthful = solver.bid_for(theta).map_err(|e| e.to_string())?;
        let deviant = solver.bid_for(deviation).map_err(|e| e.to_string())?;
        let profit = |bid: &EquilibriumBid| {
            bid.win_probability * (bid.ask - cost.value(bid.quality.as_slice(), theta))
        };
        let honest = profit(&truthful);
        let dishonest = profit(&deviant);
        // The 64-point value grid discretises both the quality choice and the win
        // probability, so allow a small absolute slack.
        ensure(honest >= dishonest - 5e-3, || {
            format!(
                "type {theta} gains {:.6} by imitating type {deviation} \
                 (honest {honest:.6} < deviant {dishonest:.6})",
                dishonest - honest
            )
        })
    });
}

/// Realised first-price auctions over equilibrium bids never pay a winner below its private
/// cost — individual rationality end-to-end, not just at the bidding stage.
#[test]
fn first_price_auctions_over_equilibrium_bids_are_individually_rational() {
    let (solver, cost) = quadratic_solver();
    let strategy = Tuple2(
        VecOf::new(F64Range::new(0.21, 0.99), 1, 25),
        UsizeRange::new(0, 1_000),
    );
    check(&Config::seeded(0xA9), &strategy, |(thetas, tie_seed)| {
        let auction = Auction::new(
            ScoringRule::new(Additive::new(vec![1.0]).unwrap()),
            5,
            SelectionRule::TopK,
            PricingRule::FirstPrice,
        );
        let mut bids = Vec::new();
        for (i, &theta) in thetas.iter().enumerate() {
            let bid = solver.bid_for(theta).map_err(|e| e.to_string())?;
            bids.push(SubmittedBid::new(NodeId(i as u64), bid.quality, bid.ask));
        }
        let outcome = auction
            .run(bids, &mut fmore::numerics::seeded_rng(*tie_seed as u64))
            .map_err(|e| e.to_string())?;
        for award in outcome.winners() {
            let theta = thetas[award.node.0 as usize];
            let c = cost.value(award.quality.as_slice(), theta);
            ensure(award.payment >= c - 1e-6, || {
                format!(
                    "winner {} paid {} below its cost {c} (theta {theta})",
                    award.node, award.payment
                )
            })?;
        }
        Ok(())
    });
}

/// ψ-FMore always returns exactly `min(K, N)` distinct winners regardless of ψ.
#[test]
fn psi_selection_always_fills_the_winner_set() {
    use fmore::auction::types::ScoredBid;
    let strategy = Tuple3(
        UsizeRange::new(1, 60),
        UsizeRange::new(1, 30),
        F64Range::new(0.01, 1.0),
    );
    check(&Config::seeded(0xA4), &strategy, |&(n, k, psi)| {
        let bids: Vec<ScoredBid> = (0..n)
            .map(|i| ScoredBid {
                node: NodeId(i as u64),
                quality: Quality::default(),
                ask: 0.0,
                score: i as f64,
            })
            .collect();
        let mut rng = fmore::numerics::seeded_rng((n * 31 + k) as u64);
        let winners = SelectionRule::PsiFMore { psi }.select(&bids, k, &mut rng);
        ensure(winners.len() == k.min(n), || {
            format!("{} winners for K={k}, N={n}, psi={psi}", winners.len())
        })?;
        let mut dedup = winners.clone();
        dedup.sort_unstable();
        dedup.dedup();
        ensure(dedup.len() == winners.len(), || {
            format!("duplicate winners at K={k}, N={n}, psi={psi}")
        })
    });
}

/// Min–max normalisation always lands in [0, 1] and round-trips within the range.
#[test]
fn normalizer_round_trips() {
    let strategy = Tuple3(
        F64Range::new(-100.0, 100.0),
        F64Range::new(0.1, 100.0),
        F64Range::new(-200.0, 200.0),
    );
    check(&Config::seeded(0xA5), &strategy, |&(lo, width, x)| {
        let n = MinMaxNormalizer::new(lo, lo + width);
        let y = n.normalize(x);
        ensure((0.0..=1.0).contains(&y), || {
            format!("normalized {y} outside [0, 1]")
        })?;
        let back = n.denormalize(y);
        ensure(back >= lo - 1e-9 && back <= lo + width + 1e-9, || {
            format!("denormalized {back} escaped [{lo}, {}]", lo + width)
        })?;
        if x >= lo && x <= lo + width {
            ensure((back - x).abs() < 1e-6, || {
                format!("in-range value {x} round-tripped to {back}")
            })?;
        }
        Ok(())
    });
}

/// The uniform θ distribution's quantile inverts its CDF everywhere.
#[test]
fn uniform_quantile_inverts_cdf() {
    let strategy = Tuple3(
        F64Range::new(0.01, 1.0),
        F64Range::new(0.1, 2.0),
        F64Range::new(0.0, 1.0),
    );
    check(&Config::seeded(0xA6), &strategy, |&(lo, width, p)| {
        let d = UniformDist::new(lo, lo + width).map_err(|e| e.to_string())?;
        let q = d.quantile(p).map_err(|e| e.to_string())?;
        ensure((d.cdf(q) - p).abs() < 1e-4, || {
            format!("cdf(quantile({p})) = {} drifted", d.cdf(q))
        })
    });
}

/// FedAvg output always lies inside the per-coordinate envelope of its inputs, and averaging
/// identical updates returns them unchanged.
#[test]
fn federated_average_stays_in_envelope() {
    let strategy = Tuple2(
        VecOf::new(
            Tuple2(F64Range::new(-5.0, 5.0), F64Range::new(-1.0, 1.0)),
            1,
            20,
        ),
        Tuple2(F64Range::new(0.1, 10.0), F64Range::new(0.1, 10.0)),
    );
    check(
        &Config::seeded(0xA7),
        &strategy,
        |(coords, (weight_a, weight_b))| {
            let a: Vec<f64> = coords.iter().map(|(base, _)| *base).collect();
            let b: Vec<f64> = coords.iter().map(|(base, delta)| base + delta).collect();
            let avg =
                fmore::fl::federated_average(&[(a.clone(), *weight_a), (b.clone(), *weight_b)])
                    .map_err(|e| e.to_string())?
                    .ok_or("average of two updates must exist")?;
            for i in 0..a.len() {
                let lo = a[i].min(b[i]) - 1e-9;
                let hi = a[i].max(b[i]) + 1e-9;
                ensure(avg[i] >= lo && avg[i] <= hi, || {
                    format!("coordinate {i}: {} escaped [{lo}, {hi}]", avg[i])
                })?;
            }
            let same =
                fmore::fl::federated_average(&[(a.clone(), *weight_a), (a.clone(), *weight_b)])
                    .map_err(|e| e.to_string())?
                    .ok_or("average of identical updates must exist")?;
            for (x, y) in same.iter().zip(&a) {
                ensure((x - y).abs() < 1e-9, || {
                    format!("identical updates averaged to {x} != {y}")
                })?;
            }
            Ok(())
        },
    );
}

/// FedAvg weight-sum invariance (Eq. 3 is a convex combination): scaling every weight by the
/// same positive factor leaves the aggregate bit-for-bit meaningful — i.e. unchanged up to
/// floating-point tolerance.
#[test]
fn federated_average_is_invariant_under_weight_scaling() {
    let strategy = Tuple2(
        VecOf::new(
            Tuple2(F64Range::new(-5.0, 5.0), F64Range::new(0.1, 10.0)),
            1,
            12,
        ),
        F64Range::new(0.05, 50.0),
    );
    check(&Config::seeded(0xAA), &strategy, |(updates, scale)| {
        // Each generated pair is a one-dimensional update with its weight; widen to three
        // dimensions so the invariance is exercised across coordinates.
        let plain: Vec<(Vec<f64>, f64)> = updates
            .iter()
            .map(|(v, w)| (vec![*v, v * 2.0, v - 1.0], *w))
            .collect();
        let scaled: Vec<(Vec<f64>, f64)> =
            plain.iter().map(|(v, w)| (v.clone(), w * scale)).collect();
        let base = fmore::fl::federated_average(&plain)
            .map_err(|e| e.to_string())?
            .ok_or("non-empty average")?;
        let rescaled = fmore::fl::federated_average(&scaled)
            .map_err(|e| e.to_string())?
            .ok_or("non-empty average")?;
        for (x, y) in base.iter().zip(&rescaled) {
            ensure((x - y).abs() < 1e-9, || {
                format!("weight scaling by {scale} moved a coordinate: {x} -> {y}")
            })?;
        }
        Ok(())
    });
}

/// TimeModel monotonicity: more cores or bandwidth never slows a node down; more data or
/// epochs never speeds it up; a synchronous round is never faster than its slowest
/// participant.
#[test]
fn time_model_is_monotone_in_resources_and_work() {
    let model = TimeModel::paper_cluster();
    let strategy = Tuple3(
        Tuple2(F64Range::new(1.0, 8.0), F64Range::new(100.0, 1000.0)),
        Tuple2(F64Range::new(1.0, 10_000.0), UsizeRange::new(1, 3)),
        Tuple2(F64Range::new(0.1, 4.0), F64Range::new(1.0, 500.0)),
    );
    check(
        &Config::seeded(0xAB),
        &strategy,
        |&((cores, bandwidth), (data, epochs), (core_bump, bandwidth_bump))| {
            let profile = |c: f64, b: f64| ResourceProfile {
                cpu_cores: c,
                bandwidth_mbps: b,
                data_size: data,
            };
            let base = profile(cores, bandwidth);
            let faster_cpu = profile(cores + core_bump, bandwidth);
            let faster_net = profile(cores, bandwidth + bandwidth_bump);
            ensure(
                model.computation_secs(&faster_cpu, data, epochs)
                    <= model.computation_secs(&base, data, epochs) + 1e-12,
                || "more cores slowed computation down".to_string(),
            )?;
            ensure(
                model.communication_secs(&faster_net) <= model.communication_secs(&base) + 1e-12,
                || "more bandwidth slowed communication down".to_string(),
            )?;
            ensure(
                model.computation_secs(&base, data * 2.0, epochs)
                    >= model.computation_secs(&base, data, epochs) - 1e-12,
                || "more data sped computation up".to_string(),
            )?;
            ensure(
                model.computation_secs(&base, data, epochs + 1)
                    >= model.computation_secs(&base, data, epochs) - 1e-12,
                || "more epochs sped computation up".to_string(),
            )?;
            let participants = [(base, data), (faster_cpu, data)];
            let round = model.round_secs(&participants, epochs);
            for (p, d) in &participants {
                ensure(
                    round >= model.node_round_secs(p, *d, epochs) - 1e-12,
                    || "synchronous round finished before its slowest participant".to_string(),
                )?;
            }
            Ok(())
        },
    );
}

/// The deadline gate is monotone in the deadline: a larger deadline never shrinks the
/// survivor set and never shortens the server's wave time.
#[test]
fn deadline_gate_is_monotone_in_the_deadline() {
    let strategy = Tuple3(
        VecOf::new(
            Tuple2(F64Range::new(0.0, 100.0), UsizeRange::new(0, 9)),
            0,
            12,
        ),
        F64Range::new(1.0, 80.0),
        F64Range::new(0.0, 80.0),
    );
    check(&Config::seeded(0xAC), &strategy, |(fates, d1, extra)| {
        let timings: Vec<ParticipantTiming> = fates
            .iter()
            .enumerate()
            .map(|(slot, (secs, tag))| ParticipantTiming {
                slot,
                // Tag 0 marks a dropout (infinite completion), tags 1-2 a straggler.
                completion_secs: if *tag == 0 { f64::INFINITY } else { *secs },
                straggler: (1..=2).contains(tag),
                dropped_out: *tag == 0,
            })
            .collect();
        let d2 = d1 + extra;
        let tight = apply_deadline(&timings, *d1);
        let loose = apply_deadline(&timings, d2);
        ensure(tight.survivors.len() <= loose.survivors.len(), || {
            format!(
                "raising the deadline {d1} -> {d2} lost survivors: {:?} -> {:?}",
                tight.survivors, loose.survivors
            )
        })?;
        for slot in &tight.survivors {
            ensure(loose.survivors.contains(slot), || {
                format!("survivor {slot} at deadline {d1} vanished at {d2}")
            })?;
        }
        ensure(tight.wave_secs <= loose.wave_secs + 1e-12, || {
            format!(
                "raising the deadline shortened the wave: {} -> {}",
                tight.wave_secs, loose.wave_secs
            )
        })?;
        // Dropouts never survive any deadline.
        ensure(
            loose.dropouts.len() == timings.iter().filter(|t| t.dropped_out).count(),
            || "a dropout survived the deadline gate".to_string(),
        )
    });
}

// ---------------------------------------------------------------------------
// The allocation-free training hot path: in-place kernels and arena-backed epochs.
// ---------------------------------------------------------------------------

/// The seed's scalar matmul (i/k/j loop order, skip-zero), kept here as the independent
/// ground truth the in-place kernel family is checked against bit-for-bit.
fn scalar_matmul(a: &fmore::ml::Matrix, b: &fmore::ml::Matrix) -> fmore::ml::Matrix {
    let mut out = fmore::ml::Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let v = a.get(i, k);
            if v == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out.set(i, j, out.get(i, j) + v * b.get(k, j));
            }
        }
    }
    out
}

/// A random matrix with exact zeros sprinkled in (to exercise the historical skip-zero
/// path) whose entries are deterministic in `seed`.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> fmore::ml::Matrix {
    let mut rng = fmore::numerics::seeded_rng(seed);
    let mut m = fmore::ml::Matrix::random_uniform(rows, cols, 1.0, &mut rng);
    m.map_inplace(|v| if v.abs() < 0.25 { 0.0 } else { v });
    m
}

/// Every member of the in-place matmul family is **bit-identical** to the scalar seed
/// kernel composed with explicit transposes, across random shapes (blocked and remainder
/// paths included) and into stale, wrongly-shaped output buffers.
#[test]
fn inplace_matmul_family_matches_allocating_composition_bitwise() {
    use fmore::ml::Matrix;
    let strategy = Tuple3(
        Tuple3(
            UsizeRange::new(1, 9),
            UsizeRange::new(1, 70),
            UsizeRange::new(1, 9),
        ),
        UsizeRange::new(0, 10_000),
        UsizeRange::new(0, 10_000),
    );
    check(
        &Config::seeded(0xB1),
        &strategy,
        |((m, k, n), seed_a, seed_b)| {
            let a = random_matrix(*m, *k, *seed_a as u64);
            let b = random_matrix(*k, *n, *seed_b as u64 + 1);
            let reference = scalar_matmul(&a, &b);
            // Stale, wrongly-shaped reused buffer.
            let mut out = Matrix::from_vec(1, 2, vec![9.0, -9.0]);
            a.matmul_into(&b, &mut out);
            ensure(out.data() == reference.data(), || {
                format!("matmul_into diverged from the scalar kernel at {m}x{k}x{n}")
            })?;
            ensure(a.matmul(&b).data() == reference.data(), || {
                "allocating matmul diverged from the scalar kernel".to_string()
            })?;
            // aᵀ·b without materialising the transpose.
            let at = random_matrix(*k, *m, *seed_a as u64 + 2);
            at.matmul_transpose_a_into(&b, &mut out);
            let ta_reference = scalar_matmul(&at.transpose(), &b);
            ensure(out.data() == ta_reference.data(), || {
                format!("matmul_transpose_a_into diverged at {k}x{m} vs {k}x{n}")
            })?;
            // a·bᵀ without an allocating transpose.
            let bt = random_matrix(*n, *k, *seed_b as u64 + 3);
            a.matmul_transpose_b_into(&bt, &mut out);
            let tb_reference = scalar_matmul(&a, &bt.transpose());
            ensure(out.data() == tb_reference.data(), || {
                format!("matmul_transpose_b_into diverged at {m}x{k} vs {n}x{k}")
            })
        },
    );
}

/// The arena-backed `train_epoch` follows the **pre-refactor parameter trajectory**
/// bit-for-bit on a seeded tiny MLP: `fmore_bench::baseline::NaiveMlp` replays the seed's
/// allocating kernels (skip-zero matmul, materialised transposes, clone-per-stage caches),
/// and every epoch must leave both models with identical parameters and losses.
#[test]
fn arena_train_epoch_matches_seed_trajectory_bitwise() {
    use fmore::ml::dataset::SyntheticImageSpec;
    use fmore::ml::layers::{Activation, Dense, Layer};
    use fmore::ml::model::Model;
    use fmore::ml::{ScratchArena, Sequential};
    use fmore_bench::baseline::NaiveMlp;
    let strategy = Tuple3(
        Tuple2(UsizeRange::new(4, 24), UsizeRange::new(1, 40)),
        UsizeRange::new(0, 10_000),
        UsizeRange::new(1, 30),
    );
    check(
        &Config::seeded(0xB2).with_cases(16),
        &strategy,
        |((hidden, batch), seed, lr_steps)| {
            let seed = *seed as u64;
            let learning_rate = *lr_steps as f64 * 0.01;
            let mut data_rng = fmore::numerics::seeded_rng(seed);
            let data = SyntheticImageSpec::mnist_like().generate(60, &mut data_rng);
            let all: Vec<usize> = (0..data.len()).collect();
            let mut build_rng = fmore::numerics::seeded_rng(seed + 1);
            let mut model = Sequential::new(vec![
                Box::new(Dense::new(data.feature_dim(), *hidden, &mut build_rng)) as Box<dyn Layer>,
                Box::new(Activation::relu()),
                Box::new(Dense::new(*hidden, data.num_classes(), &mut build_rng)),
            ]);
            let mut naive = NaiveMlp::from_params(
                data.feature_dim(),
                *hidden,
                data.num_classes(),
                &model.parameters(),
            );
            let mut arena = ScratchArena::new();
            let mut rng_arena = fmore::numerics::seeded_rng(seed + 2);
            let mut rng_naive = fmore::numerics::seeded_rng(seed + 2);
            for epoch in 0..2 {
                let la = model.train_epoch_in(
                    &mut arena,
                    &data,
                    &all,
                    learning_rate,
                    *batch,
                    &mut rng_arena,
                );
                let lb = naive.train_epoch(&data, &all, learning_rate, *batch, &mut rng_naive);
                ensure(la.to_bits() == lb.to_bits(), || {
                    format!("epoch {epoch} loss diverged: {la} vs {lb}")
                })?;
                ensure(model.parameters() == naive.parameters(), || {
                    format!(
                        "epoch {epoch} parameter trajectory diverged (hidden {hidden}, \
                         batch {batch}, lr {learning_rate})"
                    )
                })?;
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Population-scale selection: streaming must equal the dense full-sort path.
// ---------------------------------------------------------------------------

/// Builds the four auction schemes (selection × pricing) the workspace runs.
fn auction_schemes(k: usize) -> Vec<(&'static str, Auction)> {
    let rule = || ScoringRule::new(Additive::new(vec![1.0, 1.0]).unwrap());
    vec![
        (
            "topk/first",
            Auction::new(rule(), k, SelectionRule::TopK, PricingRule::FirstPrice),
        ),
        (
            "topk/second",
            Auction::new(rule(), k, SelectionRule::TopK, PricingRule::SecondPrice),
        ),
        (
            "psi/first",
            Auction::new(
                rule(),
                k,
                SelectionRule::PsiFMore { psi: 0.6 },
                PricingRule::FirstPrice,
            ),
        ),
        (
            "psi/second",
            Auction::new(
                rule(),
                k,
                SelectionRule::PsiFMore { psi: 0.6 },
                PricingRule::SecondPrice,
            ),
        ),
    ]
}

/// Streaming top-K selection over a bounded selector is **bit-identical** to the dense
/// full-sort `rank_bids` path — winners, scores, and payments — across all four schemes,
/// duplicate-score tie populations, and `k ≥ n`. This test keeps a full-width pool
/// (`reserve = n`) so the standing order itself can be compared rank-by-rank against
/// `rank_bids`; plain top-K is additionally checked at a minimal reserve. Bounded-reserve
/// exactness for the ψ walk is pinned separately by
/// `bounded_psi_admission_is_bit_identical_to_full_sort` below.
#[test]
fn streaming_selection_is_bit_identical_to_full_sort() {
    use fmore::auction::{BidStore, SubmittedBid};
    let strategy = Tuple3(
        VecOf::new(
            Tuple2(F64Range::new(0.0, 1.0), F64Range::new(0.0, 0.5)),
            1,
            48,
        ),
        UsizeRange::new(1, 60),
        UsizeRange::new(0, 100_000),
    );
    check(&Config::seeded(0xB7), &strategy, |(rows, k, seed)| {
        // Quantise to a coarse grid so duplicate scores (exact ties) are common.
        let bids: Vec<SubmittedBid> = rows
            .iter()
            .enumerate()
            .map(|(i, &(q, ask))| {
                let q = (q * 4.0).round() / 4.0;
                let ask = (ask * 4.0).round() / 4.0;
                SubmittedBid::new(NodeId(i as u64), Quality::new(vec![q, 1.0 - q]), ask)
            })
            .collect();
        let n = bids.len();
        for (name, auction) in auction_schemes(*k) {
            let dense = auction
                .run(bids.clone(), &mut fmore::numerics::seeded_rng(*seed as u64))
                .map_err(|e| e.to_string())?;

            // Exact twin: reserve covers the whole population.
            let mut store = BidStore::with_dims(2);
            for bid in &bids {
                store
                    .push(bid.node, bid.quality.as_slice(), bid.ask)
                    .map_err(|e| e.to_string())?;
            }
            store
                .score_with(auction.scoring_rule())
                .map_err(|e| e.to_string())?;
            let mut rng = fmore::numerics::seeded_rng(*seed as u64);
            let mut selector = auction.selector(n);
            selector.offer_store(&store, &mut rng);
            let pool = selector.finish(&mut rng);
            ensure(pool.offered() == n && pool.len() == n, || {
                format!("{name}: keep-all selector lost candidates")
            })?;
            // The standing order IS the dense ranking.
            for (c, r) in pool.candidates().iter().zip(dense.ranked()) {
                ensure(
                    c.node == r.node
                        && c.score.to_bits() == r.score.to_bits()
                        && c.ask.to_bits() == r.ask.to_bits(),
                    || format!("{name}: standing order diverged from rank_bids"),
                )?;
            }
            let awards = auction.award_standing(&pool, *k, &[], &mut rng);
            ensure(awards.len() == dense.winners().len(), || {
                format!(
                    "{name}: {} streamed vs {} dense winners",
                    awards.len(),
                    dense.winners().len()
                )
            })?;
            for (a, d) in awards.iter().zip(dense.winners()) {
                ensure(
                    a.node == d.node
                        && a.score.to_bits() == d.score.to_bits()
                        && a.payment.to_bits() == d.payment.to_bits(),
                    || {
                        format!(
                            "{name}: winner diverged ({} pay {} vs {} pay {})",
                            a.node, a.payment, d.node, d.payment
                        )
                    },
                )?;
            }

            // Bounded twin: top-K stays exact with only one reserve candidate.
            if matches!(auction.selection_rule(), SelectionRule::TopK) {
                let mut rng = fmore::numerics::seeded_rng(*seed as u64);
                let mut bounded = auction.selector(1);
                bounded.offer_store(&store, &mut rng);
                let pool = bounded.finish(&mut rng);
                let awards = auction.award_standing(&pool, *k, &[], &mut rng);
                for (a, d) in awards.iter().zip(dense.winners()) {
                    ensure(
                        a.node == d.node && a.payment.to_bits() == d.payment.to_bits(),
                        || format!("{name}: bounded selector diverged on {}", a.node),
                    )?;
                }
                ensure(awards.len() == dense.winners().len(), || {
                    format!("{name}: bounded selector winner count diverged")
                })?;
            }
        }
        Ok(())
    });
}

/// The bounded two-pass ψ admission — [`ScoreHistogram`] first pass, rank-only
/// `plan_admission` walk, and (when the walk admits past the standing pool) a
/// [`RankRefiner`] refinement pass — is **bit-identical** to the dense full-sort
/// `Auction::run` path at a *small* reserve, across ψ ∈ {0.1, 0.5, 0.9, 1.0} × both
/// pricing rules, duplicate-score tie populations, sharded streams, and `k ≥ n`. The
/// streamed side must also leave the round RNG at exactly the dense path's position, so a
/// seeded history cannot tell which path ran.
#[test]
fn bounded_psi_admission_is_bit_identical_to_full_sort() {
    use fmore::auction::{BidStore, RankRefiner, ScoreHistogram, SubmittedBid};
    use rand::Rng;
    let strategy = Tuple3(
        VecOf::new(
            Tuple2(F64Range::new(0.0, 1.0), F64Range::new(0.0, 0.5)),
            1,
            48,
        ),
        UsizeRange::new(1, 60),
        UsizeRange::new(0, 100_000),
    );
    check(&Config::seeded(0xB9), &strategy, |(rows, k, seed)| {
        // Coarse quantisation makes exact score ties common, exercising the tie-break keys
        // through both the histogram bins and the refinement probes.
        let bids: Vec<SubmittedBid> = rows
            .iter()
            .enumerate()
            .map(|(i, &(q, ask))| {
                let q = (q * 4.0).round() / 4.0;
                let ask = (ask * 4.0).round() / 4.0;
                SubmittedBid::new(NodeId(i as u64), Quality::new(vec![q, 1.0 - q]), ask)
            })
            .collect();
        let n = bids.len();
        // Shard the stream so refinement-pass base offsets are exercised.
        let shards: Vec<BidStore> = bids
            .chunks(7)
            .map(|chunk| {
                let mut store = BidStore::with_dims(2);
                for bid in chunk {
                    store.push(bid.node, bid.quality.as_slice(), bid.ask)?;
                }
                Ok::<_, AuctionError>(store)
            })
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        for psi in [0.1, 0.5, 0.9, 1.0] {
            for pricing in [PricingRule::FirstPrice, PricingRule::SecondPrice] {
                let auction = Auction::new(
                    ScoringRule::new(Additive::new(vec![1.0, 1.0]).unwrap()),
                    *k,
                    SelectionRule::PsiFMore { psi },
                    pricing,
                );
                let name = format!("psi={psi}/{pricing:?}");
                let mut dense_rng = fmore::numerics::seeded_rng(*seed as u64);
                let dense = auction
                    .run(bids.clone(), &mut dense_rng)
                    .map_err(|e| e.to_string())?;

                // Streamed twin at a deliberately tiny reserve: one standing candidate
                // beyond K, so deep ψ admissions must go through the refinement pass.
                let mut rng = fmore::numerics::seeded_rng(*seed as u64);
                let mut selector = auction.selector(1);
                let salt = (n >= 2).then(|| selector.force_salt(&mut rng));
                let mut histogram = ScoreHistogram::new();
                for store in &mut shards.clone() {
                    store
                        .score_with(auction.scoring_rule())
                        .map_err(|e| e.to_string())?;
                    histogram.record_store(store);
                    selector.offer_store(store, &mut rng);
                }
                let standing = selector.finish(&mut rng);
                let plan = auction.plan_admission(standing.offered(), *k, &mut rng);
                let mut needed: Vec<usize> = plan.picked.clone();
                needed.extend(plan.price_rank);
                needed.sort_unstable();
                needed.dedup();
                let deepest = *needed.last().expect("k >= 1 admits at least one rank");
                let awards: Vec<Award> = if deepest < standing.len() {
                    let best_losing = plan.price_rank.map(|r| standing.candidates()[r].score);
                    plan.picked
                        .iter()
                        .map(|&r| auction.award_candidate(&standing.candidates()[r], best_losing))
                        .collect()
                } else {
                    let salt = salt.expect("refinement implies >= 2 bids, so the salt exists");
                    let mut refiner = RankRefiner::new(&histogram, &needed, salt, 2);
                    let mut base = 0usize;
                    for store in &mut shards.clone() {
                        store
                            .score_with(auction.scoring_rule())
                            .map_err(|e| e.to_string())?;
                        refiner.offer_store(store, base);
                        base += store.len();
                    }
                    let ranked = refiner.into_ranked();
                    let at = |rank: usize| {
                        ranked
                            .get(rank)
                            .expect("every needed rank was counted and collected")
                    };
                    let best_losing = plan.price_rank.map(|r| at(r).score);
                    plan.picked
                        .iter()
                        .map(|&r| auction.award_candidate(at(r), best_losing))
                        .collect()
                };

                ensure(awards.len() == dense.winners().len(), || {
                    format!(
                        "{name}: {} streamed vs {} dense winners",
                        awards.len(),
                        dense.winners().len()
                    )
                })?;
                for (a, d) in awards.iter().zip(dense.winners()) {
                    ensure(
                        a.node == d.node
                            && a.score.to_bits() == d.score.to_bits()
                            && a.payment.to_bits() == d.payment.to_bits(),
                        || {
                            format!(
                                "{name}: winner diverged ({} pay {} vs {} pay {})",
                                a.node, a.payment, d.node, d.payment
                            )
                        },
                    )?;
                }
                // RNG-position parity: the bounded plan must consume exactly the words the
                // dense ranking + selection walk consumed.
                ensure(rng.gen::<u64>() == dense_rng.gen::<u64>(), || {
                    format!("{name}: streamed path left the round RNG at a different position")
                })?;
            }
        }
        Ok(())
    });
}

/// The columnar `score_batch` kernels are **bit-identical** to the per-bid
/// `ScoringRule::score` path for every scoring family — Additive, PerfectComplementary,
/// CobbDouglas (unit and curved exponents), and `NormalizedScoring` wrapping each — both
/// through the rule-level batch call and through `BidStore::score_with`, on arbitrary bid
/// populations.
#[test]
fn score_batch_is_bit_identical_to_per_bid_scoring() {
    use fmore::auction::BidStore;
    // Two resource dimensions on deliberately different scales (the normalised rules get
    // ranges matching the generators, as in the paper's walk-through).
    let strategy = VecOf::new(
        Tuple3(
            F64Range::new(0.0, 5_000.0),
            F64Range::new(0.0, 100.0),
            F64Range::new(0.0, 2.0),
        ),
        1,
        60,
    );
    let ranges = vec![(1_000.0, 5_000.0), (5.0, 100.0)];
    let rules: Vec<(&str, ScoringRule)> = vec![
        (
            "additive",
            ScoringRule::new(Additive::new(vec![0.4, 0.6]).unwrap()),
        ),
        (
            "complementary",
            ScoringRule::new(PerfectComplementary::new(vec![0.5, 0.5]).unwrap()),
        ),
        (
            "cobb-unit",
            ScoringRule::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap()),
        ),
        (
            "cobb-curved",
            ScoringRule::new(CobbDouglas::with_scale(2.0, vec![0.5, 1.5]).unwrap()),
        ),
        (
            "normalized-additive",
            ScoringRule::new(
                NormalizedScoring::new(Additive::new(vec![0.4, 0.6]).unwrap(), ranges.clone())
                    .unwrap(),
            ),
        ),
        (
            "normalized-complementary",
            ScoringRule::new(
                NormalizedScoring::new(
                    PerfectComplementary::new(vec![0.5, 0.5]).unwrap(),
                    ranges.clone(),
                )
                .unwrap(),
            ),
        ),
        (
            "normalized-cobb",
            ScoringRule::new(
                NormalizedScoring::new(
                    CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap(),
                    ranges.clone(),
                )
                .unwrap(),
            ),
        ),
    ];
    check(&Config::seeded(0xC4), &strategy, |rows| {
        let n = rows.len();
        let mut qualities = Vec::with_capacity(n * 2);
        let mut asks = Vec::with_capacity(n);
        for &(q1, q2, ask) in rows {
            qualities.extend_from_slice(&[q1, q2]);
            asks.push(ask);
        }
        for (name, rule) in &rules {
            // Reference: the per-bid quasi-linear score.
            let per_bid: Vec<f64> = rows
                .iter()
                .map(|&(q1, q2, ask)| {
                    rule.score(&Quality::new(vec![q1, q2]), ask)
                        .map_err(|e| e.to_string())
                })
                .collect::<Result<_, _>>()?;
            // Rule-level batch sweep.
            let mut batch = vec![0.0; n];
            rule.score_batch(&qualities, &asks, &mut batch)
                .map_err(|e| e.to_string())?;
            for (i, (b, p)) in batch.iter().zip(&per_bid).enumerate() {
                ensure(b.to_bits() == p.to_bits(), || {
                    format!("{name}: batch score {b} != per-bid {p} at bid {i}")
                })?;
            }
            // Store-level wiring: `score_with` fills the same bits.
            let mut store = BidStore::with_dims(2);
            for (i, &(q1, q2, ask)) in rows.iter().enumerate() {
                store
                    .push(NodeId(i as u64), &[q1, q2], ask)
                    .map_err(|e| e.to_string())?;
            }
            store.score_with(rule).map_err(|e| e.to_string())?;
            for (i, p) in per_bid.iter().enumerate() {
                ensure(store.score(i).to_bits() == p.to_bits(), || {
                    format!(
                        "{name}: store score {} != per-bid {p} at bid {i}",
                        store.score(i)
                    )
                })?;
            }
        }
        Ok(())
    });
}

/// The log-space `psi_fill_probability` agrees with the direct product form (the
/// pre-hardening implementation) to ~1e-12 on small inputs, and stays finite and sane at
/// population scales where the direct form overflows.
#[test]
fn psi_fill_probability_log_space_matches_direct_form() {
    use fmore::auction::winner::psi_fill_probability;
    // The direct product form, valid only while C(i+K-1, i) fits in f64.
    fn direct(n: usize, k: usize, psi: f64) -> f64 {
        let mut total = 0.0;
        let mut binom = 1.0_f64;
        for i in 0..=(n - k) {
            if i > 0 {
                binom *= (i + k - 1) as f64 / i as f64;
            }
            total += binom * (1.0 - psi).powi(i as i32) * psi.powi(k as i32);
        }
        total.min(1.0)
    }
    let strategy = Tuple3(
        UsizeRange::new(1, 40),
        UsizeRange::new(1, 40),
        F64Range::new(0.01, 0.99),
    );
    check(&Config::seeded(0xB8), &strategy, |(n, k, psi)| {
        let (n, k) = (*n.max(k), *k.min(n));
        let log_space = psi_fill_probability(n, k, *psi);
        let reference = direct(n, k, *psi);
        ensure((log_space - reference).abs() < 1e-12, || {
            format!("n={n} k={k} psi={psi}: log-space {log_space} vs direct {reference}")
        })
    });

    // Population scale: the direct form's binomial overflows (inf · 0 = NaN); the log-space
    // form stays exact-ish and monotone in ψ.
    let at_scale = psi_fill_probability(1_000_000, 64, 0.5);
    assert!(at_scale.is_finite() && at_scale > 0.999, "got {at_scale}");
    let low = psi_fill_probability(1_000_000, 64, 1e-4);
    assert!(low.is_finite() && (0.0..=1.0).contains(&low));
    assert!(psi_fill_probability(1_000_000, 64, 0.9) >= at_scale - 1e-12);
}

/// The scale game's tabulated solver at the population's θ support — the property twin of
/// the `ScaleGame` construction, sized down for per-case tabulation.
fn population_solver(n: usize) -> EquilibriumSolver {
    EquilibriumSolver::builder()
        .scoring(Additive::new(vec![0.4, 0.3, 0.3]).unwrap())
        .cost(LinearCost::new(vec![0.3, 0.3, 0.4]).unwrap())
        .theta(UniformDist::new(0.1, 0.9).unwrap())
        .bounds(vec![(0.0, 1.0); 3])
        .population(n)
        .winners(8.min(n))
        .grid_size(64)
        .build()
        .unwrap()
}

/// The fused `bid_into` is **bit-identical** to the decomposed
/// `theta` → `quality_into` → `tabulated_bid_into` sequence under both stream contracts —
/// the v1 guarantee that made the fusion safe for committed goldens, and the v2 guarantee
/// that the single-stream fast path computes the same bid the decomposed accessors
/// describe. `materialize` must agree on θ as well.
#[test]
fn bid_into_is_bit_identical_to_decomposed_derivation() {
    use fmore::mec::population::{NodePopulation, PopulationSpec, SpecVersion};
    let strategy = Tuple3(
        UsizeRange::new(1, 200),
        UsizeRange::new(0, 5),
        UsizeRange::new(0, 100_000),
    );
    check(&Config::seeded(0xD1), &strategy, |(n, round, seed)| {
        let solver = population_solver(*n);
        let round = *round as u64;
        for version in [SpecVersion::V1, SpecVersion::V2] {
            let spec = PopulationSpec::scale_default(*n, *seed as u64).with_version(version);
            let population = NodePopulation::new(spec).map_err(|e| e.to_string())?;
            let (mut cap, mut qual) = (Vec::new(), Vec::new());
            let (mut cap2, mut qual2) = (Vec::new(), Vec::new());
            for i in (0..*n).step_by(1 + n / 16) {
                let ask = population
                    .bid_into(i, round, &solver, &mut cap, &mut qual)
                    .map_err(|e| e.to_string())?;
                let theta = population.theta(i);
                population.quality_into(i, round, &mut cap2);
                let ask2 = solver
                    .tabulated_bid_into(theta, &cap2, &mut qual2)
                    .map_err(|e| e.to_string())?;
                ensure(
                    population.materialize(i).theta().to_bits() == theta.to_bits(),
                    || format!("{version:?}: materialize θ drifted at node {i}"),
                )?;
                ensure(ask.to_bits() == ask2.to_bits(), || {
                    format!("{version:?}: fused ask {ask} != decomposed {ask2} at node {i}")
                })?;
                ensure(
                    cap.iter()
                        .map(|v| v.to_bits())
                        .eq(cap2.iter().map(|v| v.to_bits())),
                    || format!("{version:?}: capacity drifted at node {i}: {cap:?} vs {cap2:?}"),
                )?;
                ensure(
                    qual.iter()
                        .map(|v| v.to_bits())
                        .eq(qual2.iter().map(|v| v.to_bits())),
                    || format!("{version:?}: quality drifted at node {i}: {qual:?} vs {qual2:?}"),
                )?;
            }
        }
        Ok(())
    });
}

/// The sharded columnar bid path — `bid_range_into_store` with its batched grid lookup
/// and SIMD-tiered derivation passes — appends exactly the bids the per-node
/// `bid_into` + `push_trusted` loop would, bit-for-bit, under both stream contracts and
/// across shard-boundary range shapes.
#[test]
fn bid_range_into_store_matches_per_node_bids_bitwise() {
    use fmore::auction::BidStore;
    use fmore::mec::population::{NodePopulation, PopulationSpec, SpecVersion};
    let strategy = Tuple3(
        UsizeRange::new(1, 300),
        UsizeRange::new(0, 3),
        UsizeRange::new(0, 100_000),
    );
    check(&Config::seeded(0xD2), &strategy, |(n, round, seed)| {
        let solver = population_solver(*n);
        let round = *round as u64;
        for version in [SpecVersion::V1, SpecVersion::V2] {
            let spec = PopulationSpec::scale_default(*n, *seed as u64).with_version(version);
            let population = NodePopulation::new(spec).map_err(|e| e.to_string())?;
            // Cover an empty range, a mid-range shard, and the full population.
            for range in [0..0, n / 3..(2 * n / 3).max(n / 3), 0..*n] {
                let mut streamed = BidStore::with_dims(3);
                population
                    .bid_range_into_store(range.clone(), round, &solver, &mut streamed)
                    .map_err(|e| e.to_string())?;
                let mut reference = BidStore::with_dims(3);
                let (mut cap, mut qual) = (Vec::new(), Vec::new());
                for i in range.clone() {
                    let ask = population
                        .bid_into(i, round, &solver, &mut cap, &mut qual)
                        .map_err(|e| e.to_string())?;
                    reference.push_trusted(NodeId(i as u64), &qual, ask);
                }
                ensure(streamed.len() == reference.len(), || {
                    format!(
                        "{version:?} {range:?}: {} bids vs {}",
                        streamed.len(),
                        reference.len()
                    )
                })?;
                for j in 0..streamed.len() {
                    ensure(
                        streamed.node(j) == reference.node(j)
                            && streamed.ask(j).to_bits() == reference.ask(j).to_bits()
                            && streamed
                                .quality(j)
                                .iter()
                                .map(|v| v.to_bits())
                                .eq(reference.quality(j).iter().map(|v| v.to_bits())),
                        || format!("{version:?} {range:?}: bid {j} drifted"),
                    )?;
                }
            }
        }
        Ok(())
    });
}

/// The SIMD-dispatched batch-scoring kernels agree **bit-for-bit** with their scalar
/// cores at every vector-boundary length (empty, sub-lane, exact-lane, lane+1 for both
/// 4- and 8-wide tiles) across the scoring families — the lengths where remainder-loop
/// bugs live. The undispatched families are checked against the per-bid path at the same
/// lengths.
#[test]
fn simd_score_batch_matches_scalar_cores_at_boundary_lengths() {
    const LENGTHS: [usize; 8] = [0, 1, 3, 4, 5, 7, 8, 9];
    let strategy = UsizeRange::new(0, 100_000);
    check(&Config::seeded(0xD3), &strategy, |seed| {
        let mut rng = fmore::numerics::seeded_rng(*seed as u64);
        use rand::Rng;
        for &len in &LENGTHS {
            for dims in [2usize, 3] {
                let qualities: Vec<f64> =
                    (0..len * dims).map(|_| rng.gen_range(0.0..1.0)).collect();
                let asks: Vec<f64> = (0..len).map(|_| rng.gen_range(0.0..2.0)).collect();
                let weights = &[0.4, 0.3, 0.3][..dims];
                let mut dispatched = vec![0.0; len];
                let mut scalar = vec![0.0; len];

                let additive = Additive::new(weights.to_vec()).unwrap();
                additive.score_batch(&qualities, &asks, &mut dispatched);
                additive.score_batch_scalar(&qualities, &asks, &mut scalar);
                ensure(
                    dispatched
                        .iter()
                        .map(|v| v.to_bits())
                        .eq(scalar.iter().map(|v| v.to_bits())),
                    || format!("additive len={len} dims={dims}: {dispatched:?} vs {scalar:?}"),
                )?;

                for exponents in [vec![1.0; dims], vec![0.5; dims]] {
                    let cobb = CobbDouglas::with_scale(25.0, exponents.clone()).unwrap();
                    cobb.score_batch(&qualities, &asks, &mut dispatched);
                    cobb.score_batch_scalar(&qualities, &asks, &mut scalar);
                    ensure(
                        dispatched
                            .iter()
                            .map(|v| v.to_bits())
                            .eq(scalar.iter().map(|v| v.to_bits())),
                        || {
                            format!(
                                "cobb-douglas {exponents:?} len={len} dims={dims}: \
                                 {dispatched:?} vs {scalar:?}"
                            )
                        },
                    )?;
                }

                // Undispatched families: batch vs per-bid at the same boundary lengths.
                let comp = ScoringRule::new(PerfectComplementary::new(weights.to_vec()).unwrap());
                let norm = ScoringRule::new(
                    NormalizedScoring::new(
                        Additive::new(weights.to_vec()).unwrap(),
                        vec![(0.0, 1.0); dims],
                    )
                    .unwrap(),
                );
                for (name, rule) in [("complementary", &comp), ("normalized", &norm)] {
                    rule.score_batch(&qualities, &asks, &mut dispatched)
                        .map_err(|e| e.to_string())?;
                    for i in 0..len {
                        let per_bid = rule
                            .score(
                                &Quality::new(qualities[i * dims..(i + 1) * dims].to_vec()),
                                asks[i],
                            )
                            .map_err(|e| e.to_string())?;
                        ensure(dispatched[i].to_bits() == per_bid.to_bits(), || {
                            format!(
                                "{name} len={len} dims={dims} bid {i}: batch {} vs per-bid \
                                 {per_bid}",
                                dispatched[i]
                            )
                        })?;
                    }
                }
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Aggregation-rule invariants (ISSUE 10): every rule is permutation-invariant,
// agrees with FedAvg bit-for-bit on clean batches, and recovers the honest
// mean under a Byzantine minority.
// ---------------------------------------------------------------------------

/// The full rule panel, with the Byzantine tolerance `f` each screening backend is
/// parameterised for.
fn aggregation_rules(f: usize) -> Vec<std::sync::Arc<dyn fmore::fl::AggregationRule>> {
    use fmore::fl::{CoordinateMedian, FedAvg, Krum, MedianNormScreen, ScreenPolicy, TrimmedMean};
    vec![
        std::sync::Arc::new(FedAvg),
        std::sync::Arc::new(MedianNormScreen(ScreenPolicy::default())),
        std::sync::Arc::new(CoordinateMedian::default()),
        std::sync::Arc::new(TrimmedMean::new(f)),
        std::sync::Arc::new(Krum::new(f)),
    ]
}

/// Every aggregation rule is permutation-invariant: rotating the batch changes neither
/// how many updates are accepted nor the aggregate (within summation-reorder tolerance —
/// the survivors are re-summed in the rotated order).
#[test]
fn aggregation_rules_are_permutation_invariant() {
    use fmore::fl::AggregationScratch;
    let strategy = Tuple3(
        Tuple2(UsizeRange::new(4, 9), UsizeRange::new(1, 6)),
        UsizeRange::new(1, 8),
        Tuple2(
            VecOf::new(F64Range::new(-10.0, 10.0), 54, 54),
            VecOf::new(F64Range::new(0.1, 5.0), 9, 9),
        ),
    );
    check(
        &Config::seeded(0xA66),
        &strategy,
        |((n, dim), rot, (values, weights))| {
            let (n, dim) = (*n, *dim);
            let batch: Vec<(Vec<f64>, f64)> = (0..n)
                .map(|i| {
                    let params: Vec<f64> = (0..dim)
                        .map(|d| values[(i * dim + d) % values.len()])
                        .collect();
                    (params, weights[i % weights.len()])
                })
                .collect();
            let rotated: Vec<(Vec<f64>, f64)> =
                (0..n).map(|i| batch[(i + rot) % n].clone()).collect();
            let mut scratch = AggregationScratch::new();
            for rule in aggregation_rules(1) {
                let mut out_a = Vec::new();
                let mut out_b = Vec::new();
                let borrow = |b: &'_ [(Vec<f64>, f64)]| -> Vec<(Vec<f64>, f64)> { b.to_vec() };
                let a_borrowed: Vec<(&[f64], f64)> =
                    batch.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
                let b_owned = borrow(&rotated);
                let b_borrowed: Vec<(&[f64], f64)> =
                    b_owned.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
                let a = rule
                    .aggregate_with(&a_borrowed, &mut out_a, &mut scratch)
                    .map_err(|e| e.to_string())?;
                let b = rule
                    .aggregate_with(&b_borrowed, &mut out_b, &mut scratch)
                    .map_err(|e| e.to_string())?;
                ensure(a.accepted == b.accepted, || {
                    format!(
                        "{}: rotation by {rot} changed accepted {} -> {}",
                        rule.name(),
                        a.accepted,
                        b.accepted
                    )
                })?;
                ensure(out_a.len() == out_b.len(), || {
                    format!("{}: rotation changed the output dimension", rule.name())
                })?;
                for (d, (x, y)) in out_a.iter().zip(&out_b).enumerate() {
                    ensure(
                        (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
                        || {
                            format!(
                                "{}: rotation by {rot} moved coordinate {d}: {x} vs {y}",
                                rule.name()
                            )
                        },
                    )?;
                }
            }
            Ok(())
        },
    );
}

/// One member of a clean "ray" cluster: `center + t_i · dir`, where the per-member scale
/// `t_i` walks [0.5, 1] in `n` even steps and `dir`'s sign alternates by coordinate only.
/// All members share one direction, so distances from any reasonable robust centre spread
/// linearly along the ray — the max never exceeds 4× the upper-median distance (and the
/// norms stay within 8× of their median), which is exactly the band every screen tolerates.
/// Per-member offsets with independent signs do NOT have this property: at dim 1 they
/// collapse into two clusters at `center ± s`, and the far cluster trips the screen.
fn ray_member(i: usize, n: usize, dim: usize, center: &[f64], spread: &[f64]) -> Vec<f64> {
    let t = 0.5 + 0.5 * i as f64 / (n - 1) as f64;
    (0..dim)
        .map(|d| {
            let sign = if d % 2 == 0 { 1.0 } else { -1.0 };
            center[d % center.len()] + sign * t * spread[d % spread.len()]
        })
        .collect()
}

/// With zero adversaries — a clean, tightly clustered batch — every rule quarantines
/// nothing and agrees with plain FedAvg **bit-for-bit**: the robust backends are screens
/// over the same weighted average, so on clean data they are free.
#[test]
fn aggregation_rules_match_fedavg_bits_with_zero_adversaries() {
    use fmore::fl::{AggregationRule, AggregationScratch, FedAvg};
    let strategy = Tuple3(
        Tuple2(UsizeRange::new(4, 9), UsizeRange::new(1, 6)),
        VecOf::new(F64Range::new(1.0, 2.0), 6, 6),
        Tuple2(
            VecOf::new(F64Range::new(0.5, 1.0), 6, 6),
            VecOf::new(F64Range::new(0.1, 5.0), 9, 9),
        ),
    );
    check(
        &Config::seeded(0xC1EA),
        &strategy,
        |((n, dim), center, (spread, weights))| {
            let (n, dim) = (*n, *dim);
            let batch: Vec<(Vec<f64>, f64)> = (0..n)
                .map(|i| {
                    (
                        ray_member(i, n, dim, center, spread),
                        weights[i % weights.len()],
                    )
                })
                .collect();
            let borrowed: Vec<(&[f64], f64)> =
                batch.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
            let mut scratch = AggregationScratch::new();
            let mut reference = Vec::new();
            FedAvg
                .aggregate_with(&borrowed, &mut reference, &mut scratch)
                .map_err(|e| e.to_string())?;
            for rule in aggregation_rules(1) {
                let mut out = Vec::new();
                let screened = rule
                    .aggregate_with(&borrowed, &mut out, &mut scratch)
                    .map_err(|e| e.to_string())?;
                ensure(screened.quarantined.is_empty(), || {
                    format!(
                        "{}: quarantined {} members of a clean batch",
                        rule.name(),
                        screened.quarantined.len()
                    )
                })?;
                ensure(out.len() == reference.len(), || {
                    format!("{}: output dimension diverged from FedAvg", rule.name())
                })?;
                for (d, (x, y)) in out.iter().zip(&reference).enumerate() {
                    ensure(x.to_bits() == y.to_bits(), || {
                        format!(
                            "{}: coordinate {d} is not bit-identical to FedAvg: {x} vs {y}",
                            rule.name()
                        )
                    })?;
                }
            }
            Ok(())
        },
    );
}

/// Under `f` Byzantine members (25×-scaled updates) in a batch of `n > 3f`, every robust
/// screening rule quarantines exactly the Byzantine set and recovers the honest weighted
/// mean **bit-for-bit** — survivors aggregate in batch order, so the result is literally
/// FedAvg over the honest subset.
#[test]
fn robust_rules_recover_the_honest_mean_under_byzantine_minority() {
    use fmore::fl::{federated_average_into, AggregationScratch};
    let strategy = Tuple3(
        Tuple3(
            UsizeRange::new(7, 10),
            UsizeRange::new(1, 2),
            UsizeRange::new(0, 9),
        ),
        Tuple2(
            UsizeRange::new(2, 6),
            VecOf::new(F64Range::new(1.0, 2.0), 6, 6),
        ),
        Tuple2(
            VecOf::new(F64Range::new(0.5, 1.0), 6, 6),
            VecOf::new(F64Range::new(0.1, 5.0), 10, 10),
        ),
    );
    check(
        &Config::seeded(0xB12A),
        &strategy,
        |((n, f, offset), (dim, center), (spread, weights))| {
            let (n, f, offset, dim) = (*n, *f, *offset, *dim);
            let byzantine: std::collections::BTreeSet<usize> =
                (0..f).map(|i| (offset + i) % n).collect();
            let batch: Vec<(Vec<f64>, f64)> = (0..n)
                .map(|i| {
                    let mut params = ray_member(i, n, dim, center, spread);
                    if byzantine.contains(&i) {
                        for p in &mut params {
                            *p *= 25.0;
                        }
                    }
                    (params, weights[i % weights.len()])
                })
                .collect();
            let borrowed: Vec<(&[f64], f64)> =
                batch.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
            let honest: Vec<(&[f64], f64)> = borrowed
                .iter()
                .enumerate()
                .filter(|(i, _)| !byzantine.contains(i))
                .map(|(_, u)| *u)
                .collect();
            let mut honest_mean = Vec::new();
            federated_average_into(honest.iter().copied(), &mut honest_mean)
                .map_err(|e| e.to_string())?;
            let mut scratch = AggregationScratch::new();
            // Skip FedAvg (index 0): the whole point is that it cannot survive this.
            for rule in aggregation_rules(f).into_iter().skip(1) {
                let mut out = Vec::new();
                let screened = rule
                    .aggregate_with(&borrowed, &mut out, &mut scratch)
                    .map_err(|e| e.to_string())?;
                let caught: std::collections::BTreeSet<usize> =
                    screened.quarantined.iter().map(|q| q.index).collect();
                ensure(caught == byzantine, || {
                    format!(
                        "{}: quarantined {caught:?}, expected the Byzantine set \
                         {byzantine:?} (n={n}, f={f})",
                        rule.name()
                    )
                })?;
                for (d, (x, y)) in out.iter().zip(&honest_mean).enumerate() {
                    ensure(x.to_bits() == y.to_bits(), || {
                        format!(
                            "{}: coordinate {d} missed the honest mean: {x} vs {y}",
                            rule.name()
                        )
                    })?;
                }
            }
            Ok(())
        },
    );
}
