//! Randomised property tests on the core mechanism invariants, run against the public
//! facade crate.
//!
//! The build environment has no registry access, so instead of `proptest` these properties
//! are exercised over seeded random samples drawn from the same vendored RNG the simulators
//! use — 64 cases per property, deterministic across runs.

use fmore::auction::prelude::*;
use fmore::numerics::normalize::MinMaxNormalizer;
use fmore::numerics::{seeded_rng, Distribution1D, UniformDist};
use rand::Rng;

const CASES: usize = 64;

/// The quasi-linear scoring rule is monotone: more quality or a lower ask never lowers the
/// score.
#[test]
fn score_is_monotone_in_quality_and_antitone_in_ask() {
    let mut rng = seeded_rng(0xA1);
    let rule = ScoringRule::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap());
    for _ in 0..CASES {
        let q1 = rng.gen_range(0.0..1.0);
        let q2 = rng.gen_range(0.0..1.0);
        let bump = rng.gen_range(0.0..0.5);
        let ask = rng.gen_range(0.0..1.0);
        let discount = rng.gen_range(0.0..0.5);
        let base = rule.score(&Quality::new(vec![q1, q2]), ask).unwrap();
        let better_quality = rule.score(&Quality::new(vec![q1 + bump, q2]), ask).unwrap();
        let cheaper = rule
            .score(&Quality::new(vec![q1, q2]), (ask - discount).max(0.0))
            .unwrap();
        assert!(better_quality >= base - 1e-12);
        assert!(cheaper >= base - 1e-12);
    }
}

/// First-price auctions always pay winners exactly their ask, and the winner set is never
/// larger than K or the number of bidders.
#[test]
fn auction_awards_are_consistent() {
    let mut rng = seeded_rng(0xA2);
    for case in 0..CASES {
        let n = rng.gen_range(1..40usize);
        let asks: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
        let k = rng.gen_range(1..10usize);
        let rule = ScoringRule::new(Additive::new(vec![1.0]).unwrap());
        let auction = Auction::new(rule, k, SelectionRule::TopK, PricingRule::FirstPrice);
        let bids: Vec<SubmittedBid> = asks
            .iter()
            .enumerate()
            .map(|(i, &ask)| SubmittedBid::new(NodeId(i as u64), Quality::new(vec![1.0]), ask))
            .collect();
        let outcome = auction.run(bids, &mut seeded_rng(case as u64)).unwrap();
        assert_eq!(outcome.winners.len(), k.min(asks.len()));
        for award in &outcome.winners {
            let original = asks[award.node.0 as usize];
            assert!((award.payment - original).abs() < 1e-12);
        }
        // Every winner's score is at least as good as every non-winner's score.
        let winner_ids = outcome.winner_ids();
        let min_winner = outcome
            .winners
            .iter()
            .map(|w| w.score)
            .fold(f64::INFINITY, f64::min);
        for bid in &outcome.ranked {
            if !winner_ids.contains(&bid.node) {
                assert!(bid.score <= min_winner + 1e-9);
            }
        }
    }
}

/// Equilibrium bids are individually rational and their expected profit is non-negative for
/// every type in the support.
#[test]
fn equilibrium_bids_are_individually_rational() {
    let cost = QuadraticCost::new(vec![1.0]).unwrap();
    let solver = EquilibriumSolver::builder()
        .scoring(Additive::new(vec![1.0]).unwrap())
        .cost(cost.clone())
        .theta(UniformDist::new(0.2, 1.0).unwrap())
        .bounds(vec![(0.0, 4.0)])
        .population(25)
        .winners(5)
        .grid_size(64)
        .build()
        .unwrap();
    let mut rng = seeded_rng(0xA3);
    for _ in 0..CASES {
        let theta = rng.gen_range(0.21..0.99);
        let bid = solver.bid_for(theta).unwrap();
        let c = cost.value(bid.quality.as_slice(), theta);
        assert!(bid.ask >= c - 1e-6);
        assert!(bid.expected_profit >= -1e-9);
        assert!((0.0..=1.0).contains(&bid.win_probability));
    }
}

/// ψ-FMore always returns exactly `min(K, N)` distinct winners regardless of ψ.
#[test]
fn psi_selection_always_fills_the_winner_set() {
    use fmore::auction::types::ScoredBid;
    let mut rng = seeded_rng(0xA4);
    for case in 0..CASES {
        let n = rng.gen_range(1..60usize);
        let k = rng.gen_range(1..30usize);
        let psi = rng.gen_range(0.01..1.0);
        let bids: Vec<ScoredBid> = (0..n)
            .map(|i| ScoredBid {
                node: NodeId(i as u64),
                quality: Quality::default(),
                ask: 0.0,
                score: i as f64,
            })
            .collect();
        let winners =
            SelectionRule::PsiFMore { psi }.select(&bids, k, &mut seeded_rng(500 + case as u64));
        assert_eq!(winners.len(), k.min(n));
        let mut dedup = winners.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), winners.len());
    }
}

/// Min–max normalisation always lands in [0, 1] and round-trips within the range.
#[test]
fn normalizer_round_trips() {
    let mut rng = seeded_rng(0xA5);
    for _ in 0..CASES {
        let lo = rng.gen_range(-100.0..100.0);
        let width = rng.gen_range(0.1..100.0);
        let x = rng.gen_range(-200.0..200.0);
        let n = MinMaxNormalizer::new(lo, lo + width);
        let y = n.normalize(x);
        assert!((0.0..=1.0).contains(&y));
        let back = n.denormalize(y);
        assert!(back >= lo - 1e-9 && back <= lo + width + 1e-9);
        // Values inside the range round-trip exactly (up to float error).
        if x >= lo && x <= lo + width {
            assert!((back - x).abs() < 1e-6);
        }
    }
}

/// The uniform θ distribution's quantile inverts its CDF everywhere.
#[test]
fn uniform_quantile_inverts_cdf() {
    let mut rng = seeded_rng(0xA6);
    for _ in 0..CASES {
        let lo = rng.gen_range(0.01..1.0);
        let width = rng.gen_range(0.1..2.0);
        let p = rng.gen_range(0.0..1.0);
        let d = UniformDist::new(lo, lo + width).unwrap();
        let q = d.quantile(p).unwrap();
        assert!((d.cdf(q) - p).abs() < 1e-4);
    }
}

/// FedAvg with identical updates returns that update unchanged, and its output always lies
/// inside the per-coordinate envelope of the inputs.
#[test]
fn federated_average_stays_in_envelope() {
    let mut rng = seeded_rng(0xA7);
    for _ in 0..CASES {
        let dim = rng.gen_range(1..20usize);
        let a: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let weight_a = rng.gen_range(0.1..10.0);
        let weight_b = rng.gen_range(0.1..10.0);
        let b: Vec<f64> = a.iter().map(|x| x + rng.gen_range(-1.0..1.0)).collect();
        let avg =
            fmore::fl::federated_average(&[(a.clone(), weight_a), (b.clone(), weight_b)]).unwrap();
        for i in 0..dim {
            let lo = a[i].min(b[i]) - 1e-9;
            let hi = a[i].max(b[i]) + 1e-9;
            assert!(avg[i] >= lo && avg[i] <= hi);
        }
        let same =
            fmore::fl::federated_average(&[(a.clone(), weight_a), (a.clone(), weight_b)]).unwrap();
        for (x, y) in same.iter().zip(&a) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
