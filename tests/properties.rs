//! Property-based tests (proptest) on the core mechanism invariants, run against the public
//! facade crate.

use fmore::auction::prelude::*;
use fmore::numerics::normalize::MinMaxNormalizer;
use fmore::numerics::{seeded_rng, Distribution1D, UniformDist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The quasi-linear scoring rule is monotone: more quality or a lower ask never lowers
    /// the score.
    #[test]
    fn score_is_monotone_in_quality_and_antitone_in_ask(
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
        bump in 0.0..0.5f64,
        ask in 0.0..1.0f64,
        discount in 0.0..0.5f64,
    ) {
        let rule = ScoringRule::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap());
        let base = rule.score(&Quality::new(vec![q1, q2]), ask).unwrap();
        let better_quality = rule.score(&Quality::new(vec![q1 + bump, q2]), ask).unwrap();
        let cheaper = rule.score(&Quality::new(vec![q1, q2]), (ask - discount).max(0.0)).unwrap();
        prop_assert!(better_quality >= base - 1e-12);
        prop_assert!(cheaper >= base - 1e-12);
    }

    /// First-price auctions always pay winners exactly their ask, and the winner set is never
    /// larger than K or the number of bidders.
    #[test]
    fn auction_awards_are_consistent(
        asks in proptest::collection::vec(0.0..2.0f64, 1..40),
        k in 1usize..10,
        seed in 0u64..1000,
    ) {
        let rule = ScoringRule::new(Additive::new(vec![1.0]).unwrap());
        let auction = Auction::new(rule, k, SelectionRule::TopK, PricingRule::FirstPrice);
        let bids: Vec<SubmittedBid> = asks
            .iter()
            .enumerate()
            .map(|(i, &ask)| SubmittedBid::new(NodeId(i as u64), Quality::new(vec![1.0]), ask))
            .collect();
        let outcome = auction.run(bids, &mut seeded_rng(seed)).unwrap();
        prop_assert_eq!(outcome.winners.len(), k.min(asks.len()));
        for award in &outcome.winners {
            let original = asks[award.node.0 as usize];
            prop_assert!((award.payment - original).abs() < 1e-12);
        }
        // Every winner's score is at least as good as every non-winner's score.
        let winner_ids = outcome.winner_ids();
        let min_winner = outcome
            .winners
            .iter()
            .map(|w| w.score)
            .fold(f64::INFINITY, f64::min);
        for bid in &outcome.ranked {
            if !winner_ids.contains(&bid.node) {
                prop_assert!(bid.score <= min_winner + 1e-9);
            }
        }
    }

    /// Equilibrium bids are individually rational and their expected profit is non-negative
    /// for every type in the support.
    #[test]
    fn equilibrium_bids_are_individually_rational(theta in 0.21f64..0.99) {
        let cost = QuadraticCost::new(vec![1.0]).unwrap();
        let solver = EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0]).unwrap())
            .cost(cost.clone())
            .theta(UniformDist::new(0.2, 1.0).unwrap())
            .bounds(vec![(0.0, 4.0)])
            .population(25)
            .winners(5)
            .grid_size(64)
            .build()
            .unwrap();
        let bid = solver.bid_for(theta).unwrap();
        let c = cost.value(bid.quality.as_slice(), theta);
        prop_assert!(bid.ask >= c - 1e-6);
        prop_assert!(bid.expected_profit >= -1e-9);
        prop_assert!((0.0..=1.0).contains(&bid.win_probability));
    }

    /// ψ-FMore always returns exactly `min(K, N)` distinct winners regardless of ψ.
    #[test]
    fn psi_selection_always_fills_the_winner_set(
        n in 1usize..60,
        k in 1usize..30,
        psi in 0.01f64..1.0,
        seed in 0u64..500,
    ) {
        use fmore::auction::types::ScoredBid;
        let bids: Vec<ScoredBid> = (0..n)
            .map(|i| ScoredBid {
                node: NodeId(i as u64),
                quality: Quality::default(),
                ask: 0.0,
                score: i as f64,
            })
            .collect();
        let winners = SelectionRule::PsiFMore { psi }.select(&bids, k, &mut seeded_rng(seed));
        prop_assert_eq!(winners.len(), k.min(n));
        let mut dedup = winners.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), winners.len());
    }

    /// Min–max normalisation always lands in [0, 1] and round-trips within the range.
    #[test]
    fn normalizer_round_trips(lo in -100.0..100.0f64, width in 0.1..100.0f64, x in -200.0..200.0f64) {
        let n = MinMaxNormalizer::new(lo, lo + width);
        let y = n.normalize(x);
        prop_assert!((0.0..=1.0).contains(&y));
        let back = n.denormalize(y);
        prop_assert!(back >= lo - 1e-9 && back <= lo + width + 1e-9);
        // Values inside the range round-trip exactly (up to float error).
        if x >= lo && x <= lo + width {
            prop_assert!((back - x).abs() < 1e-6);
        }
    }

    /// The uniform θ distribution's quantile inverts its CDF everywhere.
    #[test]
    fn uniform_quantile_inverts_cdf(lo in 0.01f64..1.0, width in 0.1f64..2.0, p in 0.0f64..1.0) {
        let d = UniformDist::new(lo, lo + width).unwrap();
        let q = d.quantile(p).unwrap();
        prop_assert!((d.cdf(q) - p).abs() < 1e-4);
    }

    /// FedAvg with identical updates returns that update unchanged, and its output always
    /// lies inside the per-coordinate envelope of the inputs.
    #[test]
    fn federated_average_stays_in_envelope(
        a in proptest::collection::vec(-5.0..5.0f64, 1..20),
        weight_a in 0.1..10.0f64,
        weight_b in 0.1..10.0f64,
        delta in proptest::collection::vec(-1.0..1.0f64, 1..20),
    ) {
        let dim = a.len().min(delta.len());
        let a: Vec<f64> = a[..dim].to_vec();
        let b: Vec<f64> = a.iter().zip(&delta[..dim]).map(|(x, d)| x + d).collect();
        let avg = fmore::fl::federated_average(&[(a.clone(), weight_a), (b.clone(), weight_b)]).unwrap();
        for i in 0..dim {
            let lo = a[i].min(b[i]) - 1e-9;
            let hi = a[i].max(b[i]) + 1e-9;
            prop_assert!(avg[i] >= lo && avg[i] <= hi);
        }
        let same = fmore::fl::federated_average(&[(a.clone(), weight_a), (a.clone(), weight_b)]).unwrap();
        for (x, y) in same.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
