//! Runs the dynamic-MEC robustness experiments: the dropout sweep, the Figs. 12–13
//! comparison under churn, and the straggler/payment-waste sweep — all through the
//! experiment registry on the shared worker pool.
//!
//! ```bash
//! cargo run --release --example churn_dynamics [quick|paper]
//! ```
//!
//! `quick` (the default) finishes in seconds; `paper` runs the 31-node cluster over 20
//! rounds per scenario.

use fmore::sim::experiments::registry::{self, Fidelity};
use fmore::sim::ScenarioRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = match std::env::args().nth(1).as_deref() {
        Some("paper") => Fidelity::Paper,
        _ => Fidelity::Quick,
    };
    let runner = ScenarioRunner::new();
    for name in ["churn-dropout", "churn-time", "churn-waste"] {
        let def = registry::find(name)?;
        let report = def.run(&runner, fidelity)?;
        println!("## {} ({})\n", def.name, def.figure);
        println!("{}\n", report.to_markdown());
    }
    Ok(())
}
