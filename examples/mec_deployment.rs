//! Regenerates a small version of Figs. 12–13: the simulated MEC cluster deployment, where
//! nodes bid computing power, bandwidth, and data size and the round wall-clock time is
//! derived from the selected nodes' resources.
//!
//! ```bash
//! cargo run --release --example mec_deployment
//! ```

use fmore::mec::cluster::{ClusterConfig, ClusterStrategy, MecCluster};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = 8;
    let mut config = ClusterConfig::fast_test();
    config.nodes = 16;
    config.winners_per_round = 5;
    config.fl.clients = 16;
    config.fl.partition.clients = 16;
    config.fl.train_samples = 2_000;
    config.fl.test_samples = 400;

    println!(
        "Simulated MEC cluster: {} nodes, K = {}, {} rounds\n",
        config.nodes, config.winners_per_round, rounds
    );

    for strategy in [ClusterStrategy::FMore, ClusterStrategy::RandFL] {
        let mut cluster = MecCluster::new(config.clone(), strategy, 5)?;
        let history = cluster.run(rounds)?;
        println!("== {} ==", strategy.name());
        println!("round  accuracy  round time (s)  cumulative (s)");
        for round in &history.rounds {
            println!(
                "{:>5}  {:>8.3}  {:>14.1}  {:>14.1}",
                round.learning.round,
                round.learning.accuracy,
                round.round_secs,
                round.cumulative_secs
            );
        }
        println!(
            "final accuracy {:.3}, total simulated time {:.1}s, incentive spend {:.3} across {} nodes\n",
            history.final_accuracy(),
            history.total_time_secs(),
            cluster.ledger().total(),
            cluster.ledger().distinct_winners()
        );
    }
    Ok(())
}
