//! The walk-through example of Section III-B (Fig. 3): five edge nodes, two resources
//! (training-data size and bandwidth), K = 3 winners, two auction rounds.
//!
//! ```bash
//! cargo run --release --example auction_walkthrough
//! ```

use fmore::auction::walkthrough::{label_of, run_walkthrough};
use fmore::numerics::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(1);
    let (round1, round2) = run_walkthrough(&mut rng)?;

    for (idx, outcome) in [round1, round2].iter().enumerate() {
        println!("== Round {} ==", idx + 1);
        println!("rank  node  score    ask    winner");
        let winner_ids = outcome.winner_ids();
        for (rank, bid) in outcome.ranked().iter().enumerate() {
            let is_winner = winner_ids.contains(&bid.node);
            println!(
                "{:>4}  {:>4}  {:>6.3}  {:>5.2}  {}",
                rank + 1,
                label_of(bid.node),
                bid.score,
                bid.ask,
                if is_winner { "yes" } else { "" }
            );
        }
        println!(
            "winners pay-out: {:.3} in total, mean winner score {:.3}\n",
            outcome.total_payment(),
            outcome.mean_winner_score()
        );
    }
    println!("Compare with Fig. 3 of the paper: round 1 selects {{A, D, E}}, round 2 selects {{A, C, E}}.");
    Ok(())
}
