//! Quickstart: run a few rounds of FMore-incentivised federated learning and compare against
//! RandFL on the same task.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fmore::fl::config::FlConfig;
use fmore::fl::selection::SelectionStrategy;
use fmore::fl::trainer::FederatedTrainer;
use fmore::ml::dataset::TaskKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = 6;
    let mut config = FlConfig::fast_test(TaskKind::MnistO);
    config.clients = 30;
    config.winners_per_round = 8;
    config.partition.clients = 30;
    config.train_samples = 2_000;
    config.test_samples = 400;

    println!(
        "FMore quickstart — task {}, N = {}, K = {}, {} rounds",
        config.task.name(),
        config.clients,
        config.winners_per_round,
        rounds
    );

    for strategy in [SelectionStrategy::fmore(), SelectionStrategy::random()] {
        let name = strategy.name();
        let mut trainer = FederatedTrainer::new(config.clone(), strategy, 7)?;
        let history = trainer.run(rounds)?;
        println!("\n== {name} ==");
        println!("round  accuracy  loss    payment");
        for round in &history.rounds {
            println!(
                "{:>5}  {:>8.3}  {:>6.3}  {:>7.3}",
                round.round,
                round.accuracy,
                round.loss,
                round.total_payment()
            );
        }
        println!(
            "final accuracy {:.3}, total incentive spend {:.3}",
            history.final_accuracy(),
            history.total_payment()
        );
    }
    Ok(())
}
