//! Regenerates small versions of the parameter studies (Figs. 9b, 10b, 11b): how the mean
//! winner payment and score react to the population size N and the winner count K, and how
//! ψ-FMore spreads its selections across score ranks.
//!
//! ```bash
//! cargo run --release --example parameter_sweep
//! ```

use fmore::sim::experiments::impact_n::auction_game_statistics;
use fmore::sim::experiments::impact_psi::rank_spread_for_psi;
use fmore::sim::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 9b: payment and score versus N (K = 20).
    let mut n_table = Table::new(
        "Payment and score vs N (Fig. 9b)",
        &["N", "mean payment", "mean score"],
    );
    for n in [50, 80, 110, 140, 170, 200] {
        let (payment, score) = auction_game_statistics(n, 20, 5, 100 + n as u64)?;
        n_table.push_row(&[
            n.to_string(),
            format!("{payment:.4}"),
            format!("{score:.4}"),
        ]);
    }
    println!("{}", n_table.to_markdown());

    // Fig. 10b: payment and score versus K (N = 100).
    let mut k_table = Table::new(
        "Payment and score vs K (Fig. 10b)",
        &["K", "mean payment", "mean score"],
    );
    for k in [5, 10, 15, 20, 25, 30, 35] {
        let (payment, score) = auction_game_statistics(100, k, 5, 200 + k as u64)?;
        k_table.push_row(&[
            k.to_string(),
            format!("{payment:.4}"),
            format!("{score:.4}"),
        ]);
    }
    println!("{}", k_table.to_markdown());

    // Fig. 11b: how many winners come from the top score ranks as ψ varies.
    let mut psi_table = Table::new(
        "Winner rank spread vs ψ (Fig. 11b)",
        &["ψ", "top-10", "top-20", "top-30"],
    );
    for psi in [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let spread = rank_spread_for_psi(psi, 100, 20, 300, 7);
        psi_table.push_row(&[
            format!("{psi:.1}"),
            format!("{:.1}", spread.top10),
            format!("{:.1}", spread.top20),
            format!("{:.1}", spread.top30),
        ]);
    }
    println!("{}", psi_table.to_markdown());
    Ok(())
}
