//! Regenerates a small version of Figs. 4–7: accuracy and loss per round for FMore, RandFL,
//! and FixFL on a chosen task.
//!
//! ```bash
//! cargo run --release --example accuracy_curves [mnist-o|mnist-f|cifar10|hpnews]
//! ```

use fmore::ml::dataset::TaskKind;
use fmore::sim::experiments::accuracy::{run, AccuracyConfig};
use fmore::sim::ScenarioRunner;

fn task_from_arg(arg: Option<String>) -> TaskKind {
    match arg.as_deref() {
        Some("mnist-f") => TaskKind::MnistF,
        Some("cifar10") => TaskKind::Cifar10,
        Some("hpnews") => TaskKind::HpNews,
        _ => TaskKind::MnistO,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = task_from_arg(std::env::args().nth(1));
    // A mid-sized configuration: larger than the unit-test config, far smaller than the full
    // paper sweep so the example finishes in seconds.
    let mut config = AccuracyConfig::quick(task);
    config.rounds = 8;
    config.fl.clients = 40;
    config.fl.winners_per_round = 10;
    config.fl.partition.clients = 40;
    config.fl.train_samples = 3_000;
    config.fl.test_samples = 500;

    println!("Reproducing the accuracy/loss figure for {} …", task.name());
    // The three schemes run in parallel on the shared worker pool.
    let figure = run(&ScenarioRunner::new(), &config)?;
    println!("{}", figure.to_table().to_markdown());

    for curve in &figure.curves {
        println!(
            "{:<7} final accuracy {:.3}, best accuracy {:.3}, total payment {:.3}",
            curve.strategy,
            curve.history.final_accuracy(),
            curve.history.best_accuracy(),
            curve.history.total_payment()
        );
    }
    Ok(())
}
