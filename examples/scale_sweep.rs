//! Runs the population-scale experiment family — streamed top-K selection, peak-memory
//! comparison, and dense-path parity — through the experiment registry.
//!
//! ```bash
//! cargo run --release --example scale_sweep [quick|paper]
//! ```
//!
//! `quick` (the default) sweeps N up to 20 000 and finishes in well under a second; `paper`
//! sweeps N from 10³ to 10⁶ and reports measured selection wall-clock per point (the
//! acceptance target is a sub-2 s single-threaded million-bidder round; the committed
//! record lives in `BENCH_auction_scale.json`).

use fmore::sim::experiments::registry::{self, Fidelity};
use fmore::sim::ScenarioRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = match std::env::args().nth(1).as_deref() {
        Some("paper") => Fidelity::Paper,
        _ => Fidelity::Quick,
    };
    let runner = ScenarioRunner::new();
    for name in ["scale-selection", "scale-memory", "scale-parity"] {
        let def = registry::find(name)?;
        let report = def.run(&runner, fidelity)?;
        println!("## {} ({})\n", def.name, def.figure);
        println!("{}\n", report.to_markdown());
    }
    Ok(())
}
