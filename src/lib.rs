//! # fmore
//!
//! A full reproduction of *"FMore: An Incentive Scheme of Multi-dimensional Auction for
//! Federated Learning in MEC"* (Zeng, Zhang, Wang, Chu — ICDCS 2020) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members so downstream users can depend on a
//! single crate:
//!
//! * [`auction`] — the paper's contribution: the multi-dimensional procurement auction with
//!   `K` winners, batched scoring/ranking, Nash-equilibrium bidding, ψ-FMore, the
//!   mechanism-property checks, and the stand-alone auction games behind the parameter
//!   sweeps ([`auction::game`]),
//! * [`numerics`] — ODE solvers, quadrature, distributions, and optimisation used by the
//!   equilibrium computation,
//! * [`ml`] — the from-scratch machine-learning substrate (CNN / LSTM / MLP models, synthetic
//!   datasets, non-IID partitioning),
//! * [`fl`] — the federated-learning substrate: clients, FedAvg, RandFL / FixFL / FMore
//!   selection, and the **round engine** ([`fl::engine`]) — the composable stage pipeline
//!   (bid collection → auction → local training → aggregation → evaluation) with a
//!   persistent worker pool behind every parallel stage,
//! * [`mec`] — the simulated 32-node MEC cluster, a thin driver over the same round engine
//!   with its own three-dimensional resource and wall-clock models,
//! * [`sim`] — the **scenario layer**: declarative [`sim::ScenarioSpec`]s executed by a
//!   pooled [`sim::ScenarioRunner`], one presentation module per paper figure, and the
//!   experiment registry ([`sim::experiments::registry`]).
//!
//! Architecture in one line: **one round pipeline, one worker pool, scenarios as data** —
//! every training run in the workspace (trainer, cluster, experiment sweeps) flows through
//! the same engine stages, and results are deterministic per seed regardless of thread
//! count or execution mode (pinned by `tests/determinism.rs`). See `crates/README.md` for
//! the stage diagram and the figure-by-figure run guide.
//!
//! # Quickstart
//!
//! ```
//! use fmore::fl::config::FlConfig;
//! use fmore::fl::selection::SelectionStrategy;
//! use fmore::fl::trainer::FederatedTrainer;
//! use fmore::ml::dataset::TaskKind;
//!
//! // Train a small federated task with FMore-based client selection (local training runs
//! // on the process-wide shared worker pool).
//! let config = FlConfig::fast_test(TaskKind::MnistO);
//! let mut trainer = FederatedTrainer::new(config, SelectionStrategy::fmore(), 1)?;
//! let history = trainer.run(3)?;
//! assert_eq!(history.rounds.len(), 3);
//! println!("final accuracy: {:.3}", history.final_accuracy());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Running experiments through the scenario engine
//!
//! ```
//! use fmore::sim::experiments::registry::{self, Fidelity};
//! use fmore::sim::{ScenarioRunner, ScenarioSpec};
//!
//! // Declarative: a scenario is data, the runner supplies the loop and the pool.
//! let runner = ScenarioRunner::new();
//! let spec = ScenarioSpec::new(
//!     "quick FMore",
//!     fmore::fl::FlConfig::fast_test(fmore::ml::dataset::TaskKind::MnistO),
//!     fmore::fl::SelectionStrategy::fmore(),
//!     2,
//!     7,
//! );
//! let outcome = runner.run(&spec)?;
//! assert_eq!(outcome.history.rounds.len(), 2);
//!
//! // Or run a registered paper figure by name.
//! let report = registry::find("scores")?.run(&runner, Fidelity::Quick)?;
//! assert!(report.to_markdown().contains("FMore"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use fmore_auction as auction;
pub use fmore_fl as fl;
pub use fmore_mec as mec;
pub use fmore_ml as ml;
pub use fmore_numerics as numerics;
pub use fmore_sim as sim;

/// The crate version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }

    #[test]
    fn reexports_are_wired_up() {
        // A smoke test touching one item from every re-exported crate.
        let _ = super::numerics::seeded_rng(1);
        let _ = super::auction::SelectionRule::TopK;
        let _ = super::ml::dataset::TaskKind::Cifar10;
        let _ = super::fl::selection::SelectionStrategy::fmore();
        let _ = super::mec::cluster::ClusterStrategy::FMore;
        let _ = super::sim::Series::from_rounds("x", vec![1.0]);
    }
}
