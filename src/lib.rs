//! # fmore
//!
//! A full reproduction of *"FMore: An Incentive Scheme of Multi-dimensional Auction for
//! Federated Learning in MEC"* (Zeng, Zhang, Wang, Chu — ICDCS 2020) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members so downstream users can depend on a
//! single crate:
//!
//! * [`auction`] — the paper's contribution: the multi-dimensional procurement auction with
//!   `K` winners, Nash-equilibrium bidding, ψ-FMore, and the mechanism-property checks,
//! * [`numerics`] — ODE solvers, quadrature, distributions, and optimisation used by the
//!   equilibrium computation,
//! * [`ml`] — the from-scratch machine-learning substrate (CNN / LSTM / MLP models, synthetic
//!   datasets, non-IID partitioning),
//! * [`fl`] — the federated-learning substrate (clients, FedAvg, RandFL / FixFL / FMore
//!   selection, the round loop of Algorithm 1),
//! * [`mec`] — the simulated 32-node MEC cluster with computation/communication time models,
//! * [`sim`] — experiment runners reproducing every figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use fmore::fl::config::FlConfig;
//! use fmore::fl::selection::SelectionStrategy;
//! use fmore::fl::trainer::FederatedTrainer;
//! use fmore::ml::dataset::TaskKind;
//!
//! // Train a small federated task with FMore-based client selection.
//! let config = FlConfig::fast_test(TaskKind::MnistO);
//! let mut trainer = FederatedTrainer::new(config, SelectionStrategy::fmore(), 1)?;
//! let history = trainer.run(3)?;
//! assert_eq!(history.rounds.len(), 3);
//! println!("final accuracy: {:.3}", history.final_accuracy());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use fmore_auction as auction;
pub use fmore_fl as fl;
pub use fmore_mec as mec;
pub use fmore_ml as ml;
pub use fmore_numerics as numerics;
pub use fmore_sim as sim;

/// The crate version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }

    #[test]
    fn reexports_are_wired_up() {
        // A smoke test touching one item from every re-exported crate.
        let _ = super::numerics::seeded_rng(1);
        let _ = super::auction::SelectionRule::TopK;
        let _ = super::ml::dataset::TaskKind::Cifar10;
        let _ = super::fl::selection::SelectionStrategy::fmore();
        let _ = super::mec::cluster::ClusterStrategy::FMore;
        let _ = super::sim::Series::from_rounds("x", vec![1.0]);
    }
}
