//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this vendored crate provides the
//! subset of the criterion 0.5 API the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up for `warm_up_time`, then run for up to
//! `measurement_time` (at least `sample_size` samples), and the mean, minimum, and maximum
//! per-iteration wall-clock times are printed to stdout. There is no statistical analysis,
//! HTML report, or baseline comparison — the point is relative numbers on one machine.
//!
//! # Quick mode (`--test`)
//!
//! Passing `--test` on the bench command line (`cargo bench --bench foo -- --test`) or
//! setting `FMORE_BENCH_QUICK=1` switches every benchmark to a single untimed-warm-up,
//! single-sample smoke run, mirroring real criterion's `--test` flag. In quick mode the
//! per-group `sample_size` / `warm_up_time` / `measurement_time` overrides are ignored, so
//! CI can execute a whole bench binary in milliseconds purely to catch panics and
//! result-changing regressions.

#![warn(missing_docs)]

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Whether quick (smoke) mode is active: `--test` among the process arguments or the
/// `FMORE_BENCH_QUICK` environment variable set to anything but `0`.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| {
        std::env::args().any(|a| a == "--test")
            || std::env::var("FMORE_BENCH_QUICK").is_ok_and(|v| v != "0")
    })
}

/// Opaque value sink preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. All variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        if quick_mode() {
            return Self {
                sample_size: 1,
                warm_up_time: Duration::ZERO,
                measurement_time: Duration::ZERO,
            };
        }
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Passed to every benchmark closure; drives the timed iterations.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// (mean, min, max) per-iteration time recorded by the last `iter` call.
    result: Option<(Duration, Duration, Duration, usize)>,
}

/// Running per-iteration statistics, accumulated without storing individual samples so a
/// nanosecond-scale routine can be measured for the full `measurement_time` in constant
/// memory.
#[derive(Default)]
struct RunningStats {
    total: Duration,
    min: Option<Duration>,
    max: Duration,
    count: usize,
}

impl RunningStats {
    fn record(&mut self, sample: Duration) {
        self.total += sample;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = self.max.max(sample);
        self.count += 1;
    }

    fn finish(self) -> (Duration, Duration, Duration, usize) {
        let mean = self.total / self.count.max(1) as u32;
        (mean, self.min.unwrap_or_default(), self.max, self.count)
    }
}

impl Bencher<'_> {
    /// Times `routine` repeatedly and records per-iteration statistics: at least
    /// `sample_size` iterations, continuing until `measurement_time` has elapsed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.settings.warm_up_time {
            black_box(routine());
        }

        let mut stats = RunningStats::default();
        let measure_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(routine());
            stats.record(t.elapsed());
            if stats.count >= self.settings.sample_size
                && measure_start.elapsed() >= self.settings.measurement_time
            {
                break;
            }
        }
        self.result = Some(stats.finish());
    }

    /// Times `routine` over inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.settings.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }

        let mut stats = RunningStats::default();
        let measure_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            stats.record(t.elapsed());
            if stats.count >= self.settings.sample_size
                && measure_start.elapsed() >= self.settings.measurement_time
            {
                break;
            }
        }
        self.result = Some(stats.finish());
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_one(name: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut bencher = Bencher {
        settings,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min, max, n)) => println!(
            "bench {name:<48} mean {:>12}  min {:>12}  max {:>12}  ({n} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
        ),
        None => println!("bench {name:<48} (no measurement recorded)"),
    }
}

/// Identifier of a parameterised benchmark: a function name plus a parameter rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks with shared measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark (ignored in quick mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !quick_mode() {
            self.settings.sample_size = n.max(1);
        }
        self
    }

    /// Sets the warm-up duration (ignored in quick mode).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !quick_mode() {
            self.settings.warm_up_time = d;
        }
        self
    }

    /// Sets the measurement duration (ignored in quick mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !quick_mode() {
            self.settings.measurement_time = d;
        }
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        run_one(&name, &self.settings, &mut f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let name = format!("{}/{}", self.name, id.full);
        run_one(&name, &self.settings, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs one top-level benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &self.settings, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            name: name.into(),
            settings,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let settings = Settings {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            settings: &settings,
            result: None,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        let (_, min, max, n) = b.result.expect("iter records a result");
        assert!(n >= 3);
        assert!(min <= max);
        assert!(count as usize >= n);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let settings = Settings {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
        };
        let mut b = Bencher {
            settings: &settings,
            result: None,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn groups_chain_settings() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(1)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn macros_compile() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("m");
            g.sample_size(1)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(1));
            g.bench_function("x", |b| b.iter(|| black_box(2 * 2)));
            g.finish();
        }
        criterion_group!(benches, target);
        benches();
    }
}
