//! Minimal property-testing harness: seeded generation plus greedy shrinking.
//!
//! The build environment has no registry access, so `proptest` is unavailable; this crate
//! provides the small subset the workspace needs, built directly on the deterministic RNG of
//! `fmore_numerics` ([`fmore_numerics::seeded_rng`] / [`fmore_numerics::rng::derive_seed`]),
//! so every property run is reproducible bit-for-bit from its configured seed.
//!
//! * a [`Strategy`] describes how to **generate** a random value and how to **shrink** a
//!   failing one toward simpler candidates,
//! * [`check`] runs a property over `cases` generated values; on failure it greedily walks
//!   the shrink tree (first failing candidate wins, repeat) and panics with the **minimal**
//!   counterexample it reached, the case index, and the seed needed to replay it,
//! * combinators cover the workspace's needs: scalar ranges, vectors, tuples, and constants.
//!
//! # Example
//!
//! ```should_panic
//! use minicheck::{check, Config, F64Range};
//!
//! // Fails for values >= 0.5; the reported counterexample shrinks toward 0.5.
//! check(&Config::default(), &F64Range::new(0.0, 1.0), |&x| {
//!     if x < 0.5 { Ok(()) } else { Err(format!("{x} is too large")) }
//! });
//! ```

#![warn(missing_docs)]

use fmore_numerics::rng::{derive_seed, seeded_rng};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;

/// How a [`check`] run is sized and seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: usize,
    /// Base seed; case `i` generates from `derive_seed(seed, i)`.
    pub seed: u64,
    /// Upper bound on shrink attempts once a counterexample is found.
    pub max_shrink_steps: usize,
}

impl Default for Config {
    /// 64 cases — the count the hand-rolled predecessor of this harness used — under a fixed
    /// seed.
    fn default() -> Self {
        Self {
            cases: 64,
            seed: 0x5EED_CA5E,
            max_shrink_steps: 512,
        }
    }
}

impl Config {
    /// A configuration with a property-specific seed (so two properties never share a
    /// generation stream).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Returns the configuration with the case count replaced.
    pub fn with_cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }
}

/// A value generator with optional shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly "simpler" candidates for a failing value, most aggressive first.
    /// The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Convenience for writing properties: `ensure(cond, || "message")`.
///
/// # Errors
///
/// Returns the rendered message when `cond` is false.
pub fn ensure<M: FnOnce() -> String>(cond: bool, msg: M) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

/// Runs `property` over `config.cases` generated values.
///
/// # Panics
///
/// Panics on the first failing case, reporting the shrunk (minimal) counterexample, the
/// original failure, the case index, and the seed to replay the run.
pub fn check<S, P>(config: &Config, strategy: &S, property: P)
where
    S: Strategy,
    P: Fn(&S::Value) -> Result<(), String>,
{
    for case in 0..config.cases {
        let mut rng = seeded_rng(derive_seed(config.seed, case as u64));
        let value = strategy.generate(&mut rng);
        if let Err(message) = property(&value) {
            let (minimal, minimal_message, steps) =
                shrink_failure(config, strategy, value.clone(), message.clone(), &property);
            panic!(
                "property failed at case {case}/{} (seed {:#x})\n  \
                 original counterexample: {value:?}\n    {message}\n  \
                 minimal counterexample ({steps} shrink steps): {minimal:?}\n    \
                 {minimal_message}",
                config.cases, config.seed
            );
        }
    }
}

/// Greedy shrink walk: repeatedly replace the counterexample with its first still-failing
/// shrink candidate until no candidate fails or the step budget runs out.
fn shrink_failure<S, P>(
    config: &Config,
    strategy: &S,
    mut value: S::Value,
    mut message: String,
    property: &P,
) -> (S::Value, String, usize)
where
    S: Strategy,
    P: Fn(&S::Value) -> Result<(), String>,
{
    let mut steps = 0usize;
    'outer: while steps < config.max_shrink_steps {
        for candidate in strategy.shrink(&value) {
            steps += 1;
            if let Err(m) = property(&candidate) {
                value = candidate;
                message = m;
                continue 'outer;
            }
            if steps >= config.max_shrink_steps {
                break 'outer;
            }
        }
        break;
    }
    (value, message, steps)
}

// ---------------------------------------------------------------------------
// Scalar strategies.
// ---------------------------------------------------------------------------

/// Uniform `f64` in `[lo, hi)`, shrinking toward `lo` by halving the distance.
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

impl F64Range {
    /// Creates the range strategy; requires `lo < hi` and finite bounds.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        Self { lo, hi }
    }
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }

    fn shrink(&self, &value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if value > self.lo {
            // A geometric ladder toward `lo`: aggressive cuts first, tiny nudges last, so
            // the greedy walk converges on the failure boundary instead of stalling once the
            // halfway candidate passes.
            out.push(self.lo);
            let distance = value - self.lo;
            let mut fraction = 0.5;
            for _ in 0..10 {
                let candidate = value - distance * fraction;
                if candidate > self.lo && candidate < value {
                    out.push(candidate);
                }
                fraction /= 2.0;
            }
        }
        out
    }
}

/// Uniform `usize` in `lo..=hi`, shrinking toward `lo` by halving.
#[derive(Debug, Clone, Copy)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

impl UsizeRange {
    /// Creates the inclusive range strategy; requires `lo <= hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi);
        Self { lo, hi }
    }
}

impl Strategy for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }

    fn shrink(&self, &value: &usize) -> Vec<usize> {
        let mut out = Vec::new();
        if value > self.lo {
            // Same geometric ladder as `F64Range`, ending in a single decrement so the walk
            // can always reach the exact integer boundary.
            out.push(self.lo);
            let distance = value - self.lo;
            let mut cut = distance / 2;
            while cut > 1 {
                out.push(value - cut);
                cut /= 2;
            }
            out.push(value - 1);
            out.dedup();
        }
        out
    }
}

/// Always produces the same value; never shrinks.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Compound strategies.
// ---------------------------------------------------------------------------

/// Vectors of an element strategy with a length range. Shrinks by removing elements (down to
/// the minimum length), then by shrinking individual elements.
#[derive(Debug, Clone, Copy)]
pub struct VecOf<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

impl<S> VecOf<S> {
    /// Creates the vector strategy; requires `min_len <= max_len`.
    pub fn new(elem: S, min_len: usize, max_len: usize) -> Self {
        assert!(min_len <= max_len);
        Self {
            elem,
            min_len,
            max_len,
        }
    }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: drop the back half, then drop single elements.
        if value.len() > self.min_len {
            let half_len = (value.len() / 2).max(self.min_len);
            if half_len < value.len() {
                out.push(value[..half_len].to_vec());
            }
            for i in (0..value.len()).rev() {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Element-wise shrinks, one position at a time.
        for (i, v) in value.iter().enumerate() {
            for candidate in self.elem.shrink(v) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Pairs of two independent strategies; shrinks one side at a time.
#[derive(Debug, Clone, Copy)]
pub struct Tuple2<A, B>(pub A, pub B);

impl<A: Strategy, B: Strategy> Strategy for Tuple2<A, B> {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, (a, b): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone()))
            .collect();
        out.extend(self.1.shrink(b).into_iter().map(|sb| (a.clone(), sb)));
        out
    }
}

/// Triples of three independent strategies; shrinks one side at a time.
#[derive(Debug, Clone, Copy)]
pub struct Tuple3<A, B, C>(pub A, pub B, pub C);

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for Tuple3<A, B, C> {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, (a, b, c): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone(), c.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|sb| (a.clone(), sb, c.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|sc| (a.clone(), b.clone(), sc)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn passing_properties_run_all_cases() {
        use std::cell::Cell;
        let seen = Cell::new(0usize);
        check(
            &Config::seeded(1).with_cases(32),
            &F64Range::new(0.0, 1.0),
            |&x| {
                seen.set(seen.get() + 1);
                ensure((0.0..1.0).contains(&x), || format!("{x} out of range"))
            },
        );
        assert_eq!(seen.get(), 32);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut rng = seeded_rng(seed);
            let strat = VecOf::new(F64Range::new(-1.0, 1.0), 0, 8);
            (0..8).map(|_| strat.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn failures_shrink_to_a_minimal_counterexample() {
        // Property fails for x >= 0.5: the shrunk counterexample must be near the boundary,
        // far below typical originals.
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(&Config::seeded(2), &F64Range::new(0.0, 4.0), |&x| {
                ensure(x < 0.5, || format!("{x} >= 0.5"))
            });
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("minimal counterexample"), "{message}");
        // Parse the shrunk value out of the report: it follows the "shrink steps): " marker.
        let tail = message.split("shrink steps): ").nth(1).unwrap();
        let value: f64 = tail.split_whitespace().next().unwrap().parse().unwrap();
        assert!(
            (0.5..0.6).contains(&value),
            "shrunk value {value} should be close to the 0.5 boundary"
        );
    }

    #[test]
    fn usize_shrinking_reaches_the_boundary() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(&Config::seeded(3), &UsizeRange::new(0, 1000), |&n| {
                ensure(n < 17, || format!("{n} >= 17"))
            });
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        let tail = message.split("shrink steps): ").nth(1).unwrap();
        let value: usize = tail.split_whitespace().next().unwrap().parse().unwrap();
        assert_eq!(
            value, 17,
            "greedy halving + decrement finds the exact boundary"
        );
    }

    #[test]
    fn vec_shrinking_drops_irrelevant_elements() {
        // Fails whenever the vector contains an element >= 100: minimal counterexample is a
        // single-element vector.
        let strat = VecOf::new(UsizeRange::new(0, 500), 0, 16);
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(&Config::seeded(4), &strat, |v| {
                ensure(v.iter().all(|&x| x < 100), || {
                    format!("{v:?} has a big element")
                })
            });
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        let tail = message.split("shrink steps): ").nth(1).unwrap();
        let open = tail.find('[').unwrap();
        let close = tail.find(']').unwrap();
        let elems: Vec<usize> = tail[open + 1..close]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().unwrap())
            .collect();
        assert_eq!(elems.len(), 1, "minimal vector keeps only the offender");
        assert_eq!(elems[0], 100, "and shrinks the offender to the boundary");
    }

    #[test]
    fn tuples_shrink_one_side_at_a_time() {
        let strat = Tuple2(UsizeRange::new(0, 50), UsizeRange::new(0, 50));
        let shrinks = strat.shrink(&(10, 20));
        assert!(shrinks.iter().all(|&(a, b)| a == 10 || b == 20));
        assert!(shrinks.contains(&(0, 20)));
        assert!(shrinks.contains(&(10, 0)));
        let strat3 = Tuple3(
            UsizeRange::new(0, 5),
            UsizeRange::new(0, 5),
            UsizeRange::new(0, 5),
        );
        assert!(strat3.shrink(&(1, 1, 1)).contains(&(0, 1, 1)));
        assert!(strat3.shrink(&(1, 1, 1)).contains(&(1, 1, 0)));
        // Generation stays within bounds.
        let mut rng = seeded_rng(5);
        for _ in 0..32 {
            let (a, b, c) = strat3.generate(&mut rng);
            assert!(a <= 5 && b <= 5 && c <= 5);
        }
    }

    #[test]
    fn just_produces_its_constant_and_never_shrinks() {
        let strat = Just(42u64);
        let mut rng = seeded_rng(6);
        assert_eq!(strat.generate(&mut rng), 42);
        assert!(strat.shrink(&42).is_empty());
    }

    #[test]
    fn config_builders() {
        let c = Config::seeded(7).with_cases(10);
        assert_eq!(c.cases, 10);
        assert_eq!(c.seed, 7);
        assert_eq!(Config::default().cases, 64);
    }
}
