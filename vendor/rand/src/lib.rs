//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate provides the
//! subset of the `rand` 0.8 API the workspace actually uses — [`Rng`], [`SeedableRng`], and
//! [`rngs::StdRng`] — with a deterministic xoshiro256++ generator behind it. Seeding goes
//! through SplitMix64 exactly once, so streams derived from nearby seeds are decorrelated.
//!
//! The statistical quality is more than sufficient for the simulations in this repository,
//! and determinism per seed (the property every experiment depends on) is guaranteed on all
//! platforms. The bit streams do **not** match the upstream `rand` crate.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

mod sealed {
    /// Scalar types [`super::SampleRange`] is implemented over.
    pub trait UniformScalar: Copy + PartialOrd {
        fn sample_below_inclusive<R: super::RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            rng: &mut R,
        ) -> Self;
        fn sample_below_exclusive<R: super::RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            rng: &mut R,
        ) -> Self;
    }
}
use sealed::UniformScalar;

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformScalar for $t {
            fn sample_below_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Widening multiply maps a 64-bit draw onto the span with negligible bias.
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
            fn sample_below_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                Self::sample_below_inclusive(lo, hi - 1, rng)
            }
        }
    )*};
}
uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformScalar for $t {
            fn sample_below_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let unit = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * unit;
                if v > hi { hi } else { v }
            }
            fn sample_below_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                // `unit` < 1, so the result stays strictly below `hi` except for rounding at
                // the top of very narrow ranges, which we clamp back inside.
                let unit = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * unit;
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
        }
    )*};
}
uniform_float!(f64, f32);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformScalar> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below_exclusive(self.start, self.end, rng)
    }
}

impl<T: UniformScalar> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_below_inclusive(lo, hi, rng)
    }
}

/// The user-facing generator interface (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full uniform range (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [a, b, c, d] = self.s;
            let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
            let t = b << 17;
            let mut s = [a, b, c, d];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "exclusive range should hit every value: {seen:?}"
        );
        let mut hit_hi = false;
        for _ in 0..1_000 {
            if rng.gen_range(0..=4usize) == 4 {
                hit_hi = true;
            }
        }
        assert!(hit_hi, "inclusive range should reach its upper endpoint");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&x));
            let y = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&y));
        }
        // Degenerate inclusive range yields the single point.
        assert_eq!(rng.gen_range(3.0..=3.0f64), 3.0);
        assert_eq!(rng.gen_range(9..=9usize), 9);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "p=0.25 over 10k draws: {hits}"
        );
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (4_500..5_500).contains(&c),
                "bucket count {c} outside tolerance"
            );
        }
    }
}
