//! Per-round metrics and the full training history.

use fmore_auction::NodeId;

/// What the aggregator recorded about one selected client in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct WinnerInfo {
    /// Index of the client in the trainer's client list.
    pub client: usize,
    /// The client's node identifier.
    pub node: NodeId,
    /// Number of samples the client trained on this round (`D_i` in Eq. 3).
    pub data_size: usize,
    /// Distinct classes in the client's training data this round.
    pub categories: usize,
    /// The client's auction score (0 for RandFL / FixFL, which run no auction).
    pub score: f64,
    /// The payment promised to the client (0 for RandFL / FixFL).
    pub payment: f64,
}

/// Everything recorded about one federated-learning round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetrics {
    /// Round index, starting at 1.
    pub round: usize,
    /// Global-model accuracy on the held-out test set after aggregation.
    pub accuracy: f64,
    /// Global-model loss on the held-out test set after aggregation.
    pub loss: f64,
    /// The selected clients.
    pub winners: Vec<WinnerInfo>,
    /// All scores computed in this round's auction (empty for RandFL / FixFL); used by the
    /// score-distribution analysis of Fig. 8.
    pub all_scores: Vec<f64>,
}

impl RoundMetrics {
    /// Total payment promised this round.
    pub fn total_payment(&self) -> f64 {
        self.winners.iter().map(|w| w.payment).sum()
    }

    /// Mean winner score this round.
    pub fn mean_winner_score(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.winners.iter().map(|w| w.score).sum::<f64>() / self.winners.len() as f64
    }

    /// Mean winner payment this round.
    pub fn mean_winner_payment(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.total_payment() / self.winners.len() as f64
    }

    /// Total number of samples fed into this round's aggregation.
    pub fn total_data(&self) -> usize {
        self.winners.iter().map(|w| w.data_size).sum()
    }
}

/// The sequence of per-round metrics produced by one training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingHistory {
    /// Metrics per round, in order.
    pub rounds: Vec<RoundMetrics>,
}

impl TrainingHistory {
    /// Accuracy after every round.
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.accuracy).collect()
    }

    /// Loss after every round.
    pub fn loss_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.loss).collect()
    }

    /// Accuracy after the last round, `0.0` if no rounds were run.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.accuracy)
    }

    /// Loss after the last round, `0.0` if no rounds were run.
    pub fn final_loss(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.loss)
    }

    /// The first round (1-based) whose accuracy reaches `target`, or `None` if the target is
    /// never reached. This is the "rounds to accuracy" metric of Figs. 9a/10a/11a.
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.rounds
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.round)
    }

    /// Best accuracy reached at any round.
    pub fn best_accuracy(&self) -> f64 {
        self.rounds.iter().map(|r| r.accuracy).fold(0.0, f64::max)
    }

    /// Total payment promised over the whole run.
    pub fn total_payment(&self) -> f64 {
        self.rounds.iter().map(|r| r.total_payment()).sum()
    }

    /// Flattened list of every winner score across all rounds (Fig. 8 input).
    pub fn winner_scores(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .flat_map(|r| r.winners.iter().map(|w| w.score))
            .collect()
    }

    /// Flattened list of every score computed in any auction across all rounds.
    pub fn all_scores(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .flat_map(|r| r.all_scores.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn winner(client: usize, score: f64, payment: f64, data: usize) -> WinnerInfo {
        WinnerInfo {
            client,
            node: NodeId(client as u64),
            data_size: data,
            categories: 3,
            score,
            payment,
        }
    }

    fn round(idx: usize, acc: f64, loss: f64) -> RoundMetrics {
        RoundMetrics {
            round: idx,
            accuracy: acc,
            loss,
            winners: vec![winner(0, 1.0, 0.2, 100), winner(1, 0.8, 0.3, 50)],
            all_scores: vec![1.0, 0.8, 0.1],
        }
    }

    #[test]
    fn round_aggregates() {
        let r = round(1, 0.5, 1.2);
        assert!((r.total_payment() - 0.5).abs() < 1e-12);
        assert!((r.mean_winner_score() - 0.9).abs() < 1e-12);
        assert!((r.mean_winner_payment() - 0.25).abs() < 1e-12);
        assert_eq!(r.total_data(), 150);

        let empty = RoundMetrics {
            round: 1,
            accuracy: 0.0,
            loss: 0.0,
            winners: vec![],
            all_scores: vec![],
        };
        assert_eq!(empty.mean_winner_score(), 0.0);
        assert_eq!(empty.mean_winner_payment(), 0.0);
    }

    #[test]
    fn history_series_and_targets() {
        let h = TrainingHistory {
            rounds: vec![round(1, 0.3, 2.0), round(2, 0.55, 1.5), round(3, 0.7, 1.1)],
        };
        assert_eq!(h.accuracy_series(), vec![0.3, 0.55, 0.7]);
        assert_eq!(h.loss_series(), vec![2.0, 1.5, 1.1]);
        assert_eq!(h.final_accuracy(), 0.7);
        assert_eq!(h.final_loss(), 1.1);
        assert_eq!(h.best_accuracy(), 0.7);
        assert_eq!(h.rounds_to_accuracy(0.5), Some(2));
        assert_eq!(h.rounds_to_accuracy(0.9), None);
        assert!((h.total_payment() - 1.5).abs() < 1e-12);
        assert_eq!(h.winner_scores().len(), 6);
        assert_eq!(h.all_scores().len(), 9);
    }

    #[test]
    fn empty_history_defaults() {
        let h = TrainingHistory::default();
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.final_loss(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert_eq!(h.rounds_to_accuracy(0.1), None);
        assert!(h.accuracy_series().is_empty());
    }
}
