//! Per-round metrics and the full training history.

use fmore_auction::NodeId;

/// What the aggregator recorded about one selected client in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct WinnerInfo {
    /// Index of the client in the trainer's client list.
    pub client: usize,
    /// The client's node identifier.
    pub node: NodeId,
    /// Number of samples the client trained on this round (`D_i` in Eq. 3).
    pub data_size: usize,
    /// Distinct classes in the client's training data this round.
    pub categories: usize,
    /// The client's auction score (0 for RandFL / FixFL, which run no auction).
    pub score: f64,
    /// The payment promised to the client (0 for RandFL / FixFL).
    pub payment: f64,
}

/// Dynamic-environment accounting of one round: what churn did to the winner set.
///
/// In a static run every selected winner finishes and aggregates, so the outcome is the
/// trivial `selected == completed` record. Under a churn model (see `fmore_mec::dynamics`)
/// winners can vanish mid-round (**dropouts**), finish late (**stragglers**, which may then
/// miss the server **deadline** and be excluded from aggregation), and under-quota rounds
/// recruit **replacements** through re-auction waves over the standing bid pool.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundOutcome {
    /// Total winners assigned this round, including re-auction replacements.
    pub selected: usize,
    /// Assigned winners whose update reached aggregation.
    pub completed: usize,
    /// Assigned winners that vanished mid-round; their update is lost and they forfeit
    /// payment (work was never delivered).
    pub dropouts: usize,
    /// Assigned winners slowed by a straggler event this round (whether or not they still
    /// made the deadline).
    pub stragglers: usize,
    /// Assigned winners that delivered their update after the server deadline; the late
    /// update is excluded from aggregation but the payment is honoured (and wasted).
    pub deadline_misses: usize,
    /// Re-auction waves run to refill an under-quota winner set.
    pub reauction_waves: usize,
    /// Winners recruited by re-auction (a subset of `selected`).
    pub replacements: usize,
    /// Payment promised to winners whose update never aggregated (deadline misses pay for
    /// discarded work).
    pub wasted_payment: f64,
}

impl RoundOutcome {
    /// The trivial outcome of a static round: everyone selected completes.
    pub fn all_completed(selected: usize) -> Self {
        Self {
            selected,
            completed: selected,
            ..Self::default()
        }
    }

    /// Fraction of assigned winners whose update reached aggregation (1.0 for an empty
    /// round).
    pub fn completion_rate(&self) -> f64 {
        if self.selected == 0 {
            return 1.0;
        }
        self.completed as f64 / self.selected as f64
    }

    /// Element-wise sum of many per-round outcomes into run totals — the single aggregation
    /// behind both `TrainingHistory` and `ClusterHistory` churn accounting.
    pub fn accumulate<'a, I: IntoIterator<Item = &'a RoundOutcome>>(outcomes: I) -> RoundOutcome {
        outcomes
            .into_iter()
            .fold(RoundOutcome::default(), |acc, o| RoundOutcome {
                selected: acc.selected + o.selected,
                completed: acc.completed + o.completed,
                dropouts: acc.dropouts + o.dropouts,
                stragglers: acc.stragglers + o.stragglers,
                deadline_misses: acc.deadline_misses + o.deadline_misses,
                reauction_waves: acc.reauction_waves + o.reauction_waves,
                replacements: acc.replacements + o.replacements,
                wasted_payment: acc.wasted_payment + o.wasted_payment,
            })
    }

    /// Mean completion rate over many per-round outcomes (1.0 when there are none).
    pub fn mean_completion_rate<'a, I: IntoIterator<Item = &'a RoundOutcome>>(outcomes: I) -> f64 {
        let (sum, count) = outcomes
            .into_iter()
            .fold((0.0, 0usize), |(s, n), o| (s + o.completion_rate(), n + 1));
        if count == 0 {
            return 1.0;
        }
        sum / count as f64
    }
}

/// Everything recorded about one federated-learning round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetrics {
    /// Round index, starting at 1.
    pub round: usize,
    /// Global-model accuracy on the held-out test set after aggregation.
    pub accuracy: f64,
    /// Global-model loss on the held-out test set after aggregation.
    pub loss: f64,
    /// The selected clients whose updates reached aggregation.
    pub winners: Vec<WinnerInfo>,
    /// All scores computed in this round's auction (empty for RandFL / FixFL); used by the
    /// score-distribution analysis of Fig. 8.
    pub all_scores: Vec<f64>,
    /// Churn accounting of the round (trivial in static runs).
    pub outcome: RoundOutcome,
}

impl RoundMetrics {
    /// Total payment promised this round.
    pub fn total_payment(&self) -> f64 {
        self.winners.iter().map(|w| w.payment).sum()
    }

    /// Mean winner score this round.
    pub fn mean_winner_score(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.winners.iter().map(|w| w.score).sum::<f64>() / self.winners.len() as f64
    }

    /// Mean winner payment this round.
    pub fn mean_winner_payment(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.total_payment() / self.winners.len() as f64
    }

    /// Total number of samples fed into this round's aggregation.
    pub fn total_data(&self) -> usize {
        self.winners.iter().map(|w| w.data_size).sum()
    }
}

/// The sequence of per-round metrics produced by one training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingHistory {
    /// Metrics per round, in order.
    pub rounds: Vec<RoundMetrics>,
}

impl TrainingHistory {
    /// Accuracy after every round.
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.accuracy).collect()
    }

    /// Loss after every round.
    pub fn loss_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.loss).collect()
    }

    /// Accuracy after the last round, `0.0` if no rounds were run.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.accuracy)
    }

    /// Loss after the last round, `0.0` if no rounds were run.
    pub fn final_loss(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.loss)
    }

    /// The first round (1-based) whose accuracy reaches `target`, or `None` if the target is
    /// never reached. This is the "rounds to accuracy" metric of Figs. 9a/10a/11a.
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.rounds
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.round)
    }

    /// Best accuracy reached at any round.
    pub fn best_accuracy(&self) -> f64 {
        self.rounds.iter().map(|r| r.accuracy).fold(0.0, f64::max)
    }

    /// Total payment promised over the whole run.
    pub fn total_payment(&self) -> f64 {
        self.rounds.iter().map(|r| r.total_payment()).sum()
    }

    /// Flattened list of every winner score across all rounds (Fig. 8 input).
    pub fn winner_scores(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .flat_map(|r| r.winners.iter().map(|w| w.score))
            .collect()
    }

    /// Flattened list of every score computed in any auction across all rounds.
    pub fn all_scores(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .flat_map(|r| r.all_scores.iter().copied())
            .collect()
    }

    /// Element-wise run totals of the per-round churn accounting.
    pub fn churn_totals(&self) -> RoundOutcome {
        RoundOutcome::accumulate(self.rounds.iter().map(|r| &r.outcome))
    }

    /// Total winners that vanished mid-round over the whole run.
    pub fn total_dropouts(&self) -> usize {
        self.churn_totals().dropouts
    }

    /// Total straggler events over the whole run.
    pub fn total_stragglers(&self) -> usize {
        self.churn_totals().stragglers
    }

    /// Total deadline misses over the whole run.
    pub fn total_deadline_misses(&self) -> usize {
        self.churn_totals().deadline_misses
    }

    /// Total re-auction waves over the whole run.
    pub fn total_reauction_waves(&self) -> usize {
        self.churn_totals().reauction_waves
    }

    /// Total winners recruited by re-auction over the whole run.
    pub fn total_replacements(&self) -> usize {
        self.churn_totals().replacements
    }

    /// Total payment promised for updates that never aggregated.
    pub fn total_wasted_payment(&self) -> f64 {
        self.churn_totals().wasted_payment
    }

    /// Mean per-round completion rate (1.0 for an empty history).
    pub fn mean_completion_rate(&self) -> f64 {
        RoundOutcome::mean_completion_rate(self.rounds.iter().map(|r| &r.outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn winner(client: usize, score: f64, payment: f64, data: usize) -> WinnerInfo {
        WinnerInfo {
            client,
            node: NodeId(client as u64),
            data_size: data,
            categories: 3,
            score,
            payment,
        }
    }

    fn round(idx: usize, acc: f64, loss: f64) -> RoundMetrics {
        RoundMetrics {
            round: idx,
            accuracy: acc,
            loss,
            winners: vec![winner(0, 1.0, 0.2, 100), winner(1, 0.8, 0.3, 50)],
            all_scores: vec![1.0, 0.8, 0.1],
            outcome: RoundOutcome {
                selected: 3,
                completed: 2,
                dropouts: 1,
                stragglers: 1,
                deadline_misses: 0,
                reauction_waves: 1,
                replacements: 1,
                wasted_payment: 0.25,
            },
        }
    }

    #[test]
    fn round_aggregates() {
        let r = round(1, 0.5, 1.2);
        assert!((r.total_payment() - 0.5).abs() < 1e-12);
        assert!((r.mean_winner_score() - 0.9).abs() < 1e-12);
        assert!((r.mean_winner_payment() - 0.25).abs() < 1e-12);
        assert_eq!(r.total_data(), 150);

        let empty = RoundMetrics {
            round: 1,
            accuracy: 0.0,
            loss: 0.0,
            winners: vec![],
            all_scores: vec![],
            outcome: RoundOutcome::default(),
        };
        assert_eq!(empty.mean_winner_score(), 0.0);
        assert_eq!(empty.mean_winner_payment(), 0.0);
    }

    #[test]
    fn outcome_accounting_aggregates_over_the_run() {
        let h = TrainingHistory {
            rounds: vec![round(1, 0.3, 2.0), round(2, 0.55, 1.5)],
        };
        assert_eq!(h.total_dropouts(), 2);
        assert_eq!(h.total_stragglers(), 2);
        assert_eq!(h.total_deadline_misses(), 0);
        assert_eq!(h.total_reauction_waves(), 2);
        assert_eq!(h.total_replacements(), 2);
        assert!((h.total_wasted_payment() - 0.5).abs() < 1e-12);
        assert!((h.mean_completion_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Empty histories and rounds default to a perfect completion rate.
        assert_eq!(TrainingHistory::default().mean_completion_rate(), 1.0);
        assert_eq!(RoundOutcome::default().completion_rate(), 1.0);
        let trivial = RoundOutcome::all_completed(5);
        assert_eq!(trivial.selected, 5);
        assert_eq!(trivial.completed, 5);
        assert_eq!(trivial.completion_rate(), 1.0);
        assert_eq!(trivial.dropouts, 0);
    }

    #[test]
    fn history_series_and_targets() {
        let h = TrainingHistory {
            rounds: vec![round(1, 0.3, 2.0), round(2, 0.55, 1.5), round(3, 0.7, 1.1)],
        };
        assert_eq!(h.accuracy_series(), vec![0.3, 0.55, 0.7]);
        assert_eq!(h.loss_series(), vec![2.0, 1.5, 1.1]);
        assert_eq!(h.final_accuracy(), 0.7);
        assert_eq!(h.final_loss(), 1.1);
        assert_eq!(h.best_accuracy(), 0.7);
        assert_eq!(h.rounds_to_accuracy(0.5), Some(2));
        assert_eq!(h.rounds_to_accuracy(0.9), None);
        assert!((h.total_payment() - 1.5).abs() < 1e-12);
        assert_eq!(h.winner_scores().len(), 6);
        assert_eq!(h.all_scores().len(), 9);
    }

    #[test]
    fn empty_history_defaults() {
        let h = TrainingHistory::default();
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.final_loss(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert_eq!(h.rounds_to_accuracy(0.1), None);
        assert!(h.accuracy_series().is_empty());
    }
}
