//! Seeded, deterministic fault injection for the service round pipeline, plus the
//! watchdog/retry policy that recovers from it.
//!
//! FMore's premise (§I/§VI of the paper) is FL over *unreliable* MEC edge nodes: workers
//! that crash mid-task, stall past any reasonable deadline, vanish between selection and
//! delivery, or hand back garbage updates. The service survives all of these by
//! construction (errors-not-panics, per-job isolation), but nothing so far could *provoke*
//! them on demand — and an untested recovery path is a broken recovery path.
//!
//! This module is the provoker. A [`FaultPlan`] attached to a
//! [`JobSpec`](crate::service::JobSpec) describes fault rates; a [`FaultClock`] turns the
//! plan's one seed word into per-`(job, round, attempt, slot)` uniform draws with exactly
//! the same `derive_seed`-chain discipline as the straggler draws of
//! [`DeadlineSpec`](crate::service::DeadlineSpec). Two consequences fall out of that
//! discipline:
//!
//! * **Chaos is replayable.** The same spec injects the same faults at the same slots in
//!   every run, at every pool width, beside any neighbours — so chaos runs are pinned by
//!   the same bit-identical golden/determinism machinery as healthy runs.
//! * **Retries can draw clean.** Draws are keyed by the *attempt* as well as the round, so
//!   a watchdog retry of a faulted round re-executes against fresh fault draws while the
//!   auction RNG (keyed by `(seed, round)` only) replays identically — a recovered round
//!   is bit-identical to a round that never faulted.
//!
//! The recovery side lives in [`WatchdogSpec`]: a per-round simulated-time budget whose
//! overrun becomes a typed [`FlError::RoundTimeout`], a bounded retry count, and a
//! deterministic exponential backoff that is *accounted* (recorded in the
//! [`RoundRecord`](crate::service::RoundRecord)) rather than slept, keeping chaos suites
//! fast and bit-stable.

use crate::error::FlError;
use fmore_numerics::rng::derive_seed;

/// How a corrupted model update is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The first parameter becomes `NaN` (a silently poisonous value).
    Nan,
    /// Every parameter becomes `+∞`.
    Inf,
    /// Every parameter is multiplied by [`FaultPlan::corrupt_scale`] (a norm outlier that
    /// stays finite — the screening policy must catch it by magnitude, not by `is_finite`).
    Scale,
}

impl Corruption {
    /// Applies this corruption to a parameter vector in place.
    pub fn apply(self, params: &mut [f64], scale: f64) {
        match self {
            Corruption::Nan => {
                if let Some(first) = params.first_mut() {
                    *first = f64::NAN;
                }
            }
            Corruption::Inf => params.fill(f64::INFINITY),
            Corruption::Scale => {
                for p in params.iter_mut() {
                    *p *= scale;
                }
            }
        }
    }
}

/// The kind of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A bid-collection shard panicked on its worker (slot = the shard's start index).
    FillPanic,
    /// A per-winner work task panicked on its worker.
    WorkPanic,
    /// A per-winner work task stalled: [`FaultPlan::stall_secs`] simulated seconds are
    /// charged to the round (tripping the watchdog budget), and the task briefly parks its
    /// worker for real so the executor's stall diagnostics see genuine dead time.
    Stall,
    /// A winner dropped out mid-round: its update and payment are forfeited.
    Dropout,
    /// A winner's model update came back corrupted.
    CorruptUpdate(Corruption),
}

/// One injected fault, recorded as a typed entry in the round's
/// [`RoundRecord`](crate::service::RoundRecord).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The attempt (0-based) during which the fault fired.
    pub attempt: u32,
    /// The slot the fault hit: a winner slot, or the shard start index for
    /// [`FaultKind::FillPanic`].
    pub slot: usize,
    /// What was injected.
    pub kind: FaultKind,
}

/// A job's fault-injection plan: per-stage fault rates, all derived from one seed word.
///
/// Rates are per-slot (or per-shard, for fill panics) Bernoulli probabilities evaluated by
/// the job's [`FaultClock`]. A plan is pure data — attaching it to a spec changes the
/// job's history only through the faults it injects, and two jobs with the same plan but
/// different job seeds draw independent fault streams.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed word of the fault stream (independent of the job's auction seed).
    pub seed: u64,
    /// Probability a bid-collection shard panics on its worker.
    pub fill_panic_rate: f64,
    /// Probability a per-winner work task panics.
    pub panic_rate: f64,
    /// Probability a per-winner work task stalls.
    pub stall_rate: f64,
    /// Simulated seconds one stall charges to the round (the watchdog's trigger).
    pub stall_secs: f64,
    /// Probability a winner drops out mid-round (after the deadline gate).
    pub dropout_rate: f64,
    /// Probability a winner's update is corrupted before aggregation.
    pub corrupt_rate: f64,
    /// Multiplier used by [`Corruption::Scale`].
    pub corrupt_scale: f64,
    /// Attempts (0-based, exclusive bound) in which injection is active: `1` means faults
    /// fire on the first attempt only, so every watchdog retry executes clean — the
    /// configuration chaos suites use to *guarantee* recovery within the retry budget.
    /// `u32::MAX` keeps faults active on every attempt.
    pub faulty_attempts: u32,
}

impl FaultPlan {
    /// The chaos-soak preset: every fault class active at rates that hit a quick-fidelity
    /// fleet hard, first attempt only (retries are clean, so recovery is structural).
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            fill_panic_rate: 0.10,
            panic_rate: 0.15,
            stall_rate: 0.20,
            stall_secs: 30.0,
            dropout_rate: 0.15,
            corrupt_rate: 0.25,
            corrupt_scale: 1e9,
            faulty_attempts: 1,
        }
    }

    /// Validates the plan's rates and budgets. Every rate must be a probability in
    /// `[0, 1]`; `panic_rate + stall_rate` share one draw and must sum to at most `1`
    /// (otherwise the stall band is silently truncated); stall charges and the corruption
    /// scale must be finite and non-negative. Checked at service admission, so a
    /// malformed plan is a typed [`FlError::InvalidConfig`] before any draw happens.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FlError> {
        for (name, rate) in [
            ("fill_panic_rate", self.fill_panic_rate),
            ("panic_rate", self.panic_rate),
            ("stall_rate", self.stall_rate),
            ("dropout_rate", self.dropout_rate),
            ("corrupt_rate", self.corrupt_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(FlError::InvalidConfig(format!(
                    "fault plan {name} {rate} is not a probability in [0, 1]"
                )));
            }
        }
        if self.panic_rate + self.stall_rate > 1.0 {
            return Err(FlError::InvalidConfig(format!(
                "fault plan panic_rate + stall_rate {} exceeds the one-draw budget of 1",
                self.panic_rate + self.stall_rate
            )));
        }
        if !self.stall_secs.is_finite() || self.stall_secs < 0.0 {
            return Err(FlError::InvalidConfig(format!(
                "fault plan stall_secs {} must be finite and non-negative",
                self.stall_secs
            )));
        }
        if !self.corrupt_scale.is_finite() {
            return Err(FlError::InvalidConfig(format!(
                "fault plan corrupt_scale {} must be finite",
                self.corrupt_scale
            )));
        }
        Ok(())
    }
}

// Draw channels: distinct words folded into the seed chain so each fault class draws an
// independent uniform per (round, attempt, slot).
const CH_FILL_PANIC: u64 = 0xF1;
const CH_WORK: u64 = 0xF2;
const CH_DROPOUT: u64 = 0xF3;
const CH_CORRUPT: u64 = 0xF4;
const CH_CORRUPT_KIND: u64 = 0xF5;

/// The deterministic fault stream of one job: `derive_seed`-chained uniforms keyed by
/// `(plan seed ⊕ job seed, round, attempt, slot, channel)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClock {
    seed: u64,
}

impl FaultClock {
    /// Binds a plan to a job: the clock's root seed mixes the plan's seed word with the
    /// job's auction seed, so two jobs sharing one plan still fault independently.
    pub fn new(plan: &FaultPlan, job_seed: u64) -> Self {
        Self {
            seed: derive_seed(plan.seed, job_seed),
        }
    }

    /// Deterministic uniform draw in `[0, 1)` — the same mantissa construction as
    /// `DeadlineSpec::uniform`, one more derivation deep for the attempt and channel.
    fn uniform(&self, round: u64, attempt: u32, slot: u64, channel: u64) -> f64 {
        let h = derive_seed(
            derive_seed(
                derive_seed(derive_seed(self.seed, round), u64::from(attempt) + 1),
                slot + 1,
            ),
            channel,
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn active(plan: &FaultPlan, attempt: u32) -> bool {
        attempt < plan.faulty_attempts
    }

    /// Whether the bid-collection shard starting at `shard_start` panics this attempt.
    pub fn fill_panics(
        &self,
        plan: &FaultPlan,
        round: u64,
        attempt: u32,
        shard_start: usize,
    ) -> bool {
        Self::active(plan, attempt)
            && self.uniform(round, attempt, shard_start as u64, CH_FILL_PANIC)
                < plan.fill_panic_rate
    }

    /// The fault (if any) injected into winner `slot`'s work task this attempt: one draw
    /// split between [`FaultKind::WorkPanic`] and [`FaultKind::Stall`], so a slot never
    /// both panics and stalls.
    pub fn work_fault(
        &self,
        plan: &FaultPlan,
        round: u64,
        attempt: u32,
        slot: usize,
    ) -> Option<FaultKind> {
        if !Self::active(plan, attempt) {
            return None;
        }
        let u = self.uniform(round, attempt, slot as u64, CH_WORK);
        if u < plan.panic_rate {
            Some(FaultKind::WorkPanic)
        } else if u < plan.panic_rate + plan.stall_rate {
            Some(FaultKind::Stall)
        } else {
            None
        }
    }

    /// Whether winner `slot` drops out mid-round this attempt.
    pub fn drops_out(&self, plan: &FaultPlan, round: u64, attempt: u32, slot: usize) -> bool {
        Self::active(plan, attempt)
            && self.uniform(round, attempt, slot as u64, CH_DROPOUT) < plan.dropout_rate
    }

    /// The corruption (if any) applied to winner `slot`'s update this attempt; the
    /// corruption kind is a second, independent draw split evenly three ways.
    pub fn corruption(
        &self,
        plan: &FaultPlan,
        round: u64,
        attempt: u32,
        slot: usize,
    ) -> Option<Corruption> {
        if !Self::active(plan, attempt)
            || self.uniform(round, attempt, slot as u64, CH_CORRUPT) >= plan.corrupt_rate
        {
            return None;
        }
        let kind = self.uniform(round, attempt, slot as u64, CH_CORRUPT_KIND);
        Some(if kind < 1.0 / 3.0 {
            Corruption::Nan
        } else if kind < 2.0 / 3.0 {
            Corruption::Inf
        } else {
            Corruption::Scale
        })
    }
}

/// A job's round watchdog: the per-round simulated-time budget and the bounded
/// retry/backoff policy applied when a round fails retryably.
///
/// The budget is checked against *simulated* seconds (the deadline model's wave time plus
/// injected stall charges), never wall-clock — a watchdog that raced real threads would
/// make chaos histories flaky, and the whole point is that they are pinned. Backoff is
/// likewise deterministic accounting: `backoff_base_secs · backoff_factor^attempt` per
/// retry, summed into [`RoundRecord::backoff_secs`](crate::service::RoundRecord), with no
/// real sleeping.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogSpec {
    /// Simulated seconds one round attempt may spend before it is declared wedged and
    /// fails with [`FlError::RoundTimeout`].
    pub round_budget_secs: f64,
    /// Retries allowed after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff charged for the first retry, in simulated seconds.
    pub backoff_base_secs: f64,
    /// Multiplicative backoff growth per further retry.
    pub backoff_factor: f64,
}

impl WatchdogSpec {
    /// A forgiving default: a minute of simulated budget, three retries, 1 s → 2 s → 4 s
    /// backoff.
    pub fn standard() -> Self {
        Self {
            round_budget_secs: 60.0,
            max_retries: 3,
            backoff_base_secs: 1.0,
            backoff_factor: 2.0,
        }
    }

    /// The backoff charged before retrying failed attempt `attempt` (0-based).
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.backoff_base_secs * self.backoff_factor.powi(attempt as i32)
    }

    /// Whether an error is worth retrying: transient round-scoped failures (a panicked
    /// task, a blown round budget, a fully quarantined aggregation, a fully excluded bid
    /// pool) are; structural failures (bad config, unknown ids, admission/backpressure)
    /// never heal by retry.
    pub fn retryable(error: &FlError) -> bool {
        matches!(
            error,
            FlError::JobPanic(_)
                | FlError::RoundTimeout { .. }
                | FlError::AllUpdatesQuarantined { .. }
                | FlError::AllBiddersExcluded { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_attempt_keyed() {
        let plan = FaultPlan::chaos(99);
        let clock = FaultClock::new(&plan, 7);
        for slot in 0..32 {
            assert_eq!(
                clock.work_fault(&plan, 3, 0, slot),
                clock.work_fault(&plan, 3, 0, slot),
                "same key, same draw"
            );
        }
        // With faulty_attempts = 1 every retry attempt is clean by construction.
        for slot in 0..64 {
            assert_eq!(clock.work_fault(&plan, 3, 1, slot), None);
            assert!(!clock.drops_out(&plan, 3, 2, slot));
            assert_eq!(clock.corruption(&plan, 3, 1, slot), None);
            assert!(!clock.fill_panics(&plan, 3, 1, slot));
        }
        let mut unlimited = plan.clone();
        unlimited.faulty_attempts = u32::MAX;
        let faults_on_retry = (0..64)
            .filter(|&slot| clock.work_fault(&unlimited, 3, 1, slot).is_some())
            .count();
        assert!(faults_on_retry > 0, "unlimited plans keep faulting retries");
    }

    #[test]
    fn rates_are_respected_in_aggregate() {
        let plan = FaultPlan::chaos(1234);
        let clock = FaultClock::new(&plan, 1);
        let n = 4000;
        let drops = (0..n)
            .filter(|&slot| clock.drops_out(&plan, 1, 0, slot))
            .count();
        let rate = drops as f64 / n as f64;
        assert!(
            (rate - plan.dropout_rate).abs() < 0.03,
            "empirical dropout rate {rate} strays from {}",
            plan.dropout_rate
        );
        // Different jobs sharing one plan draw independent streams.
        let other = FaultClock::new(&plan, 2);
        let agree = (0..n)
            .filter(|&slot| {
                clock.drops_out(&plan, 1, 0, slot) == other.drops_out(&plan, 1, 0, slot)
            })
            .count();
        assert!(agree < n, "two jobs' fault streams must differ");
    }

    #[test]
    fn corruption_kinds_all_occur_and_apply() {
        let plan = FaultPlan::chaos(5);
        let clock = FaultClock::new(&plan, 9);
        let mut seen = [false; 3];
        for slot in 0..2000 {
            match clock.corruption(&plan, 1, 0, slot) {
                Some(Corruption::Nan) => seen[0] = true,
                Some(Corruption::Inf) => seen[1] = true,
                Some(Corruption::Scale) => seen[2] = true,
                None => {}
            }
        }
        assert_eq!(seen, [true; 3], "all three corruption kinds drawn");

        let mut params = vec![1.0, 2.0];
        Corruption::Nan.apply(&mut params, 1e9);
        assert!(params[0].is_nan() && params[1] == 2.0);
        let mut params = vec![1.0, 2.0];
        Corruption::Inf.apply(&mut params, 1e9);
        assert!(params.iter().all(|p| p.is_infinite()));
        let mut params = vec![1.0, 2.0];
        Corruption::Scale.apply(&mut params, 1e9);
        assert_eq!(params, vec![1e9, 2e9]);
    }

    #[test]
    fn watchdog_backoff_is_exponential_and_retryability_is_typed() {
        let w = WatchdogSpec::standard();
        assert_eq!(w.backoff_secs(0), 1.0);
        assert_eq!(w.backoff_secs(1), 2.0);
        assert_eq!(w.backoff_secs(2), 4.0);
        assert!(WatchdogSpec::retryable(&FlError::RoundTimeout {
            round: 1,
            sim_secs: 90.0,
            budget_secs: 60.0,
        }));
        assert!(WatchdogSpec::retryable(&FlError::JobPanic(
            crate::executor::JobPanic {
                slot: 0,
                message: "boom".into(),
            }
        )));
        assert!(WatchdogSpec::retryable(&FlError::AllUpdatesQuarantined {
            quarantined: 4
        }));
        assert!(WatchdogSpec::retryable(&FlError::AllBiddersExcluded {
            excluded: 12
        }));
        assert!(!WatchdogSpec::retryable(&FlError::UnknownJob(3)));
        assert!(!WatchdogSpec::retryable(&FlError::InvalidConfig(
            "x".into()
        )));
    }

    #[test]
    fn plan_validation_rejects_out_of_range_rates_and_budgets() {
        assert!(FaultPlan::chaos(1).validate().is_ok());
        type Mutation = Box<dyn Fn(&mut FaultPlan)>;
        let cases: Vec<(&str, Mutation)> = vec![
            ("fill_panic_rate", Box::new(|p| p.fill_panic_rate = 1.5)),
            ("panic_rate", Box::new(|p| p.panic_rate = -0.1)),
            ("stall_rate", Box::new(|p| p.stall_rate = f64::NAN)),
            ("dropout_rate", Box::new(|p| p.dropout_rate = 2.0)),
            ("corrupt_rate", Box::new(|p| p.corrupt_rate = -1.0)),
            (
                "one-draw budget",
                Box::new(|p| {
                    p.panic_rate = 0.7;
                    p.stall_rate = 0.7;
                }),
            ),
            ("stall_secs", Box::new(|p| p.stall_secs = -1.0)),
            ("stall_secs", Box::new(|p| p.stall_secs = f64::INFINITY)),
            ("corrupt_scale", Box::new(|p| p.corrupt_scale = f64::NAN)),
        ];
        for (what, poison) in cases {
            let mut plan = FaultPlan::chaos(1);
            poison(&mut plan);
            let err = plan.validate().unwrap_err();
            assert!(
                matches!(err, FlError::InvalidConfig(_)),
                "{what}: expected InvalidConfig, got {err}"
            );
        }
    }
}
