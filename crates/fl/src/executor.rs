//! The sharded work-stealing executor behind every parallel stage of the round pipeline.
//!
//! The first pooled engine (PR 1) was a single `Mutex<Receiver<Job>>` that every worker
//! contended on, fed one `Box`ed job at a time, with results funnelled back through a
//! per-call `(usize, T)` channel. Correct, but it serialised exactly the part that was
//! supposed to scale: a 512-task fan-out was 512 locked sends on the way in and 512 locked
//! receives on the way out, and the queue lock was the hottest line in the profile.
//!
//! This module replaces that substrate while keeping the public surface
//! ([`WorkerPool::new`], [`WorkerPool::run_indexed`], [`WorkerPool::threads`]) byte-for-byte
//! compatible, so `RoundEngine`, the trainer, the MEC cluster, `ScenarioRunner::map`, and
//! the streamed auction stage all inherit the win without changing a line:
//!
//! * **Chunked batch submission.** A fan-out of `n` tasks is published as
//!   `O(width)` contiguous *range units* (one injector lock for the whole batch), not `n`
//!   queued closures. The tasks themselves live in a single shared [`FanOut`] slab.
//! * **Per-worker deques + a global injector.** Each worker owns a deque of range units.
//!   Executing a unit wider than the steal granularity first splits it — the upper half is
//!   pushed onto the owner's deque where idle workers steal it from the opposite end — so
//!   imbalance self-corrects at `O(log n)` deque operations instead of per-task handoffs.
//! * **Reusable result slots.** Every task writes its result into its own pre-sized slot in
//!   the [`FanOut`] slab (disjoint ranges, so no synchronisation per write); the submitter
//!   wakes once on a completion latch instead of draining a channel `n` times.
//! * **Per-slot panic markers.** A panicking task records [`JobPanic`] in its slot rather
//!   than silently vanishing; [`WorkerPool::run_indexed_checked`] surfaces every slot's
//!   fate, and [`WorkerPool::run_indexed`] re-raises the first panic with its slot index.
//!   Workers themselves never die — the pool keeps full capacity across poisoned waves.
//!
//! **Determinism contract.** Results are identified by submission index and written to
//! disjoint slots, so the output order — and therefore everything downstream, from FedAvg
//! to the golden figure fingerprints — is a pure function of the submitted tasks. Worker
//! count, steal order, and split depth are wall-clock knobs only; the determinism suite
//! pins bit-identical histories across widths 1/2/8 under active stealing.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of work returning a value; see [`crate::engine::RoundEngine::run_tasks`].
pub type Task<T> = Box<dyn FnOnce() -> T + Send + 'static>;

thread_local! {
    /// Set while the current thread is a pool worker, so nested fan-outs (an experiment sweep
    /// whose tasks themselves train in parallel) degrade to inline execution instead of
    /// deadlocking on a saturated pool.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is a pool worker (nested fan-outs run inline).
pub(crate) fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(|flag| flag.get())
}

/// Number of workers used when a pool is created with `threads = 0`.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .clamp(1, 8)
}

/// Locks a mutex, recovering the guard if a previous holder panicked (workers catch task
/// panics before touching any queue lock, so poisoning is already impossible by
/// construction — this just keeps the pool unkillable even if that invariant slips).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The fate marker of one fan-out slot whose task panicked: callers of
/// [`WorkerPool::run_indexed_checked`] can tell "this worker's job died" apart from "this
/// job produced an empty result", per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the panicked task.
    pub slot: usize,
    /// Rendered panic payload (`&str` / `String` payloads verbatim, a placeholder
    /// otherwise).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pooled task in slot {} panicked: {}",
            self.slot, self.message
        )
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// The fan-out slab: tasks and result slots of one `run_indexed` call.
// ---------------------------------------------------------------------------

/// One task/result slot pair. The `UnsafeCell`s are raced-free by construction: every slot
/// index belongs to exactly one range unit (ranges are disjoint under splitting), and the
/// submitter only reads after the completion latch — which the last writer sets — has
/// flipped.
struct FanCell<T> {
    task: UnsafeCell<Option<Task<T>>>,
    result: UnsafeCell<Option<Result<T, String>>>,
}

/// The shared slab of one indexed fan-out: pre-sized task and result slots, the steal
/// granularity, a remaining-task latch, and the condvar the submitter parks on.
struct FanOut<T> {
    cells: Vec<FanCell<T>>,
    split_len: usize,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: slots are only touched by the worker owning the (disjoint) range that contains
// them, and by the submitter after the `done` latch synchronises with the last writer.
unsafe impl<T: Send> Sync for FanOut<T> {}

impl<T: Send + 'static> FanOut<T> {
    fn new(tasks: Vec<Task<T>>, split_len: usize) -> Self {
        let cells = tasks
            .into_iter()
            .map(|task| FanCell {
                task: UnsafeCell::new(Some(task)),
                result: UnsafeCell::new(None),
            })
            .collect::<Vec<_>>();
        let remaining = AtomicUsize::new(cells.len());
        Self {
            cells,
            split_len,
            remaining,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Blocks the submitter until every slot has been written.
    fn wait_done(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Drains the result slots in submission order. Only called by the submitter after
    /// [`FanOut::wait_done`], which synchronises with every writer.
    fn take_results(&self) -> Vec<Result<T, JobPanic>> {
        self.cells
            .iter()
            .enumerate()
            .map(|(slot, cell)| {
                // SAFETY: all writers finished (done latch) and the submitter is the only
                // reader.
                let written = unsafe { &mut *cell.result.get() };
                written
                    .take()
                    .expect("every slot written exactly once")
                    .map_err(|message| JobPanic { slot, message })
            })
            .collect()
    }
}

/// Type-erased execution of one contiguous slot range; implemented by [`FanOut`] per result
/// type so the worker queues hold a single unit shape.
trait RangeRunner: Send + Sync {
    fn run_range(&self, lo: usize, hi: usize);
    fn split_len(&self) -> usize;
}

impl<T: Send + 'static> RangeRunner for FanOut<T> {
    fn run_range(&self, lo: usize, hi: usize) {
        for i in lo..hi {
            // SAFETY: this range owns slots [lo, hi) exclusively.
            let task = unsafe { &mut *self.cells[i].task.get() }
                .take()
                .expect("each task claimed exactly once");
            let outcome = catch_unwind(AssertUnwindSafe(task)).map_err(panic_message);
            // SAFETY: as above; the slot's writer is this call alone.
            unsafe { *self.cells[i].result.get() = Some(outcome) };
        }
        let ran = hi - lo;
        // AcqRel: the last decrement observes every earlier writer's release, so flipping
        // the latch publishes all result slots to the submitter.
        if self.remaining.fetch_sub(ran, Ordering::AcqRel) == ran {
            let mut done = lock(&self.done);
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn split_len(&self) -> usize {
        self.split_len
    }
}

/// One stealable range of a fan-out.
struct WorkUnit {
    runner: Arc<dyn RangeRunner>,
    lo: usize,
    hi: usize,
}

// ---------------------------------------------------------------------------
// The pool: per-worker deques, a global injector, and the sleep protocol.
// ---------------------------------------------------------------------------

struct PoolShared {
    /// Per-worker stealable deques: the owner pushes/pops at the back, thieves take from
    /// the front — opposite ends, so a busy owner and its thieves rarely collide.
    locals: Vec<Mutex<VecDeque<WorkUnit>>>,
    /// Where fresh batches land; workers drain it FIFO so earlier fan-outs finish first.
    injector: Mutex<VecDeque<WorkUnit>>,
    /// Parked workers wait here (paired with the injector mutex).
    work_cv: Condvar,
    /// Queued units across the injector and all local deques. Incremented *before* the
    /// matching push, so a successful pop never underflows the counter.
    queued: AtomicUsize,
    /// Workers currently parked on `work_cv`; lets pushers skip the notify lock when
    /// everyone is already busy.
    sleepers: AtomicUsize,
    live: AtomicBool,
    /// Belt-and-braces park interval: how long a worker sleeps before re-checking for work
    /// it was never notified about (see [`PoolShared::park`]).
    park_timeout: Duration,
    /// How many parks expired without a notification *and* without queued work — each one
    /// is a wakeup the Dekker handshake says should never be needed, so a growing count
    /// under load is the stall signature this diagnostic exists to surface.
    stall_wakeups: AtomicUsize,
}

impl PoolShared {
    /// Publishes one unit from a worker thread and wakes a sleeper if there is one.
    ///
    /// The counter/flag ordering forms the classic Dekker handshake with
    /// [`PoolShared::park`]: the pusher writes `queued` then reads `sleepers`; the parking
    /// worker writes `sleepers` then re-reads `queued`. Under `SeqCst` at least one side
    /// sees the other, so a unit can never be published into a pool where every worker
    /// sleeps through it.
    fn push_local(&self, worker: usize, unit: WorkUnit) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        lock(&self.locals[worker]).push_back(unit);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = lock(&self.injector);
            self.work_cv.notify_one();
        }
    }

    /// Pops the next unit: own deque first (LIFO — cache-warm halves of the unit this
    /// worker just split), then the injector (FIFO), then a steal sweep over the other
    /// workers' deques (FIFO end — the oldest, largest ranges).
    fn find_unit(&self, me: usize) -> Option<WorkUnit> {
        if let Some(unit) = lock(&self.locals[me]).pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(unit);
        }
        if let Some(unit) = lock(&self.injector).pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(unit);
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(unit) = lock(&self.locals[victim]).pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(unit);
            }
        }
        None
    }

    /// Parks the calling worker until work or shutdown arrives. Returns `false` when the
    /// worker should exit.
    fn park(&self) -> bool {
        let guard = lock(&self.injector);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        // Dekker partner of `push_local`: re-check after announcing the sleep.
        if self.queued.load(Ordering::SeqCst) > 0 {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        if !self.live.load(Ordering::SeqCst) {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        // The timeout is a belt-and-braces liveness net only; the handshake above is what
        // correctness rests on. The default interval is long enough that an idle
        // process-wide pool costs essentially nothing in background wakeups.
        let (_guard, timeout) = self
            .work_cv
            .wait_timeout(guard, self.park_timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if timeout.timed_out()
            && self.queued.load(Ordering::SeqCst) == 0
            && self.live.load(Ordering::SeqCst)
        {
            // Expired with nothing to do and no shutdown: a silent stall wakeup. Counted
            // instead of swallowed, so a wedged submitter shows up in diagnostics.
            self.stall_wakeups.fetch_add(1, Ordering::Relaxed);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Runs one unit, eagerly splitting ranges wider than the steal granularity so idle
    /// workers always have something to take.
    fn execute(&self, me: usize, mut unit: WorkUnit) {
        let min = unit.runner.split_len().max(1);
        while unit.hi - unit.lo > min {
            let mid = unit.lo + (unit.hi - unit.lo) / 2;
            self.push_local(
                me,
                WorkUnit {
                    runner: Arc::clone(&unit.runner),
                    lo: mid,
                    hi: unit.hi,
                },
            );
            unit.hi = mid;
        }
        unit.runner.run_range(unit.lo, unit.hi);
    }

    /// Publishes one unit from an external (non-worker) thread — the helping submitter has
    /// no local deque, so split halves land in the injector — and wakes a sleeper if there
    /// is one. Same Dekker handshake as [`PoolShared::push_local`].
    fn push_injector(&self, unit: WorkUnit) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        let mut injector = lock(&self.injector);
        injector.push_back(unit);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.work_cv.notify_one();
        }
    }

    /// Pops the next unit for an external thread: the injector first (FIFO — the oldest
    /// fan-outs), then a steal sweep over every worker's deque.
    fn find_unit_external(&self) -> Option<WorkUnit> {
        if let Some(unit) = lock(&self.injector).pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(unit);
        }
        for victim in &self.locals {
            if let Some(unit) = lock(victim).pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(unit);
            }
        }
        None
    }

    /// Runs one unit on an external thread, splitting wide ranges into the injector. The
    /// worker flag is set for the duration of the borrowed task so a nested fan-out inside
    /// it degrades to inline execution, exactly as it would on a real worker.
    fn execute_external(&self, mut unit: WorkUnit) {
        let min = unit.runner.split_len().max(1);
        while unit.hi - unit.lo > min {
            let mid = unit.lo + (unit.hi - unit.lo) / 2;
            self.push_injector(WorkUnit {
                runner: Arc::clone(&unit.runner),
                lo: mid,
                hi: unit.hi,
            });
            unit.hi = mid;
        }
        let was_worker = IN_POOL_WORKER.with(|flag| flag.replace(true));
        unit.runner.run_range(unit.lo, unit.hi);
        IN_POOL_WORKER.with(|flag| flag.set(was_worker));
    }
}

fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        match shared.find_unit(me) {
            Some(unit) => shared.execute(me, unit),
            None => {
                if !shared.park() {
                    break;
                }
            }
        }
    }
}

/// A persistent pool of work-stealing worker threads with slot-indexed, order-preserving
/// result collection. See the module docs for the execution discipline; the public
/// contract is unchanged from the channel-based pool it replaces.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

/// Default belt-and-braces park interval of [`WorkerPool::new`].
pub const DEFAULT_PARK_TIMEOUT: Duration = Duration::from_secs(2);

impl WorkerPool {
    /// Spawns a pool with `threads` workers (`0` means [`default_threads`]) parking at
    /// [`DEFAULT_PARK_TIMEOUT`].
    pub fn new(threads: usize) -> Self {
        Self::with_park_timeout(threads, DEFAULT_PARK_TIMEOUT)
    }

    /// Spawns a pool whose idle workers re-check for missed work every `park_timeout`
    /// instead of the default two seconds. Shorter intervals surface stalls faster in
    /// [`WorkerPool::stall_wakeups`] at the cost of more idle wakeups; the results of any
    /// fan-out are identical either way.
    pub fn with_park_timeout(threads: usize, park_timeout: Duration) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            queued: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            live: AtomicBool::new(true),
            park_timeout: park_timeout.max(Duration::from_millis(1)),
            stall_wakeups: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fmore-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// How many worker parks have expired without a notification or queued work since the
    /// pool was built. On a healthy pool this stays near zero under load (workers are
    /// notified, not timed out); it climbs at `threads / park_timeout` per second while
    /// the pool sits idle or a submitter is wedged — a cheap, always-on stall diagnostic
    /// that used to be swallowed silently.
    pub fn stall_wakeups(&self) -> usize {
        self.shared.stall_wakeups.load(Ordering::Relaxed)
    }

    /// Runs every task on the pool and returns each slot's fate **in submission order**:
    /// `Ok` with the task's value, or [`JobPanic`] when that task panicked. Panics never
    /// kill workers (the pool keeps full capacity) and never mask sibling results —
    /// every healthy slot still delivers.
    ///
    /// When called from inside a pool worker (a nested fan-out) the tasks run inline on
    /// the calling thread, which keeps the pool deadlock-free.
    pub fn run_indexed_checked<T: Send + 'static>(
        &self,
        tasks: Vec<Task<T>>,
    ) -> Vec<Result<T, JobPanic>> {
        let n = tasks.len();
        if n <= 1 || in_pool_worker() {
            return tasks
                .into_iter()
                .enumerate()
                .map(|(slot, task)| {
                    catch_unwind(AssertUnwindSafe(task)).map_err(|payload| JobPanic {
                        slot,
                        message: panic_message(payload),
                    })
                })
                .collect();
        }
        let width = self.threads();
        // O(width) contiguous batches regardless of n; stealing splits them down to a
        // granularity that keeps every worker fed without descending to per-task handoffs.
        let chunk = n.div_ceil(width).max(1);
        let split_len = n.div_ceil(width * 8).max(1);
        let fan = Arc::new(FanOut::new(tasks, split_len));
        let runner: Arc<dyn RangeRunner> = Arc::clone(&fan) as Arc<dyn RangeRunner>;
        {
            let mut injector = lock(&self.shared.injector);
            let mut lo = 0;
            let mut units = 0usize;
            while lo < n {
                let hi = (lo + chunk).min(n);
                injector.push_back(WorkUnit {
                    runner: Arc::clone(&runner),
                    lo,
                    hi,
                });
                units += 1;
                lo = hi;
            }
            self.shared.queued.fetch_add(units, Ordering::SeqCst);
            self.shared.work_cv.notify_all();
        }
        // The submitter helps instead of parking: while its fan-out has outstanding slots
        // it executes queued units like any worker would (its own units — or, work-
        // conserving, an earlier fan-out's). On width-1 pools and single-core boxes this
        // is what makes a pooled round cost one running thread instead of a worker plus a
        // dead submitter; on wider pools it adds a thread to every wave. Only when the
        // queues drain while stragglers still run does it fall back to the latch.
        while fan.remaining.load(Ordering::Acquire) > 0 {
            match self.shared.find_unit_external() {
                Some(unit) => self.shared.execute_external(unit),
                None => break,
            }
        }
        fan.wait_done();
        fan.take_results()
    }

    /// Runs every task on the pool and returns the results **in submission order**.
    ///
    /// Results are written into pre-sized slots keyed by submission index, so the output
    /// order is independent of completion order — determinism by construction rather than
    /// by an after-the-fact sort. When called from inside a pool worker (a nested fan-out)
    /// the tasks run inline on the calling thread, which keeps the pool deadlock-free.
    ///
    /// This re-raising wrapper exists for batch drivers that own the whole process (sweep
    /// examples, benches). Service-facing paths never call it: every round-pipeline
    /// fan-out goes through [`WorkerPool::run_indexed_checked`] (via
    /// `RoundEngine::try_run_tasks`), where a panic becomes a typed error on the
    /// submitting job's round instead of an abort.
    ///
    /// # Panics
    ///
    /// Panics if a task panics, naming the first panicked slot; use
    /// [`WorkerPool::run_indexed_checked`] to observe per-slot fates instead.
    pub fn run_indexed<T: Send + 'static>(&self, tasks: Vec<Task<T>>) -> Vec<T> {
        self.run_indexed_checked(tasks)
            .into_iter()
            .map(|slot| match slot {
                Ok(value) => value,
                Err(marker) => panic!("{marker}"),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.live.store(false, Ordering::SeqCst);
        {
            let _guard = lock(&self.shared.injector);
            self.shared.work_cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_run_reports_per_slot_panic_markers() {
        let pool = WorkerPool::new(3);
        let mut tasks: Vec<Task<usize>> = (0..64usize)
            .map(|i| Box::new(move || i * 2) as Task<usize>)
            .collect();
        tasks[10] = Box::new(|| panic!("slot ten died"));
        tasks[40] = Box::new(|| panic!("slot forty died"));
        let results = pool.run_indexed_checked(tasks);
        assert_eq!(results.len(), 64);
        for (i, result) in results.iter().enumerate() {
            match (i, result) {
                (10, Err(marker)) => {
                    assert_eq!(marker.slot, 10);
                    assert_eq!(marker.message, "slot ten died");
                }
                (40, Err(marker)) => {
                    assert_eq!(marker.slot, 40);
                    assert!(marker.to_string().contains("slot 40"));
                }
                (_, Ok(value)) => assert_eq!(*value, i * 2),
                (_, Err(marker)) => panic!("unexpected marker in slot {i}: {marker}"),
            }
        }
        // The pool is at full strength afterwards: a clean wave delivers everything.
        let clean: Vec<Task<usize>> = (0..128usize)
            .map(|i| Box::new(move || i + 1) as Task<usize>)
            .collect();
        let ok: Vec<usize> = pool
            .run_indexed_checked(clean)
            .into_iter()
            .map(|r| r.expect("clean wave has no panics"))
            .collect();
        assert_eq!(ok, (1..=128).collect::<Vec<_>>());
    }

    #[test]
    fn checked_run_covers_the_inline_paths_too() {
        let pool = WorkerPool::new(2);
        // Single-task fan-outs run inline but still produce markers.
        let one: Vec<Task<u8>> = vec![Box::new(|| panic!("lone task"))];
        let results = pool.run_indexed_checked(one);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].as_ref().unwrap_err().message, "lone task");
        // Nested fan-outs (from a worker thread) degrade to inline and keep markers.
        let outer: Vec<Task<Vec<Result<usize, JobPanic>>>> = (0..2usize)
            .map(|_| {
                let inner_pool = WorkerPool::new(1);
                Box::new(move || {
                    let mut inner: Vec<Task<usize>> = (0..4usize)
                        .map(|j| Box::new(move || j) as Task<usize>)
                        .collect();
                    inner[2] = Box::new(|| panic!("nested"));
                    inner_pool.run_indexed_checked(inner)
                }) as Task<Vec<Result<usize, JobPanic>>>
            })
            .collect();
        for row in pool.run_indexed(outer) {
            assert_eq!(row[2].as_ref().unwrap_err().slot, 2);
            assert_eq!(row[3], Ok(3));
        }
    }

    #[test]
    fn unchecked_run_panics_with_the_slot_index() {
        let pool = WorkerPool::new(2);
        let mut tasks: Vec<Task<usize>> = (0..32usize)
            .map(|i| Box::new(move || i) as Task<usize>)
            .collect();
        tasks[7] = Box::new(|| panic!("kaboom"));
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_indexed(tasks)))
            .expect_err("the panic must reach the submitter");
        let message = panic_message(err);
        assert!(message.contains("slot 7"), "got: {message}");
        assert!(message.contains("kaboom"), "got: {message}");
    }

    #[test]
    fn stealing_preserves_submission_order_under_skew() {
        let pool = WorkerPool::new(4);
        // Heavily skewed costs: the first chunk is orders of magnitude slower, so the
        // other workers must steal from it for the wave to balance at all.
        let tasks: Vec<Task<usize>> = (0..256usize)
            .map(|i| {
                Box::new(move || {
                    if i < 32 {
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    i
                }) as Task<usize>
            })
            .collect();
        assert_eq!(pool.run_indexed(tasks), (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn submitter_executes_units_while_every_worker_is_blocked() {
        // Saturate a width-1 pool: fan A's two tasks block on channels, occupying the
        // lone worker *and* A's helping submitter. Fan B then has no worker left — it
        // completes only because B's submitter executes the queued units itself. Before
        // submitter helping this test would hang on B's completion latch.
        let pool = Arc::new(WorkerPool::new(1));
        let (tx_a, rx_a) = std::sync::mpsc::channel::<()>();
        let (tx_b, rx_b) = std::sync::mpsc::channel::<()>();
        let started = Arc::new(AtomicUsize::new(0));
        let blocker_pool = Arc::clone(&pool);
        let (s_a, s_b) = (Arc::clone(&started), Arc::clone(&started));
        let blocker = std::thread::spawn(move || {
            let tasks: Vec<Task<()>> = vec![
                Box::new(move || {
                    s_a.fetch_add(1, Ordering::SeqCst);
                    rx_a.recv().unwrap();
                }),
                Box::new(move || {
                    s_b.fetch_add(1, Ordering::SeqCst);
                    rx_b.recv().unwrap();
                }),
            ];
            blocker_pool.run_indexed(tasks)
        });
        // Wait until both blocking tasks have been claimed and are running.
        while started.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let me = std::thread::current().id();
        let tasks: Vec<Task<std::thread::ThreadId>> = (0..16)
            .map(|_| Box::new(|| std::thread::current().id()) as Task<std::thread::ThreadId>)
            .collect();
        let ran_on = pool.run_indexed(tasks);
        assert!(ran_on.iter().all(|id| *id == me));
        tx_a.send(()).unwrap();
        tx_b.send(()).unwrap();
        blocker.join().unwrap();
    }

    #[test]
    fn tiny_fanouts_and_empty_batches_are_fine() {
        let pool = WorkerPool::new(4);
        assert!(pool.run_indexed(Vec::<Task<u8>>::new()).is_empty());
        let two: Vec<Task<usize>> = (0..2usize)
            .map(|i| Box::new(move || i) as Task<usize>)
            .collect();
        assert_eq!(pool.run_indexed(two), vec![0, 1]);
    }

    #[test]
    fn stall_wakeups_are_counted_and_the_interval_is_configurable() {
        // A freshly built pool at the default two-second interval reports no stalls.
        let pool = WorkerPool::new(2);
        assert_eq!(pool.stall_wakeups(), 0);

        // At a short interval, idle workers accumulate counted stall wakeups quickly...
        let pool = WorkerPool::with_park_timeout(2, Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            pool.stall_wakeups() >= 1,
            "idle workers at a 20ms park interval must register stall wakeups"
        );
        // ...and the pool still executes fan-outs normally afterwards.
        let tasks: Vec<Task<usize>> = (0..64usize)
            .map(|i| Box::new(move || i * 3) as Task<usize>)
            .collect();
        assert_eq!(
            pool.run_indexed(tasks),
            (0..64).map(|i| i * 3).collect::<Vec<_>>()
        );
    }
}
