//! Configuration of a federated-learning experiment.

use fmore_ml::dataset::TaskKind;
use fmore_ml::partition::PartitionConfig;

use crate::error::FlError;

/// Which model family the trainer instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// The paper's architecture for the task (CNN for image tasks, LSTM for HPNews).
    PaperModel,
    /// A small MLP surrogate with the same input/output dimensions — used where experiment
    /// wall-clock matters more than architecture fidelity (tests, large sweeps).
    FastSurrogate,
}

/// Configuration of one federated-learning run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlConfig {
    /// Which of the paper's tasks to train.
    pub task: TaskKind,
    /// Which model family to instantiate.
    pub model: ModelChoice,
    /// Total number of edge nodes `N`.
    pub clients: usize,
    /// Number of winners / participants per round `K`.
    pub winners_per_round: usize,
    /// Size of the global training pool to synthesise.
    pub train_samples: usize,
    /// Size of the held-out test set used to report accuracy and loss.
    pub test_samples: usize,
    /// How the training pool is spread across clients.
    pub partition: PartitionConfig,
    /// Local SGD epochs per selected client per round.
    pub local_epochs: usize,
    /// SGD learning rate η (Eq. 2).
    pub learning_rate: f64,
    /// Mini-batch size for local training.
    pub batch_size: usize,
    /// Support `[θ̲, θ̄]` of the private cost parameter.
    pub theta_range: (f64, f64),
    /// Fraction range of a client's shard that is actually available in a given round,
    /// modelling the dynamic resource provision of MEC nodes.
    pub availability: (f64, f64),
}

impl FlConfig {
    /// The paper's simulator configuration (Section V-A): `N = 100`, `K = 20`, non-IID data,
    /// two-dimensional resources (data size and category proportion).
    pub fn paper_simulation(task: TaskKind) -> Self {
        Self {
            task,
            model: ModelChoice::PaperModel,
            clients: 100,
            winners_per_round: 20,
            train_samples: 20_000,
            test_samples: 2_000,
            partition: PartitionConfig {
                clients: 100,
                size_range: (50, 500),
                category_range: (2, 10),
            },
            local_epochs: 1,
            learning_rate: 0.1,
            batch_size: 32,
            theta_range: (0.1, 1.0),
            availability: (0.7, 1.0),
        }
    }

    /// A small configuration that finishes in well under a second — used by unit tests and
    /// doc examples.
    pub fn fast_test(task: TaskKind) -> Self {
        Self {
            task,
            model: ModelChoice::FastSurrogate,
            clients: 12,
            winners_per_round: 4,
            train_samples: 400,
            test_samples: 120,
            partition: PartitionConfig {
                clients: 12,
                size_range: (20, 60),
                category_range: (2, 10),
            },
            local_epochs: 1,
            learning_rate: 0.1,
            batch_size: 16,
            theta_range: (0.1, 1.0),
            availability: (0.8, 1.0),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), FlError> {
        if self.clients == 0 {
            return Err(FlError::InvalidConfig("clients must be positive".into()));
        }
        if self.winners_per_round == 0 || self.winners_per_round > self.clients {
            return Err(FlError::InvalidConfig(format!(
                "winners_per_round {} must be in 1..={}",
                self.winners_per_round, self.clients
            )));
        }
        if self.partition.clients != self.clients {
            return Err(FlError::InvalidConfig(format!(
                "partition.clients {} must equal clients {}",
                self.partition.clients, self.clients
            )));
        }
        if self.train_samples == 0 || self.test_samples == 0 {
            return Err(FlError::InvalidConfig(
                "sample counts must be positive".into(),
            ));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(FlError::InvalidConfig(
                "learning rate must be positive".into(),
            ));
        }
        if self.local_epochs == 0 || self.batch_size == 0 {
            return Err(FlError::InvalidConfig(
                "epochs and batch size must be positive".into(),
            ));
        }
        let (lo, hi) = self.theta_range;
        if !(lo > 0.0 && hi > lo && hi.is_finite()) {
            return Err(FlError::InvalidConfig(format!(
                "invalid theta range [{lo}, {hi}]"
            )));
        }
        let (alo, ahi) = self.availability;
        if !(alo > 0.0 && alo <= ahi && ahi <= 1.0) {
            return Err(FlError::InvalidConfig(format!(
                "availability range [{alo}, {ahi}] must lie in (0, 1]"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_simulation_matches_section_v() {
        let c = FlConfig::paper_simulation(TaskKind::Cifar10);
        assert_eq!(c.clients, 100);
        assert_eq!(c.winners_per_round, 20);
        assert_eq!(c.model, ModelChoice::PaperModel);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fast_test_is_valid_and_small() {
        let c = FlConfig::fast_test(TaskKind::MnistO);
        assert!(c.validate().is_ok());
        assert!(c.clients <= 20);
        assert!(c.train_samples <= 1000);
    }

    #[test]
    fn validation_catches_each_violation() {
        let base = FlConfig::fast_test(TaskKind::MnistO);

        let mut c = base.clone();
        c.clients = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.winners_per_round = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.winners_per_round = c.clients + 1;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.partition.clients = 99;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.train_samples = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.learning_rate = -1.0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.local_epochs = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.theta_range = (0.0, 1.0);
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.availability = (0.0, 1.0);
        assert!(c.validate().is_err());

        let mut c = base;
        c.availability = (0.5, 1.5);
        assert!(c.validate().is_err());
    }
}
