//! The reusable round engine: a persistent worker pool plus the composable stages of
//! Algorithm 1.
//!
//! Every round of federated learning — whether driven by [`crate::trainer::FederatedTrainer`],
//! by the MEC cluster simulator, or by an experiment sweep — is the same pipeline:
//!
//! ```text
//! bid collection ── auction ── local training ── aggregation ── evaluation
//!  (collect_bids)   (auction_select)  (local_training)  (aggregate)   (trainer)
//! ```
//!
//! This module holds the shared implementation of each stage and the execution substrate
//! they run on. The original trainer spawned a fresh `crossbeam` scope with one thread per
//! winner every round and pushed results into a locked `Vec` that then had to be re-sorted;
//! the [`WorkerPool`] here — the sharded work-stealing executor of [`crate::executor`] —
//! is created once, reused across rounds (and across trainers, via [`shared_pool`]), and
//! collects results into pre-sized slots indexed by submission order — deterministic by
//! construction, no per-task queue contention, no per-round thread churn.
//!
//! Parallelism never affects results: a training job owns its slot's reusable model instance
//! and scratch arena ([`SlotState`]), a shared snapshot of the global parameters, its sample
//! indices, and a seed derived from `(run seed, round, client)`, so the outcome of a round
//! is a pure function of the submitted jobs regardless of worker count or execution mode.
//! The determinism tests in `tests/determinism.rs` pin this property for every selection
//! scheme at pool sizes 1 and N.
//!
//! Slot states are the allocation-free backbone of the training stage: instead of cloning
//! the global model (and allocating fresh activations) per client per round, each winner
//! slot keeps one model + arena for the life of the trainer, re-pointed at the new global
//! parameters each round; see `crates/README.md` ("The allocation-free hot path").

use crate::aggregator::{
    federated_average_into, federated_average_slices, AggregationRule, AggregationScratch,
    ScreenedAggregation,
};
use crate::client::EdgeClient;
use crate::error::FlError;
use crate::metrics::WinnerInfo;
use fmore_auction::mechanism::Award;
use fmore_auction::{
    Auction, AuctionError, BidStore, Candidate, EquilibriumSolver, RankRefiner, ScoreHistogram,
    ScoredBid, SelectionRule, ShardSelection, StandingPool, SubmittedBid,
};
use fmore_ml::arena::ScratchArena;
use fmore_ml::dataset::Dataset;
use fmore_ml::model::{Model, Sequential};
use fmore_numerics::seeded_rng;
use rand::Rng;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

pub use crate::executor::{default_threads, JobPanic, Task, WorkerPool};

/// The process-wide shared pool: created on first use, reused by every trainer, cluster, and
/// scenario runner that does not bring its own pool. Worker threads are started exactly once
/// per process instead of once per round.
pub fn shared_pool() -> Arc<WorkerPool> {
    static SHARED: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    SHARED.get_or_init(|| Arc::new(WorkerPool::new(0))).clone()
}

/// How a round's parallel work is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Sequential execution on the calling thread.
    Inline,
    /// One fresh OS thread per task per round — the strategy of the original trainer, kept
    /// for benchmarking against the pool.
    SpawnPerRound,
    /// Reused worker threads from a persistent [`WorkerPool`].
    Pooled,
}

/// The execution substrate of one round pipeline: an [`ExecutionMode`] plus (for pooled
/// mode) the pool the work is submitted to.
#[derive(Debug, Clone)]
pub struct RoundEngine {
    mode: ExecutionMode,
    pool: Option<Arc<WorkerPool>>,
}

impl Default for RoundEngine {
    /// The default engine runs on the process-wide [`shared_pool`].
    fn default() -> Self {
        Self::with_pool(shared_pool())
    }
}

impl RoundEngine {
    /// An engine executing tasks sequentially on the calling thread.
    pub fn inline() -> Self {
        Self {
            mode: ExecutionMode::Inline,
            pool: None,
        }
    }

    /// An engine spawning one fresh thread per task per round (the pre-refactor behaviour;
    /// kept so the bench suite can measure what the pool buys).
    pub fn spawn_per_round() -> Self {
        Self {
            mode: ExecutionMode::SpawnPerRound,
            pool: None,
        }
    }

    /// An engine owning a fresh pool with `threads` workers (`0` means [`default_threads`]).
    pub fn pooled(threads: usize) -> Self {
        Self::with_pool(Arc::new(WorkerPool::new(threads)))
    }

    /// An engine submitting to an existing (possibly shared) pool.
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        Self {
            mode: ExecutionMode::Pooled,
            pool: Some(pool),
        }
    }

    /// The engine's execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The pool backing a [`ExecutionMode::Pooled`] engine.
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// How many tasks this engine can usefully keep in flight at once — the wave width of
    /// the streaming bid-collection stage (1 for inline execution, the pool width for
    /// pooled engines). Bounding in-flight shards by this keeps the stage's transient
    /// memory at `O(width · shard)` instead of `O(N)`.
    pub fn parallel_width(&self) -> usize {
        match self.mode {
            ExecutionMode::Inline => 1,
            ExecutionMode::SpawnPerRound => default_threads(),
            ExecutionMode::Pooled => self
                .pool
                .as_ref()
                .expect("pooled engine always has a pool")
                .threads()
                .max(1),
        }
    }

    /// Runs the tasks under the configured mode, returning results in submission order in
    /// every mode.
    ///
    /// This is the legacy batch-driver entry point; service-facing stages go through
    /// [`RoundEngine::try_run_tasks`] instead, where a panicking task becomes a typed
    /// [`FlError::JobPanic`] on the submitting round rather than a process abort.
    ///
    /// # Panics
    ///
    /// Panics if a task panics.
    pub fn run_tasks<T: Send + 'static>(&self, tasks: Vec<Task<T>>) -> Vec<T> {
        self.run_tasks_checked(tasks)
            .into_iter()
            .map(|slot| match slot {
                Ok(value) => value,
                Err(marker) => panic!("{marker}"),
            })
            .collect()
    }

    /// Runs the tasks under the configured mode, returning each slot's fate **in submission
    /// order** in every mode: `Ok` with the task's value, or the [`JobPanic`] marker of a
    /// task that panicked. Panics never propagate, never kill pool workers, and never mask
    /// sibling results — the checked twin of [`RoundEngine::run_tasks`], routed through
    /// [`WorkerPool::run_indexed_checked`] on pooled engines.
    pub fn run_tasks_checked<T: Send + 'static>(
        &self,
        tasks: Vec<Task<T>>,
    ) -> Vec<Result<T, JobPanic>> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let caught = |slot: usize, payload: Box<dyn std::any::Any + Send>| JobPanic {
            slot,
            message: crate::executor::panic_message(payload),
        };
        match self.mode {
            ExecutionMode::Inline => tasks
                .into_iter()
                .enumerate()
                .map(|(slot, task)| {
                    catch_unwind(AssertUnwindSafe(task)).map_err(|p| caught(slot, p))
                })
                .collect(),
            ExecutionMode::SpawnPerRound => {
                let handles: Vec<JoinHandle<T>> = tasks
                    .into_iter()
                    .map(|task| std::thread::spawn(task))
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(slot, h)| h.join().map_err(|p| caught(slot, p)))
                    .collect()
            }
            ExecutionMode::Pooled => self
                .pool
                .as_ref()
                .expect("pooled engine always has a pool")
                .run_indexed_checked(tasks),
        }
    }

    /// Runs the tasks checked and returns all results, or the **first** panic as a typed
    /// [`FlError::JobPanic`] — the error-not-panic entry point of every service-facing
    /// fan-out. Sibling tasks still run to completion before the error is returned (the
    /// executor delivers every healthy slot), so a poisoned round never leaves stray work
    /// behind on the pool.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::JobPanic`] naming the first panicked slot.
    pub fn try_run_tasks<T: Send + 'static>(&self, tasks: Vec<Task<T>>) -> Result<Vec<T>, FlError> {
        self.run_tasks_checked(tasks)
            .into_iter()
            .map(|slot| slot.map_err(FlError::from))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Stage 1–2: bid collection.
// ---------------------------------------------------------------------------

/// Collects the sealed equilibrium bid of every client (steps 1–2 of Algorithm 1: the
/// scoring rule has been broadcast; each node answers with its capacity-capped
/// Nash-equilibrium bid).
///
/// # Errors
///
/// Returns [`FlError::Auction`] if a client's θ lies outside the solver's support.
pub fn collect_bids(
    clients: &[EdgeClient],
    solver: &EquilibriumSolver,
    max_data_size: f64,
    num_classes: usize,
) -> Result<Vec<SubmittedBid>, FlError> {
    let mut bids = Vec::with_capacity(clients.len());
    for client in clients {
        bids.push(client.make_bid(solver, max_data_size, num_classes)?);
    }
    Ok(bids)
}

// ---------------------------------------------------------------------------
// Stage 3: winner determination.
// ---------------------------------------------------------------------------

/// Runs the batched auction over the collected bids (step 3 of Algorithm 1) and maps each
/// award onto the caller's notion of a winner.
///
/// The caller supplies `map_award` because the trainer and the MEC cluster attach different
/// data to a win (declared data size vs node resource fraction); everything else — scoring
/// the population in one call, ranking, selection, payment — is shared here.
///
/// # Errors
///
/// Propagates auction failures ([`AuctionError::NoBids`], malformed bids, invalid games).
pub fn auction_select<R, F>(
    auction: &Auction,
    bids: Vec<SubmittedBid>,
    rng: &mut R,
    map_award: F,
) -> Result<(Vec<WinnerInfo>, Vec<f64>), AuctionError>
where
    R: Rng + ?Sized,
    F: FnMut(&Award) -> WinnerInfo,
{
    let stage = auction_select_standing(auction, bids, rng, map_award)?;
    Ok((stage.winners, stage.all_scores))
}

/// The result of the winner-determination stage when the caller also needs the **standing
/// bid pool** — the full ranked population of the round, kept so that a dynamic round can
/// recruit replacements through [`Auction::reauction`] without a fresh bid-collection phase.
///
/// The default value is the empty stage (no winners, no scores, no pool) — what a round
/// with nobody eligible produces.
#[derive(Debug, Clone, Default)]
pub struct AuctionStage {
    /// The mapped winners, in selection order.
    pub winners: Vec<WinnerInfo>,
    /// Every score computed this round, in rank order.
    pub all_scores: Vec<f64>,
    /// The full ranked bid population (descending score), valid for re-auction this round.
    pub standing: Vec<ScoredBid>,
}

/// Like [`auction_select`], but additionally returns the ranked standing pool for dynamic
/// rounds that may need re-auction waves.
///
/// # Errors
///
/// Propagates auction failures ([`AuctionError::NoBids`], malformed bids, invalid games).
pub fn auction_select_standing<R, F>(
    auction: &Auction,
    bids: Vec<SubmittedBid>,
    rng: &mut R,
    mut map_award: F,
) -> Result<AuctionStage, AuctionError>
where
    R: Rng + ?Sized,
    F: FnMut(&Award) -> WinnerInfo,
{
    let outcome = auction.run(bids, rng)?;
    let all_scores: Vec<f64> = outcome.ranked().iter().map(|b| b.score).collect();
    let winners = outcome.winners().iter().map(&mut map_award).collect();
    Ok(AuctionStage {
        winners,
        all_scores,
        standing: outcome.into_ranked(),
    })
}

// ---------------------------------------------------------------------------
// Stage 1–3, population scale: streamed bid collection + bounded selection.
// ---------------------------------------------------------------------------

/// The result of the population-scale winner-determination stage: winners plus the bounded
/// standing store — never the `O(N)` ranked population the dense stage carries.
#[derive(Debug, Clone)]
pub struct StreamedAuction {
    /// The mapped winners, in selection order.
    pub winners: Vec<WinnerInfo>,
    /// Number of bids streamed through the selector.
    pub offered: usize,
    /// The bounded standing store (best `K + reserve` candidates in rank order), valid for
    /// re-auction refills this round via [`Auction::award_standing`].
    pub standing: StandingPool,
    /// Peak resident bid bytes of the stage: the widest wave of shard stores plus the
    /// selector's kept candidates (len-based, deterministic). `O(width · shard + K)`, never
    /// `O(N)`.
    pub peak_bid_bytes: usize,
}

/// Population-scale twin of [`auction_select`]: streams a bidder population through the
/// engine **in shards** instead of collecting an all-bids `Vec`.
///
/// `fill` is called once per shard — on a worker thread for pooled engines — with the
/// shard's index range and a reusable columnar [`BidStore`] to push sealed bids into
/// (absent or ineligible indices are simply skipped). Each wave of shards then runs two
/// parallel stages: **fill + batch-score** (the monomorphized
/// `ScoringFunction::score_batch` sweep over the store's SoA columns), and — once the
/// round salt exists — a **local top-K selection per shard**
/// ([`fmore_auction::ShardSelection`]), keyed by each bid's global stream position so keys
/// are computable off-thread. The control thread only merges the small survivor sets into
/// the auction's bounded selector, in population order: the per-bid scan that used to
/// serialize on the control thread now runs across the full pool. At most
/// [`RoundEngine::parallel_width`] shard stores exist at any moment and they are recycled
/// across waves, so the stage's transient memory is `O(width · shard + K)` regardless of
/// the population size.
///
/// Winner sets are **bit-identical** to [`Auction::run`] over the same bids for **every**
/// selection rule at any `reserve`. Top-K reads its winners straight off the bounded pool
/// head. ψ-FMore — whose admission walk ranges over the whole ranking — runs bounded via a
/// two-pass design: the first pass additionally counts every score into a fixed-width
/// [`ScoreHistogram`], the walk is planned over ranks alone
/// ([`Auction::plan_admission`], same RNG draws as the full-width walk), and only if an
/// admitted rank falls beyond the standing pool does a refinement pass re-stream the
/// shards (fills are pure functions of their range) through a [`RankRefiner`] that keeps
/// just the needed ranks' candidates — with their exact full-sort tie-break keys and zero
/// further RNG consumption. Peak state stays `O(width · shard + K + bins)`, never `O(N)`.
/// Results are independent of both
/// the shard size and the engine width — tie-break keys depend only on the bid's global
/// stream position. Winners materialise
/// through `map_award` exactly as in [`auction_select`]: nothing beyond the `K` awards ever
/// becomes a full client object.
///
/// # Errors
///
/// Propagates malformed-bid and invalid-game failures as [`FlError::Auction`]
/// ([`AuctionError::NoBids`] when the population streamed zero bids), and surfaces a
/// panicking fill/scoring/selection task as [`FlError::JobPanic`] — the round fails, the
/// process and every sibling job's wave survive.
#[allow(clippy::too_many_arguments)]
pub fn auction_select_streamed<R, F, G>(
    auction: &Auction,
    population: usize,
    shard_size: usize,
    reserve: usize,
    engine: &RoundEngine,
    fill: Arc<G>,
    rng: &mut R,
    mut map_award: F,
) -> Result<StreamedAuction, FlError>
where
    R: Rng + ?Sized,
    G: Fn(std::ops::Range<usize>, &mut BidStore) -> Result<(), AuctionError>
        + Send
        + Sync
        + ?Sized
        + 'static,
    F: FnMut(&Award) -> WinnerInfo,
{
    let k = auction.winners_per_round();
    if k == 0 || !auction.selection_rule().is_valid() {
        return Err(AuctionError::InvalidGame { n: population, k }.into());
    }
    let shard_size = shard_size.max(1);
    let dims = auction.scoring_rule().dims();
    // ψ-FMore's admission walk ranges over the whole ranking, but the walk needs only
    // *ranks* — so instead of widening the standing pool to the population (the pre-v9
    // behaviour), a fixed-width score histogram is counted alongside the first pass and the
    // walk is planned over it; see the award stage below. Every selection rule therefore
    // keeps the same bounded `K + reserve` pool.
    let mut selector = auction.selector(reserve);
    let capacity = selector.capacity();
    let width = engine.parallel_width();
    let mut free: Vec<BidStore> = Vec::new();
    let mut peak_bid_bytes = 0usize;
    let mut salt: Option<u64> = None;
    let mut histogram = match auction.selection_rule() {
        SelectionRule::PsiFMore { .. } => Some(ScoreHistogram::new()),
        SelectionRule::TopK => None,
    };

    let shards: Vec<std::ops::Range<usize>> = (0..population)
        .step_by(shard_size)
        .map(|lo| lo..(lo + shard_size).min(population))
        .collect();
    // One wave of fill + batch-score shard tasks, run on the pool. Fills are pure functions
    // of their range, so the refinement pass of the ψ award stage can replay them.
    let wave_tasks = |wave: &[std::ops::Range<usize>], free: &mut Vec<BidStore>| {
        wave.iter()
            .map(|range| {
                let mut store = free
                    .pop()
                    .unwrap_or_else(|| BidStore::with_capacity(dims, shard_size));
                store.clear();
                let fill = Arc::clone(&fill);
                let rule = auction.scoring_rule().clone();
                let range = range.clone();
                Box::new(move || {
                    fill(range, &mut store)?;
                    store.score_with(&rule)?;
                    Ok(store)
                }) as Task<Result<BidStore, AuctionError>>
            })
            .collect::<Vec<_>>()
    };
    for wave in shards.chunks(width.max(1)) {
        // Stage 1: fill + batch-score each shard of the wave on the pool.
        let tasks = wave_tasks(wave, &mut free);
        let mut stores = Vec::with_capacity(wave.len());
        let mut wave_bytes = 0usize;
        for result in engine.try_run_tasks(tasks)? {
            let store = result?;
            wave_bytes += store.resident_bytes();
            if let Some(histogram) = histogram.as_mut() {
                histogram.record_store(&store);
            }
            stores.push(store);
        }
        // The round salt is drawn as soon as two bids are guaranteed; from then on
        // tie-break keys are pure functions of (salt, global position) and can be
        // computed on worker threads.
        let wave_total: usize = stores.iter().map(BidStore::len).sum();
        if salt.is_none() && selector.offered() + wave_total >= 2 {
            salt = Some(selector.force_salt(rng));
        }
        match salt {
            // Stage 2: local top-K per shard on the pool, then a population-order merge
            // of the small survivor sets — the only serial part of the wave.
            Some(salt) => {
                let mut base = selector.offered();
                let tasks: Vec<Task<(BidStore, ShardSelection)>> = stores
                    .into_iter()
                    .map(|store| {
                        let shard_base = base;
                        base += store.len();
                        Box::new(move || {
                            let selection =
                                ShardSelection::select(&store, salt, shard_base, capacity);
                            (store, selection)
                        }) as Task<(BidStore, ShardSelection)>
                    })
                    .collect();
                for (store, selection) in engine.try_run_tasks(tasks)? {
                    selector.absorb(selection);
                    free.push(store);
                }
            }
            // At most one bid streamed so far: the sequential path, which draws nothing
            // from the round RNG (matching the dense single-bid contract).
            None => {
                for store in stores {
                    selector.offer_store(&store, rng);
                    free.push(store);
                }
            }
        }
        peak_bid_bytes = peak_bid_bytes.max(wave_bytes + selector.resident_bytes());
    }

    let standing = selector.finish(rng);
    if standing.offered() == 0 {
        return Err(AuctionError::NoBids.into());
    }
    let awards = match histogram {
        // Top-K: winners are the head of the bounded pool; pricing looks one rank past it.
        None => auction.award_standing(&standing, k, &[], rng),
        // ψ-FMore, bounded: plan the admission walk over ranks alone (exactly the RNG draws
        // the full-width walk makes), then materialise just the admitted ranks plus the
        // pricing boundary.
        Some(histogram) => {
            let offered = standing.offered();
            debug_assert_eq!(histogram.total() as usize, offered);
            let plan = auction.plan_admission(offered, k, rng);
            let mut needed: Vec<usize> = plan.picked.clone();
            needed.extend(plan.price_rank);
            needed.sort_unstable();
            needed.dedup();
            let deepest = *needed.last().expect("k >= 1 admits at least one rank");
            if deepest < standing.len() {
                // Every needed rank sits in the bounded pool, whose order IS the global
                // rank order — no second pass.
                let best_losing = plan.price_rank.map(|r| standing.candidates()[r].score);
                plan.picked
                    .iter()
                    .map(|&r| auction.award_candidate(&standing.candidates()[r], best_losing))
                    .collect()
            } else {
                // Refinement pass: re-stream the shards (fills are pure) through per-bin
                // probes that keep only the needed ranks' candidates — same global
                // tie-break keys via `derive_seed(salt, position)`, zero RNG consumption,
                // at most `deepest + 1` candidates resident.
                let salt = salt.expect("refinement implies >= 2 offered bids, so the salt exists");
                let mut refiner = RankRefiner::new(&histogram, &needed, salt, dims);
                let standing_bytes = standing.len()
                    * (std::mem::size_of::<Candidate>() + dims * std::mem::size_of::<f64>());
                let mut base = 0usize;
                for wave in shards.chunks(width.max(1)) {
                    let tasks = wave_tasks(wave, &mut free);
                    let mut wave_bytes = 0usize;
                    for result in engine.try_run_tasks(tasks)? {
                        let store = result?;
                        wave_bytes += store.resident_bytes();
                        refiner.offer_store(&store, base);
                        base += store.len();
                        free.push(store);
                    }
                    peak_bid_bytes =
                        peak_bid_bytes.max(wave_bytes + standing_bytes + refiner.resident_bytes());
                }
                debug_assert_eq!(base, offered, "refinement re-fill diverged from pass one");
                let ranked = refiner.into_ranked();
                let at = |rank: usize| {
                    ranked
                        .get(rank)
                        .expect("every needed rank was counted and collected")
                };
                let best_losing = plan.price_rank.map(|r| at(r).score);
                plan.picked
                    .iter()
                    .map(|&r| auction.award_candidate(at(r), best_losing))
                    .collect()
            }
        }
    };
    let winners = awards.iter().map(&mut map_award).collect();
    Ok(StreamedAuction {
        winners,
        offered: standing.offered(),
        standing,
        peak_bid_bytes,
    })
}

// ---------------------------------------------------------------------------
// Stage 3b (dynamic rounds): the deadline gate.
// ---------------------------------------------------------------------------

/// The simulated fate of one assigned winner in a dynamic round, produced by the caller's
/// churn and time models *before* any training work is scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticipantTiming {
    /// Position in the round's winner list.
    pub slot: usize,
    /// Simulated seconds until this winner's update reaches the server
    /// ([`f64::INFINITY`] for a dropout, which never delivers).
    pub completion_secs: f64,
    /// Whether a straggler event slowed this winner this round.
    pub straggler: bool,
    /// Whether the winner vanished mid-round.
    pub dropped_out: bool,
}

/// The deadline partition of one wave of assigned winners.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeadlineVerdict {
    /// Slots whose update arrived within the deadline, in slot order.
    pub survivors: Vec<usize>,
    /// Slots that delivered late (excluded from aggregation, payment honoured).
    pub missed: Vec<usize>,
    /// Slots that vanished mid-round (no update, payment forfeited).
    pub dropouts: Vec<usize>,
    /// Simulated seconds the server spent on this wave: the slowest on-time delivery, or the
    /// full deadline when anyone failed to deliver on time (a synchronous server cannot know
    /// a straggler is late until the deadline expires).
    pub wave_secs: f64,
}

/// Applies the server deadline to one wave of assigned winners (the deadline-aware stage of
/// a dynamic round): on-time winners survive into aggregation, late winners and dropouts are
/// excluded, and the wave's simulated duration is the slowest on-time delivery — or the full
/// deadline whenever any assigned winner failed to deliver in time.
///
/// Monotone in the deadline: a larger deadline never shrinks the survivor set and never
/// shortens the wave (pinned by the property suite).
pub fn apply_deadline(timings: &[ParticipantTiming], deadline_secs: f64) -> DeadlineVerdict {
    let mut verdict = DeadlineVerdict::default();
    let mut slowest_on_time: f64 = 0.0;
    for t in timings {
        if t.dropped_out {
            verdict.dropouts.push(t.slot);
        } else if t.completion_secs <= deadline_secs {
            verdict.survivors.push(t.slot);
            slowest_on_time = slowest_on_time.max(t.completion_secs);
        } else {
            verdict.missed.push(t.slot);
        }
    }
    verdict.wave_secs = if verdict.missed.is_empty() && verdict.dropouts.is_empty() {
        slowest_on_time
    } else {
        deadline_secs
    };
    verdict
}

// ---------------------------------------------------------------------------
// Stage 4: local training.
// ---------------------------------------------------------------------------

/// Reusable per-slot training state: one model instance, one scratch arena, and the
/// parameter/index buffers a slot's jobs cycle through.
///
/// The driver (e.g. `FederatedTrainer`) owns one `SlotState` per winner slot and lends it to
/// that slot's [`TrainingJob`] each round; the job returns it together with the update. The
/// model is re-pointed at the round's global parameters with
/// [`fmore_ml::model::Model::apply_parameters`] and its dropout stream is reset, so reusing
/// the instance is bit-identical to the old clone-the-global-every-round path — but without
/// re-allocating the model, its layer caches, or any training scratch.
#[derive(Debug, Clone)]
pub struct SlotState {
    /// The slot's persistent model instance (same architecture as the global model).
    pub model: Sequential,
    /// The slot's training scratch arena (activations, gradients, batch buffers).
    pub arena: ScratchArena,
    /// Reusable parameter export buffer (cycled through [`LocalUpdate::parameters`]).
    pub params: Vec<f64>,
    /// Reusable buffer holding the sample indices this slot trains on this round.
    pub indices: Vec<usize>,
}

impl SlotState {
    /// Creates a slot around a model instance (typically a one-time clone of the global
    /// model); all buffers start empty and are sized by the first round.
    pub fn new(model: Sequential) -> Self {
        Self {
            model,
            arena: ScratchArena::new(),
            params: Vec::new(),
            indices: Vec::new(),
        }
    }
}

/// One client's local-training work item: fully self-contained (slot-local model + scratch,
/// shared global parameters and dataset handle, derived seed), so it can run on any thread
/// without touching trainer state.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    /// Position of this job in the round's winner list; results are returned in slot order.
    pub slot: usize,
    /// Index of the client in the trainer's client list.
    pub client: usize,
    /// Slot-local reusable state; `state.indices` holds the samples to train on. Returned
    /// to the driver alongside the update.
    pub state: SlotState,
    /// The global model parameters at the start of the round (shared snapshot).
    pub global_params: Arc<Vec<f64>>,
    /// The shared training pool.
    pub data: Arc<Dataset>,
    /// Local SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed of this job's private RNG, derived from `(run seed, round, client)`.
    pub seed: u64,
}

/// The result of one [`TrainingJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct LocalUpdate {
    /// Slot of the job that produced this update.
    pub slot: usize,
    /// Index of the client that trained.
    pub client: usize,
    /// The locally trained model parameters (the slot's cycling buffer; drivers hand it
    /// back to the slot after aggregation so steady-state rounds allocate nothing).
    pub parameters: Vec<f64>,
    /// FedAvg weight `D_i` — the number of samples trained on (Eq. 3).
    pub weight: f64,
}

impl TrainingJob {
    /// Runs the local SGD epochs and returns the update together with the slot state for
    /// the driver to reclaim.
    pub fn run(mut self) -> (LocalUpdate, SlotState) {
        let mut rng = seeded_rng(self.seed);
        let state = &mut self.state;
        state.model.apply_parameters(&self.global_params);
        state.model.reset_scratch_rng();
        for _ in 0..self.epochs {
            state.model.train_epoch_in(
                &mut state.arena,
                &self.data,
                &state.indices,
                self.learning_rate,
                self.batch_size,
                &mut rng,
            );
        }
        state.model.parameters_into(&mut state.params);
        let update = LocalUpdate {
            slot: self.slot,
            client: self.client,
            parameters: std::mem::take(&mut state.params),
            weight: state.indices.len() as f64,
        };
        (update, self.state)
    }
}

/// How the local-training stage decomposes each winner's work into executor tasks.
///
/// Every granularity produces bit-identical updates (a winner's units run strictly in
/// order, with the same RNG stream); the knob only changes how finely the scheduler can
/// pack work around a straggler winner. Coarser is cheaper in scheduling overhead, finer
/// wins wall-clock when winners' workloads are skewed — see [`crate::chain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanOutGranularity {
    /// One indivisible task per winner (the historical default).
    #[default]
    PerWinner,
    /// One chain unit per local epoch.
    PerEpoch,
    /// One chain unit per mini-batch (plus the epoch's shuffle folded into its first
    /// batch) — the finest decomposition [`fmore_ml::model::Sequential`] supports.
    PerBatch,
}

/// Incremental executor of one [`TrainingJob`]: the same phases as [`TrainingJob::run`]
/// (prime the slot model, train the epochs, export the parameters) advanced one fan-out
/// unit at a time, bit-identical to the one-shot path at every granularity.
struct ChainedTraining {
    job: TrainingJob,
    rng: rand::rngs::StdRng,
    granularity: FanOutGranularity,
    primed: bool,
    epoch: usize,
    /// Sample cursor into the current epoch's shuffled order (per-batch only).
    cursor: usize,
}

impl ChainedTraining {
    fn new(job: TrainingJob, granularity: FanOutGranularity) -> Self {
        let rng = seeded_rng(job.seed);
        Self {
            job,
            rng,
            granularity,
            primed: false,
            epoch: 0,
            cursor: 0,
        }
    }

    /// Estimated `(units, per-unit cost)` of the chain, in samples — scheduling hints for
    /// the longest-remaining-first queue, never load-bearing for correctness.
    fn estimate(&self) -> (usize, u64) {
        let n = self.job.state.indices.len();
        let epochs = self.job.epochs.max(1);
        let batch = self.job.batch_size.max(1);
        match self.granularity {
            FanOutGranularity::PerWinner => (1, (epochs * n.max(1)) as u64),
            FanOutGranularity::PerEpoch => (epochs, n.max(1) as u64),
            FanOutGranularity::PerBatch => (
                epochs * n.div_ceil(batch).max(1),
                batch.min(n.max(1)) as u64,
            ),
        }
    }

    /// Runs one unit; returns `true` once every epoch has trained (the caller then
    /// exports the parameters via [`ChainedTraining::finish`]).
    fn advance(&mut self) -> bool {
        let state = &mut self.job.state;
        if !self.primed {
            state.model.apply_parameters(&self.job.global_params);
            state.model.reset_scratch_rng();
            self.primed = true;
            if self.job.epochs == 0 {
                return true;
            }
        }
        match self.granularity {
            FanOutGranularity::PerWinner | FanOutGranularity::PerEpoch => {
                state.model.train_epoch_in(
                    &mut state.arena,
                    &self.job.data,
                    &state.indices,
                    self.job.learning_rate,
                    self.job.batch_size,
                    &mut self.rng,
                );
                self.epoch += 1;
            }
            FanOutGranularity::PerBatch => {
                if self.cursor == 0 {
                    // First batch of the epoch carries the shuffle. An empty subset makes
                    // the whole epoch a no-op consuming no RNG, exactly like
                    // `train_epoch_in`'s early return.
                    state
                        .model
                        .shuffle_epoch_in(&mut state.arena, &state.indices, &mut self.rng);
                }
                let n = state.arena.epoch_len();
                if n == 0 {
                    self.epoch += 1;
                    return self.epoch == self.job.epochs;
                }
                let lo = self.cursor;
                let hi = (lo + self.job.batch_size.max(1)).min(n);
                state.model.train_batches_in(
                    &mut state.arena,
                    &self.job.data,
                    lo..hi,
                    self.job.learning_rate,
                    self.job.batch_size,
                );
                self.cursor = hi;
                if self.cursor >= n {
                    self.cursor = 0;
                    self.epoch += 1;
                }
            }
        }
        self.epoch == self.job.epochs
    }

    /// Exports the trained parameters — the tail of [`TrainingJob::run`], verbatim.
    fn finish(mut self) -> (LocalUpdate, SlotState) {
        let state = &mut self.job.state;
        state.model.parameters_into(&mut state.params);
        let update = LocalUpdate {
            slot: self.job.slot,
            client: self.job.client,
            parameters: std::mem::take(&mut state.params),
            weight: state.indices.len() as f64,
        };
        (update, self.job.state)
    }

    /// Wraps the chained job as a [`TaskChain`] step closure.
    fn into_chain(self) -> crate::chain::TaskChain<(LocalUpdate, SlotState)> {
        let (units, cost) = self.estimate();
        let mut chained = Some(self);
        crate::chain::TaskChain::new(units, cost, move || {
            let c = chained.as_mut().expect("chain stepped past completion");
            if c.advance() {
                Some(
                    chained
                        .take()
                        .expect("chain finished exactly once")
                        .finish(),
                )
            } else {
                None
            }
        })
    }
}

/// Trains every job on the engine (steps 4–5 of Algorithm 1), returning updates and their
/// reclaimed slot states in slot order regardless of execution mode or completion order.
///
/// # Errors
///
/// Returns [`FlError::JobPanic`] when a training task panics — attributed to this round,
/// with every sibling update still trained (the checked executor delivers healthy slots
/// before the error surfaces).
pub fn local_training(
    engine: &RoundEngine,
    jobs: Vec<TrainingJob>,
) -> Result<Vec<(LocalUpdate, SlotState)>, FlError> {
    local_training_with(engine, jobs, FanOutGranularity::PerWinner)
}

/// [`local_training`] with an explicit [`FanOutGranularity`]: per-winner jobs go through
/// the executor as indivisible tasks; per-epoch and per-batch jobs run as
/// [`crate::chain::TaskChain`]s (see [`crate::chain::run_chains`]) whose units interleave
/// across winners with
/// longest-remaining-first scheduling. The returned updates are bit-identical across all
/// granularities, engines, and pool widths.
///
/// # Errors
///
/// As for [`local_training`]; a panic mid-chain fails the round with the chain's winner
/// slot, with every sibling winner still trained.
pub fn local_training_with(
    engine: &RoundEngine,
    jobs: Vec<TrainingJob>,
    granularity: FanOutGranularity,
) -> Result<Vec<(LocalUpdate, SlotState)>, FlError> {
    match granularity {
        FanOutGranularity::PerWinner => {
            let tasks: Vec<Task<(LocalUpdate, SlotState)>> = jobs
                .into_iter()
                .map(|job| Box::new(move || job.run()) as Task<(LocalUpdate, SlotState)>)
                .collect();
            engine.try_run_tasks(tasks)
        }
        FanOutGranularity::PerEpoch | FanOutGranularity::PerBatch => {
            let chains = jobs
                .into_iter()
                .map(|job| ChainedTraining::new(job, granularity).into_chain())
                .collect();
            crate::chain::run_chains(engine, chains)
        }
    }
}

// ---------------------------------------------------------------------------
// Stage 5: aggregation.
// ---------------------------------------------------------------------------

/// Aggregates local updates into new global parameters by data-weighted FedAvg (step 6 of
/// Algorithm 1). Returns `Ok(None)` when there are no updates.
///
/// # Errors
///
/// [`FlError::NonFiniteUpdate`] when an update carries a NaN/±∞ parameter.
pub fn aggregate(updates: &[LocalUpdate]) -> Result<Option<Vec<f64>>, FlError> {
    federated_average_slices(updates.iter().map(|u| (u.parameters.as_slice(), u.weight)))
}

/// Allocation-free form of [`aggregate`]: accumulates the weighted average into `out`
/// (capacity reused). Returns `Ok(false)` — leaving `out` empty — when there is nothing to
/// aggregate.
///
/// # Errors
///
/// [`FlError::NonFiniteUpdate`] when an update carries a NaN/±∞ parameter.
pub fn aggregate_into(updates: &[LocalUpdate], out: &mut Vec<f64>) -> Result<bool, FlError> {
    federated_average_into(
        updates.iter().map(|u| (u.parameters.as_slice(), u.weight)),
        out,
    )
}

/// Aggregates local updates through a pluggable [`AggregationRule`], reusing `scratch`
/// so the rule's internals allocate nothing in steady state. Returns the screening
/// verdict; `out` holds the new global parameters when anything was accepted.
///
/// # Errors
///
/// Whatever the rule reports — e.g. [`FlError::AllUpdatesQuarantined`] when screening
/// rejected every update.
pub fn aggregate_with_rule(
    rule: &dyn AggregationRule,
    updates: &[LocalUpdate],
    scratch: &mut AggregationScratch,
    out: &mut Vec<f64>,
) -> Result<ScreenedAggregation, FlError> {
    let borrowed: Vec<(&[f64], f64)> = updates
        .iter()
        .map(|u| (u.parameters.as_slice(), u.weight))
        .collect();
    rule.aggregate_with(&borrowed, out, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Task<usize>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger so completion order differs from submission order.
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * 2
                }) as Task<usize>
            })
            .collect();
        let results = pool.run_indexed(tasks);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_size_one_and_inline_agree() {
        let pool = WorkerPool::new(1);
        let make = || -> Vec<Task<u64>> {
            (0..16)
                .map(|i| Box::new(move || i as u64 * i as u64) as Task<u64>)
                .collect()
        };
        let pooled = pool.run_indexed(make());
        let inline: Vec<u64> = make().into_iter().map(|t| t()).collect();
        assert_eq!(pooled, inline);
    }

    #[test]
    fn nested_fanout_runs_inline_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        let outer: Vec<Task<Vec<usize>>> = (0..4usize)
            .map(|i| {
                let pool = Arc::clone(&pool);
                Box::new(move || {
                    let inner: Vec<Task<usize>> = (0..8usize)
                        .map(|j| Box::new(move || i * 100 + j) as Task<usize>)
                        .collect();
                    pool.run_indexed(inner)
                }) as Task<Vec<usize>>
            })
            .collect();
        let results = pool.run_indexed(outer);
        for (i, row) in results.iter().enumerate() {
            assert_eq!(*row, (0..8).map(|j| i * 100 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn engine_modes_agree_on_results() {
        let make = || -> Vec<Task<i64>> {
            (0..12)
                .map(|i| Box::new(move || (i as i64 - 6) * 3) as Task<i64>)
                .collect()
        };
        let inline = RoundEngine::inline().run_tasks(make());
        let spawned = RoundEngine::spawn_per_round().run_tasks(make());
        let pooled = RoundEngine::pooled(3).run_tasks(make());
        let shared = RoundEngine::default().run_tasks(make());
        assert_eq!(inline, spawned);
        assert_eq!(inline, pooled);
        assert_eq!(inline, shared);
    }

    #[test]
    fn engine_exposes_mode_and_pool() {
        assert_eq!(RoundEngine::inline().mode(), ExecutionMode::Inline);
        assert!(RoundEngine::inline().pool().is_none());
        assert_eq!(
            RoundEngine::spawn_per_round().mode(),
            ExecutionMode::SpawnPerRound
        );
        let engine = RoundEngine::pooled(2);
        assert_eq!(engine.mode(), ExecutionMode::Pooled);
        assert_eq!(engine.pool().unwrap().threads(), 2);
        assert!(WorkerPool::new(0).threads() >= 1);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        assert!(Arc::ptr_eq(&shared_pool(), &shared_pool()));
    }

    fn timing(slot: usize, secs: f64, straggler: bool, dropped: bool) -> ParticipantTiming {
        ParticipantTiming {
            slot,
            completion_secs: secs,
            straggler,
            dropped_out: dropped,
        }
    }

    #[test]
    fn deadline_partitions_survivors_late_and_dropouts() {
        let timings = vec![
            timing(0, 10.0, false, false),
            timing(1, 25.0, true, false),
            timing(2, f64::INFINITY, false, true),
            timing(3, 5.0, false, false),
        ];
        let verdict = apply_deadline(&timings, 20.0);
        assert_eq!(verdict.survivors, vec![0, 3]);
        assert_eq!(verdict.missed, vec![1]);
        assert_eq!(verdict.dropouts, vec![2]);
        // Someone failed to deliver: the server waits out the full deadline.
        assert_eq!(verdict.wave_secs, 20.0);
    }

    #[test]
    fn deadline_wave_time_is_slowest_on_time_delivery_when_everyone_delivers() {
        let timings = vec![timing(0, 10.0, false, false), timing(1, 14.5, true, false)];
        let verdict = apply_deadline(&timings, 20.0);
        assert_eq!(verdict.survivors, vec![0, 1]);
        assert!(verdict.missed.is_empty() && verdict.dropouts.is_empty());
        assert_eq!(verdict.wave_secs, 14.5);
        // An empty wave costs nothing.
        assert_eq!(apply_deadline(&[], 20.0), DeadlineVerdict::default());
    }

    #[test]
    fn deadline_gate_is_monotone_in_the_deadline() {
        let timings = vec![
            timing(0, 8.0, false, false),
            timing(1, 18.0, false, false),
            timing(2, 30.0, true, false),
        ];
        let tight = apply_deadline(&timings, 10.0);
        let loose = apply_deadline(&timings, 20.0);
        let looser = apply_deadline(&timings, 40.0);
        assert!(tight.survivors.len() <= loose.survivors.len());
        assert!(loose.survivors.len() <= looser.survivors.len());
        assert!(tight.wave_secs <= loose.wave_secs);
        assert!(loose.wave_secs <= looser.wave_secs);
    }

    fn scale_auction(k: usize) -> Auction {
        use fmore_auction::{Additive, PricingRule, ScoringRule, SelectionRule};
        Auction::new(
            ScoringRule::new(Additive::new(vec![1.0, 1.0]).unwrap()),
            k,
            SelectionRule::TopK,
            PricingRule::FirstPrice,
        )
    }

    fn synthetic_bid(i: usize) -> (fmore_auction::NodeId, [f64; 2], f64) {
        let q = [
            ((i * 7) % 101) as f64 / 101.0,
            ((i * 13) % 97) as f64 / 97.0,
        ];
        let ask = ((i * 3) % 31) as f64 / 100.0;
        (fmore_auction::NodeId(i as u64), q, ask)
    }

    fn streamed_winners(
        auction: &Auction,
        n: usize,
        shard: usize,
        engine: &RoundEngine,
        seed: u64,
    ) -> StreamedAuction {
        let fill = Arc::new(move |range: std::ops::Range<usize>, store: &mut BidStore| {
            for i in range {
                let (node, q, ask) = synthetic_bid(i);
                store.push(node, &q, ask)?;
            }
            Ok(())
        });
        auction_select_streamed(
            auction,
            n,
            shard,
            auction.winners_per_round(),
            engine,
            fill,
            &mut seeded_rng(seed),
            |award| WinnerInfo {
                client: award.node.0 as usize,
                node: award.node,
                data_size: 1,
                categories: 1,
                score: award.score,
                payment: award.payment,
            },
        )
        .unwrap()
    }

    #[test]
    fn streamed_selection_matches_the_dense_auction() {
        let auction = scale_auction(8);
        let n = 500;
        let dense_bids: Vec<SubmittedBid> = (0..n)
            .map(|i| {
                let (node, q, ask) = synthetic_bid(i);
                SubmittedBid::new(node, fmore_auction::Quality::new(q.to_vec()), ask)
            })
            .collect();
        let dense = auction.run(dense_bids, &mut seeded_rng(77)).unwrap();
        let streamed = streamed_winners(&auction, n, 64, &RoundEngine::inline(), 77);
        assert_eq!(streamed.offered, n);
        let dense_pairs: Vec<(u64, u64)> = dense
            .winners()
            .iter()
            .map(|w| (w.node.0, w.payment.to_bits()))
            .collect();
        let streamed_pairs: Vec<(u64, u64)> = streamed
            .winners
            .iter()
            .map(|w| (w.node.0, w.payment.to_bits()))
            .collect();
        assert_eq!(dense_pairs, streamed_pairs, "winners and payments drifted");
        // The bounded standing store never grows past K + reserve, and peak memory is
        // shard-scale, not population-scale.
        assert!(streamed.standing.len() <= 16);
        let full_store_bytes = n * (8 + 8 * 4);
        assert!(streamed.peak_bid_bytes < full_store_bytes);
    }

    #[test]
    fn bounded_psi_streaming_matches_the_dense_auction_bitwise() {
        use fmore_auction::{Additive, PricingRule, ScoringRule};
        // ψ = 0.6 usually resolves from the bounded pool head; ψ = 0.12 walks deep enough
        // that the refinement pass runs. Both must match the dense auction bit for bit.
        for &(psi, pricing) in &[
            (0.6, PricingRule::FirstPrice),
            (0.6, PricingRule::SecondPrice),
            (0.12, PricingRule::FirstPrice),
            (0.12, PricingRule::SecondPrice),
        ] {
            let auction = Auction::new(
                ScoringRule::new(Additive::new(vec![1.0, 1.0]).unwrap()),
                8,
                SelectionRule::PsiFMore { psi },
                pricing,
            );
            let n = 500;
            for seed in [7u64, 77, 777] {
                let dense_bids: Vec<SubmittedBid> = (0..n)
                    .map(|i| {
                        let (node, q, ask) = synthetic_bid(i);
                        SubmittedBid::new(node, fmore_auction::Quality::new(q.to_vec()), ask)
                    })
                    .collect();
                let dense = auction.run(dense_bids, &mut seeded_rng(seed)).unwrap();
                for engine in [RoundEngine::inline(), RoundEngine::pooled(2)] {
                    let streamed = streamed_winners(&auction, n, 64, &engine, seed);
                    let dense_pairs: Vec<(u64, u64)> = dense
                        .winners()
                        .iter()
                        .map(|w| (w.node.0, w.payment.to_bits()))
                        .collect();
                    let streamed_pairs: Vec<(u64, u64)> = streamed
                        .winners
                        .iter()
                        .map(|w| (w.node.0, w.payment.to_bits()))
                        .collect();
                    assert_eq!(
                        dense_pairs, streamed_pairs,
                        "psi={psi} {pricing:?} seed={seed}: bounded walk diverged"
                    );
                    // The pool stays at K + reserve and peak memory stays shard-scale —
                    // the O(N) widening is gone.
                    assert!(streamed.standing.len() <= 16);
                    let full_store_bytes = n * (8 + 8 * 4);
                    assert!(
                        streamed.peak_bid_bytes < full_store_bytes,
                        "psi={psi} seed={seed}: peak {} not bounded",
                        streamed.peak_bid_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_selection_is_shard_and_width_independent() {
        let auction = scale_auction(5);
        let reference = streamed_winners(&auction, 300, 300, &RoundEngine::inline(), 3);
        for shard in [1usize, 7, 64] {
            for engine in [RoundEngine::inline(), RoundEngine::pooled(4)] {
                let other = streamed_winners(&auction, 300, shard, &engine, 3);
                assert_eq!(
                    reference.winners, other.winners,
                    "shard={shard} changed the winner set"
                );
            }
        }
    }

    #[test]
    fn streamed_selection_rejects_empty_and_invalid_games() {
        let auction = scale_auction(0);
        let fill = Arc::new(|_: std::ops::Range<usize>, _: &mut BidStore| Ok(()));
        let err = auction_select_streamed(
            &auction,
            10,
            4,
            0,
            &RoundEngine::inline(),
            Arc::clone(&fill),
            &mut seeded_rng(1),
            |_| unreachable!(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            FlError::Auction(AuctionError::InvalidGame { .. })
        ));
        // A population that streams zero bids is NoBids, like the dense stage.
        let auction = scale_auction(2);
        let err = auction_select_streamed(
            &auction,
            10,
            4,
            0,
            &RoundEngine::inline(),
            fill,
            &mut seeded_rng(1),
            |_| unreachable!(),
        )
        .unwrap_err();
        assert_eq!(err, FlError::Auction(AuctionError::NoBids));
    }

    #[test]
    fn streamed_selection_surfaces_fill_panics_as_typed_errors() {
        let auction = scale_auction(4);
        let fill = Arc::new(|range: std::ops::Range<usize>, store: &mut BidStore| {
            for i in range {
                assert!(i < 96, "mid-churn population vanished");
                let (node, q, ask) = synthetic_bid(i);
                store.push(node, &q, ask)?;
            }
            Ok(())
        });
        for engine in [
            RoundEngine::inline(),
            RoundEngine::spawn_per_round(),
            RoundEngine::pooled(2),
        ] {
            let err = auction_select_streamed(
                &auction,
                128,
                32,
                4,
                &engine,
                Arc::clone(&fill),
                &mut seeded_rng(5),
                |_| unreachable!("no winners from a failed round"),
            )
            .unwrap_err();
            match err {
                FlError::JobPanic(marker) => {
                    assert!(marker.message.contains("mid-churn"), "{marker}");
                }
                other => panic!("expected JobPanic, got {other}"),
            }
        }
    }

    #[test]
    fn checked_engine_modes_agree_and_attribute_panics_per_slot() {
        let make = || -> Vec<Task<usize>> {
            (0..8usize)
                .map(|i| {
                    Box::new(move || {
                        assert!(i != 5, "slot five dies");
                        i * 10
                    }) as Task<usize>
                })
                .collect()
        };
        for engine in [
            RoundEngine::inline(),
            RoundEngine::spawn_per_round(),
            RoundEngine::pooled(3),
        ] {
            let fates = engine.run_tasks_checked(make());
            assert_eq!(fates.len(), 8);
            for (i, fate) in fates.iter().enumerate() {
                match fate {
                    Ok(v) => assert_eq!(*v, i * 10),
                    Err(marker) => {
                        assert_eq!(i, 5, "only slot five panics");
                        assert_eq!(marker.slot, 5);
                    }
                }
            }
            let err = engine.try_run_tasks(make()).unwrap_err();
            assert!(
                matches!(err, FlError::JobPanic(ref m) if m.slot == 5),
                "{err}"
            );
        }
    }

    #[test]
    fn engine_parallel_width_matches_the_substrate() {
        assert_eq!(RoundEngine::inline().parallel_width(), 1);
        assert_eq!(RoundEngine::pooled(3).parallel_width(), 3);
        assert!(RoundEngine::spawn_per_round().parallel_width() >= 1);
    }

    fn fan_out_jobs(sizes: &[usize]) -> Vec<TrainingJob> {
        use fmore_ml::dataset::SyntheticImageSpec;
        use fmore_ml::layers::{Dense, Dropout, Layer};
        let mut rng = seeded_rng(90);
        let data = Arc::new(SyntheticImageSpec::mnist_like().generate(160, &mut rng));
        // Dropout makes the model's scratch RNG order-sensitive, so any unit-sequencing
        // divergence between granularities corrupts the parameters.
        let model = Sequential::new(vec![
            Box::new(Dense::new(data.feature_dim(), 10, &mut rng)) as Box<dyn Layer>,
            Box::new(Dropout::new(0.25)),
            Box::new(Dense::new(10, data.num_classes(), &mut rng)),
        ]);
        let global_params = Arc::new(model.parameters());
        sizes
            .iter()
            .enumerate()
            .map(|(slot, &size)| {
                let mut state = SlotState::new(model.clone());
                state.indices = (0..size).map(|i| (slot * 13 + i) % data.len()).collect();
                TrainingJob {
                    slot,
                    client: slot,
                    state,
                    global_params: Arc::clone(&global_params),
                    data: Arc::clone(&data),
                    epochs: 2,
                    learning_rate: 0.1,
                    batch_size: 8,
                    seed: fmore_numerics::rng::derive_seed(91, slot as u64),
                }
            })
            .collect()
    }

    #[test]
    fn fan_out_granularities_produce_bit_identical_updates() {
        // Skewed sizes (one straggler, an empty subset, a sub-batch subset) across every
        // granularity × engine combination must reproduce the per-winner updates bitwise.
        let sizes = [60usize, 5, 0, 23, 120];
        let reference = local_training(&RoundEngine::inline(), fan_out_jobs(&sizes)).unwrap();
        for granularity in [
            FanOutGranularity::PerWinner,
            FanOutGranularity::PerEpoch,
            FanOutGranularity::PerBatch,
        ] {
            for engine in [
                RoundEngine::inline(),
                RoundEngine::pooled(2),
                RoundEngine::pooled(8),
            ] {
                let got = local_training_with(&engine, fan_out_jobs(&sizes), granularity).unwrap();
                assert_eq!(got.len(), reference.len());
                for ((update, _), (expected, _)) in got.iter().zip(&reference) {
                    assert_eq!(update.slot, expected.slot);
                    assert_eq!(update.weight.to_bits(), expected.weight.to_bits());
                    let bits = |p: &[f64]| p.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(&update.parameters),
                        bits(&expected.parameters),
                        "granularity {granularity:?} diverged in slot {}",
                        update.slot
                    );
                }
            }
        }
    }

    #[test]
    fn fan_out_chain_panics_fail_the_round_with_the_winner_slot() {
        let mut jobs = fan_out_jobs(&[10, 10, 10]);
        // Poison slot 1 with indices past the dataset: the gather panics mid-chain.
        jobs[1].state.indices = vec![usize::MAX];
        for granularity in [FanOutGranularity::PerEpoch, FanOutGranularity::PerBatch] {
            let err = local_training_with(&RoundEngine::pooled(2), jobs.clone(), granularity)
                .unwrap_err();
            assert!(
                matches!(err, FlError::JobPanic(ref m) if m.slot == 1),
                "granularity {granularity:?}: {err}"
            );
        }
    }

    #[test]
    fn aggregate_weights_by_data_size() {
        let updates = vec![
            LocalUpdate {
                slot: 0,
                client: 0,
                parameters: vec![1.0, 0.0],
                weight: 3.0,
            },
            LocalUpdate {
                slot: 1,
                client: 1,
                parameters: vec![0.0, 1.0],
                weight: 1.0,
            },
        ];
        let avg = aggregate(&updates).unwrap().unwrap();
        assert!((avg[0] - 0.75).abs() < 1e-12);
        assert!((avg[1] - 0.25).abs() < 1e-12);
        assert_eq!(aggregate(&[]).unwrap(), None);
        let mut poisoned = updates;
        poisoned[0].parameters[1] = f64::NAN;
        assert_eq!(
            aggregate(&poisoned).unwrap_err(),
            FlError::NonFiniteUpdate { index: 0 }
        );
    }
}
