//! Serial task chains scheduled as fine-grained units on the round engine.
//!
//! The per-winner training fan-out hands the executor one indivisible task per winner, so a
//! straggler winner — more data, more epochs — bounds the round's makespan from whenever a
//! worker happens to reach it. A [`TaskChain`] instead exposes the winner's local training
//! as a *sequence* of small units (one epoch, or one mini-batch) that must run in order but
//! can be interleaved with other chains' units on the same worker pool.
//!
//! [`run_chains`] drains every chain with longest-remaining-work-first scheduling: each
//! runner repeatedly picks the chain with the largest `remaining × unit_cost` product
//! (ties broken by chain index), executes exactly one unit, and requeues the chain. A
//! straggler chain therefore starts immediately and stays continuously scheduled, while
//! short chains pack around it — the classic LPT bound on makespan, instead of
//! last-picked-straggler luck.
//!
//! **Determinism contract.** A chain's units execute strictly in order on whichever workers
//! pick them up, each chain's result lands in its own submission-indexed slot, and the
//! scheduler's choices affect wall-clock only. Every history produced through chains is
//! bit-identical to the per-winner path at any pool width — the determinism suite pins
//! granularities × widths against each other.

use crate::engine::RoundEngine;
use crate::error::FlError;
use crate::executor::{panic_message, JobPanic};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One serial sequence of work units producing a single result.
///
/// `step` is called repeatedly — never concurrently — until it returns `Some(result)`; every
/// `None` is one completed intermediate unit. `remaining` and `cost` are *scheduling hints*
/// (estimated units left and estimated per-unit cost): correctness never depends on them,
/// a chain is finished exactly when `step` says so.
pub struct TaskChain<T> {
    step: Box<dyn FnMut() -> Option<T> + Send + 'static>,
    remaining: usize,
    cost: u64,
}

impl<T> TaskChain<T> {
    /// Builds a chain from a unit estimate, a per-unit cost estimate, and the step closure.
    pub fn new(
        remaining: usize,
        cost: u64,
        step: impl FnMut() -> Option<T> + Send + 'static,
    ) -> Self {
        Self {
            step: Box::new(step),
            remaining: remaining.max(1),
            cost: cost.max(1),
        }
    }

    /// Estimated work left on this chain, the scheduling priority.
    fn priority(&self) -> u128 {
        self.remaining as u128 * self.cost as u128
    }
}

impl<T> std::fmt::Debug for TaskChain<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskChain")
            .field("remaining", &self.remaining)
            .field("cost", &self.cost)
            .finish()
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked (unit panics are
/// caught before any scheduler lock is touched, so poisoning cannot happen by
/// construction).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared state of one [`run_chains`] call: the ready queue and the per-chain result slots.
struct ChainShared<T> {
    /// Chains ready to run, tagged with their submission index. A chain is here, owned by a
    /// runner mid-unit, or finished — never two of those at once.
    ready: Mutex<Vec<(usize, TaskChain<T>)>>,
    /// One slot per chain, written exactly once (result or panic marker).
    results: Mutex<Vec<Option<Result<T, JobPanic>>>>,
    /// Wakes runners parked on an empty ready queue while other runners still hold chains.
    ready_cv: Condvar,
    /// Chains not yet finished (ready or held by a runner); runners exit when this is 0.
    unfinished: Mutex<usize>,
}

impl<T> ChainShared<T> {
    /// Pops the ready chain with the highest priority (ties to the lowest index), blocking
    /// while the queue is empty but chains are still in flight elsewhere. Returns `None`
    /// when every chain has finished.
    fn next_chain(&self) -> Option<(usize, TaskChain<T>)> {
        loop {
            {
                let mut ready = lock(&self.ready);
                let best = ready
                    .iter()
                    .enumerate()
                    .max_by(|(_, (ia, a)), (_, (ib, b))| {
                        (a.priority(), std::cmp::Reverse(*ia))
                            .cmp(&(b.priority(), std::cmp::Reverse(*ib)))
                    })
                    .map(|(pos, _)| pos);
                if let Some(pos) = best {
                    return Some(ready.swap_remove(pos));
                }
            }
            // Ready is empty: either all chains are done, or other runners hold them
            // mid-unit and may requeue. Park on the condvar rather than spin.
            let mut unfinished = lock(&self.unfinished);
            loop {
                if *unfinished == 0 {
                    return None;
                }
                if !lock(&self.ready).is_empty() {
                    break;
                }
                unfinished = self
                    .ready_cv
                    .wait(unfinished)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }

    /// Requeues a chain after an intermediate unit. The notify happens under the
    /// `unfinished` mutex (the condvar's mutex), so a runner between its empty-queue check
    /// and its wait cannot miss it.
    fn requeue(&self, index: usize, chain: TaskChain<T>) {
        lock(&self.ready).push((index, chain));
        let _guard = lock(&self.unfinished);
        self.ready_cv.notify_all();
    }

    /// Records a chain's terminal fate; wakes parked runners so they can re-check for exit
    /// (or for a chain this one's completion can never requeue).
    fn finish(&self, index: usize, fate: Result<T, JobPanic>) {
        lock(&self.results)[index] = Some(fate);
        let mut unfinished = lock(&self.unfinished);
        *unfinished -= 1;
        self.ready_cv.notify_all();
    }

    /// One runner: repeatedly pick the heaviest ready chain, run one unit, requeue or
    /// retire it. A panicking unit retires its chain with a [`JobPanic`] marker carrying
    /// the chain index; every other chain keeps running.
    fn run(&self) {
        while let Some((index, mut chain)) = self.next_chain() {
            match catch_unwind(AssertUnwindSafe(|| (chain.step)())) {
                Ok(None) => {
                    chain.remaining = chain.remaining.saturating_sub(1).max(1);
                    self.requeue(index, chain);
                }
                Ok(Some(result)) => self.finish(index, Ok(result)),
                Err(payload) => self.finish(
                    index,
                    Err(JobPanic {
                        slot: index,
                        message: panic_message(payload),
                    }),
                ),
            }
        }
    }
}

/// Runs every chain to completion on the engine and returns the results in submission
/// order, or the **first** (lowest-indexed) panicked chain as a typed
/// [`FlError::JobPanic`] — mirroring [`RoundEngine::try_run_tasks`], including that every
/// healthy sibling chain still runs to completion before the error surfaces.
///
/// `min(parallel_width, chains.len())` runner tasks are submitted through the engine; each
/// drains units with longest-remaining-first priority. On an inline engine the single
/// runner executes chains one unit at a time in priority order — same results, no threads.
///
/// # Errors
///
/// Returns [`FlError::JobPanic`] naming the first panicked chain's index.
pub fn run_chains<T: Send + 'static>(
    engine: &RoundEngine,
    chains: Vec<TaskChain<T>>,
) -> Result<Vec<T>, FlError> {
    let n = chains.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let shared = Arc::new(ChainShared {
        ready: Mutex::new(chains.into_iter().enumerate().collect()),
        results: Mutex::new((0..n).map(|_| None).collect()),
        ready_cv: Condvar::new(),
        unfinished: Mutex::new(n),
    });
    let runners = engine.parallel_width().min(n).max(1);
    let tasks: Vec<crate::engine::Task<()>> = (0..runners)
        .map(|_| {
            let shared = Arc::clone(&shared);
            Box::new(move || shared.run()) as crate::engine::Task<()>
        })
        .collect();
    // Runners catch unit panics internally, so this fan-out itself never errors.
    engine.try_run_tasks(tasks)?;
    let results = std::mem::take(&mut *lock(&shared.results));
    let mut out = Vec::with_capacity(n);
    for fate in results {
        out.push(fate.expect("every chain finished exactly once")?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_chain(
        units: usize,
        cost: u64,
        value: usize,
        log: Arc<Mutex<Vec<usize>>>,
    ) -> TaskChain<usize> {
        let mut done = 0usize;
        TaskChain::new(units, cost, move || {
            done += 1;
            log.lock().unwrap().push(value);
            (done == units).then_some(value)
        })
    }

    #[test]
    fn chains_complete_in_submission_order_on_every_engine() {
        for engine in [
            RoundEngine::inline(),
            RoundEngine::pooled(1),
            RoundEngine::pooled(3),
        ] {
            let log = Arc::new(Mutex::new(Vec::new()));
            let chains: Vec<TaskChain<usize>> = (0..5)
                .map(|i| counting_chain(i + 1, 10, i, Arc::clone(&log)))
                .collect();
            let results = run_chains(&engine, chains).unwrap();
            assert_eq!(results, vec![0, 1, 2, 3, 4]);
            // Every unit ran: 1 + 2 + 3 + 4 + 5.
            assert_eq!(log.lock().unwrap().len(), 15);
        }
    }

    #[test]
    fn inline_scheduling_is_longest_remaining_first() {
        let log = Arc::new(Mutex::new(Vec::new()));
        // Chain 0: 2 units of cost 1; chain 1: 3 units of cost 4. LRF must run chain 1
        // until its remaining work drops below chain 0's.
        let chains = vec![
            counting_chain(2, 1, 0, Arc::clone(&log)),
            counting_chain(3, 4, 1, Arc::clone(&log)),
        ];
        run_chains(&RoundEngine::inline(), chains).unwrap();
        let order = log.lock().unwrap().clone();
        assert_eq!(order, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn a_panicking_unit_fails_only_its_chain() {
        let survivor_units = Arc::new(AtomicUsize::new(0));
        for engine in [RoundEngine::inline(), RoundEngine::pooled(2)] {
            let units = Arc::clone(&survivor_units);
            units.store(0, Ordering::SeqCst);
            let mut healthy_done = 0usize;
            let healthy = TaskChain::new(4, 1, move || {
                healthy_done += 1;
                units.fetch_add(1, Ordering::SeqCst);
                (healthy_done == 4).then_some(7usize)
            });
            let mut doomed_done = 0usize;
            let doomed = TaskChain::new(4, 100, move || {
                doomed_done += 1;
                if doomed_done == 2 {
                    panic!("unit two died");
                }
                None
            });
            let err = run_chains(&engine, vec![healthy, doomed]).unwrap_err();
            match err {
                FlError::JobPanic(marker) => {
                    assert_eq!(marker.slot, 1);
                    assert_eq!(marker.message, "unit two died");
                }
                other => panic!("unexpected error: {other:?}"),
            }
            // The healthy chain still ran all of its units.
            assert_eq!(survivor_units.load(Ordering::SeqCst), 4);
        }
    }

    #[test]
    fn empty_and_single_chain_calls_work() {
        let engine = RoundEngine::inline();
        assert!(run_chains::<u8>(&engine, Vec::new()).unwrap().is_empty());
        let one = TaskChain::new(1, 1, || Some(9u8));
        assert_eq!(run_chains(&engine, vec![one]).unwrap(), vec![9]);
    }
}
