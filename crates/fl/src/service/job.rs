//! One tenant of the [`crate::service::AuctionService`]: its specification, its per-round
//! state, and the history it accumulates.
//!
//! A job owns everything mutable it touches during a round — its RNG derivation, its
//! auction, its round counter, its history. The only shared pieces are immutable
//! ([`JobSpec::source`], [`JobSpec::work`] behind `Arc`) or explicitly concurrency-safe
//! (the engine's worker pool, whose per-fan-out slabs are private to the submitting
//! round). That ownership split is what makes a job's history bit-identical whether it
//! runs alone or interleaved with noisy neighbours.

use crate::engine::{
    apply_deadline, auction_select_streamed, ParticipantTiming, RoundEngine, Task,
};
use crate::error::FlError;
use crate::metrics::WinnerInfo;
use fmore_auction::{Auction, AuctionError, BidStore};
use fmore_numerics::rng::derive_seed;
use fmore_numerics::seeded_rng;
use std::ops::Range;
use std::sync::Arc;

/// Identifier of an admitted job, unique for the lifetime of its service.
pub type JobId = u64;

/// A job's bid stream: called once per shard — on a worker thread for pooled engines —
/// with the shard's index range, the job's current round, and a recycled columnar
/// [`BidStore`] to push sealed bids into.
///
/// The closure must be a pure function of `(range, round)`: it may capture immutable
/// population state (or per-thread scratch that is fully rewritten per call), but nothing
/// mutable shared with other jobs — that contract is what the solo-vs-interleaved
/// determinism suite enforces.
pub type BidSource =
    dyn Fn(Range<usize>, u64, &mut BidStore) -> Result<(), AuctionError> + Send + Sync;

/// Optional per-winner post-selection work (the stand-in for local training in synthetic
/// service traffic): called as `work(round, slot, winner)` on a worker thread, returning a
/// scalar folded into [`RoundSummary::work_value`]. A panic inside is caught by the
/// checked executor path and fails only this job's round.
pub type WinnerWork = dyn Fn(u64, usize, &WinnerInfo) -> f64 + Send + Sync;

/// Synthetic deadline model for a job: deterministic per-`(seed, round, slot)` completion
/// times fed through [`apply_deadline`], so a service job exercises the same
/// survivor/missed partition as the MEC dynamics without owning a churn simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineSpec {
    /// Round deadline `T` in simulated seconds.
    pub deadline_secs: f64,
    /// Nominal completion time of an unhindered winner.
    pub base_secs: f64,
    /// Probability a winner is slowed this round.
    pub straggler_rate: f64,
    /// Multiplicative slowdown applied to stragglers (`completion = base · (1 + slowdown)`).
    pub slowdown: f64,
}

impl DeadlineSpec {
    /// A deadline loose enough that only stragglers miss it.
    pub fn lenient() -> Self {
        Self {
            deadline_secs: 10.0,
            base_secs: 5.0,
            straggler_rate: 0.2,
            slowdown: 1.5,
        }
    }

    /// Deterministic uniform draw in `[0, 1)` for `(seed, round, slot)`.
    fn uniform(seed: u64, round: u64, slot: usize) -> f64 {
        let h = derive_seed(derive_seed(seed, round), slot as u64 + 1);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn timings(&self, seed: u64, round: u64, winners: usize) -> Vec<ParticipantTiming> {
        (0..winners)
            .map(|slot| {
                let straggler = Self::uniform(seed, round, slot) < self.straggler_rate;
                let completion_secs = if straggler {
                    self.base_secs * (1.0 + self.slowdown)
                } else {
                    self.base_secs
                };
                ParticipantTiming {
                    slot,
                    completion_secs,
                    straggler,
                    dropped_out: false,
                }
            })
            .collect()
    }
}

/// Everything the service needs to run one tenant: population size, auction, stream
/// geometry, seed, and the job's bid/work closures.
///
/// Cloning a spec is cheap (the closures are shared via `Arc`) and yields a job that
/// replays the exact same history — the determinism suite relies on this to compare solo
/// and interleaved runs of the same spec.
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable name (reported in histories and soak tables).
    pub name: String,
    /// Number of bidder indices streamed per round.
    pub population: usize,
    /// Shard width of the bid stream (peak memory is `O(width · shard + K)`).
    pub shard_size: usize,
    /// Extra ranked candidates the selector keeps beyond `K` (re-auction reserve).
    pub reserve: usize,
    /// The job's auction: scoring rule, `K`, selection rule, pricing rule.
    pub auction: Auction,
    /// Root seed; each round derives its own RNG as `derive_seed(seed, round)`.
    pub seed: u64,
    /// Optional synthetic deadline model applied to each round's winners.
    pub deadline: Option<DeadlineSpec>,
    /// Bound on rounds queued but not yet run (the backpressure knob); `0` means
    /// "service default".
    pub max_pending: usize,
    /// The job's bid stream.
    pub source: Arc<BidSource>,
    /// Optional per-winner work.
    pub work: Option<Arc<WinnerWork>>,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("population", &self.population)
            .field("shard_size", &self.shard_size)
            .field("winners", &self.auction.winners_per_round())
            .field("seed", &self.seed)
            .field("deadline", &self.deadline)
            .field("max_pending", &self.max_pending)
            .finish()
    }
}

/// What one successful round produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSummary {
    /// The job-local round number (1-based).
    pub round: u64,
    /// Bids streamed through the selector.
    pub offered: usize,
    /// Post-deadline surviving winners, in selection order.
    pub winners: Vec<WinnerInfo>,
    /// Total payment promised to the surviving winners.
    pub total_payment: f64,
    /// Winners that missed the deadline (excluded from `winners`).
    pub deadline_misses: usize,
    /// Sum of the per-winner work values (0 when the job has no work closure).
    pub work_value: f64,
    /// Peak resident bid bytes of the round's streaming stage.
    pub peak_bid_bytes: usize,
}

/// One round's outcome in a job's history: a summary, or the typed error that failed the
/// round (the job itself survives and may run further rounds).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// The job-local round number (1-based).
    pub round: u64,
    /// The round's outcome.
    pub outcome: Result<RoundSummary, FlError>,
}

/// The full per-job history: every round ever run, successful or failed, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobHistory {
    /// The job's name (from its spec).
    pub name: String,
    /// One record per round run.
    pub rounds: Vec<RoundRecord>,
}

impl JobHistory {
    /// Number of successful rounds.
    pub fn completed(&self) -> usize {
        self.rounds.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Number of failed rounds.
    pub fn failed(&self) -> usize {
        self.rounds.len() - self.completed()
    }

    /// FNV-1a fingerprint over the history's *auction-observable* content: round numbers,
    /// offered counts, winner nodes/scores/payments bit-for-bit, deadline misses, work
    /// values, failure messages. [`RoundSummary::peak_bid_bytes`] is deliberately
    /// excluded — it is memory *accounting* and scales with the engine's parallel width,
    /// while the fingerprint pins what must be invariant across widths and neighbours.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        for record in &self.rounds {
            eat(&record.round.to_le_bytes());
            match &record.outcome {
                Ok(s) => {
                    eat(&(s.offered as u64).to_le_bytes());
                    eat(&s.total_payment.to_bits().to_le_bytes());
                    eat(&(s.deadline_misses as u64).to_le_bytes());
                    eat(&s.work_value.to_bits().to_le_bytes());
                    for w in &s.winners {
                        eat(&w.node.0.to_le_bytes());
                        eat(&w.score.to_bits().to_le_bytes());
                        eat(&w.payment.to_bits().to_le_bytes());
                    }
                }
                Err(e) => eat(e.to_string().as_bytes()),
            }
        }
        h
    }
}

/// A live job inside the service: spec + round counter + pending-round queue depth +
/// accumulated history. All of it is private to the job's own mutex; a round holds no
/// other lock while it runs.
#[derive(Debug)]
pub struct FlJob {
    spec: JobSpec,
    round: u64,
    pending: usize,
    history: JobHistory,
}

impl FlJob {
    pub(super) fn new(spec: JobSpec) -> Self {
        let history = JobHistory {
            name: spec.name.clone(),
            rounds: Vec::new(),
        };
        Self {
            spec,
            round: 0,
            pending: 0,
            history,
        }
    }

    pub(super) fn spec(&self) -> &JobSpec {
        &self.spec
    }

    pub(super) fn pending(&self) -> usize {
        self.pending
    }

    pub(super) fn push_pending(&mut self) {
        self.pending += 1;
    }

    pub(super) fn pop_pending(&mut self) -> bool {
        if self.pending == 0 {
            return false;
        }
        self.pending -= 1;
        true
    }

    pub(super) fn history(&self) -> &JobHistory {
        &self.history
    }

    pub(super) fn into_history(self) -> JobHistory {
        self.history
    }

    /// Runs one round and records its outcome in the history. The returned result mirrors
    /// the recorded outcome; an `Err` means *this round* failed — the job stays usable.
    pub(super) fn run_round(&mut self, engine: &RoundEngine) -> Result<RoundSummary, FlError> {
        self.round += 1;
        let round = self.round;
        let outcome = self.round_body(round, engine);
        self.history.rounds.push(RoundRecord {
            round,
            outcome: outcome.clone(),
        });
        outcome
    }

    fn round_body(&self, round: u64, engine: &RoundEngine) -> Result<RoundSummary, FlError> {
        let spec = &self.spec;
        // Each round's randomness derives from (seed, round) alone, so the stream of
        // histories is independent of when — or beside whom — the round executes.
        let mut rng = seeded_rng(derive_seed(spec.seed, round));
        let source = Arc::clone(&spec.source);
        let fill =
            Arc::new(move |range: Range<usize>, store: &mut BidStore| source(range, round, store));
        let streamed = auction_select_streamed(
            &spec.auction,
            spec.population,
            spec.shard_size,
            spec.reserve,
            engine,
            fill,
            &mut rng,
            |award| WinnerInfo {
                client: award.node.0 as usize,
                node: award.node,
                data_size: 1,
                categories: 1,
                score: award.score,
                payment: award.payment,
            },
        )?;

        let mut winners = streamed.winners;
        let mut deadline_misses = 0;
        if let Some(deadline) = &spec.deadline {
            let timings = deadline.timings(spec.seed, round, winners.len());
            let verdict = apply_deadline(&timings, deadline.deadline_secs);
            deadline_misses = winners.len() - verdict.survivors.len();
            let mut keep = verdict.survivors.into_iter().peekable();
            let mut slot = 0usize;
            winners.retain(|_| {
                let keep_this = keep.peek() == Some(&slot);
                if keep_this {
                    keep.next();
                }
                slot += 1;
                keep_this
            });
        }

        let work_value = match &spec.work {
            Some(work) => {
                let tasks: Vec<Task<f64>> = winners
                    .iter()
                    .enumerate()
                    .map(|(slot, winner)| {
                        let work = Arc::clone(work);
                        let winner = winner.clone();
                        Box::new(move || work(round, slot, &winner)) as Task<f64>
                    })
                    .collect();
                engine.try_run_tasks(tasks)?.into_iter().sum()
            }
            None => 0.0,
        };

        let total_payment = winners.iter().map(|w| w.payment).sum();
        Ok(RoundSummary {
            round,
            offered: streamed.offered,
            winners,
            total_payment,
            deadline_misses,
            work_value,
            peak_bid_bytes: streamed.peak_bid_bytes,
        })
    }
}
