//! One tenant of the [`crate::service::AuctionService`]: its specification, its per-round
//! state, and the history it accumulates.
//!
//! A job owns everything mutable it touches during a round — its RNG derivation, its
//! auction, its round counter, its history. The only shared pieces are immutable
//! ([`JobSpec::source`], [`JobSpec::work`] behind `Arc`) or explicitly concurrency-safe
//! (the engine's worker pool, whose per-fan-out slabs are private to the submitting
//! round). That ownership split is what makes a job's history bit-identical whether it
//! runs alone or interleaved with noisy neighbours.

use crate::adversary::{AdversaryClock, AdversaryPlan, ReputationLedger, ReputationSpec};
use crate::aggregator::{AggregationRule, AggregationScratch, MedianNormScreen, ScreenPolicy};
use crate::chain::TaskChain;
use crate::engine::{
    apply_deadline, auction_select_streamed, FanOutGranularity, ParticipantTiming, RoundEngine,
    Task,
};
use crate::error::FlError;
use crate::faults::{FaultClock, FaultEvent, FaultKind, FaultPlan, WatchdogSpec};
use crate::metrics::WinnerInfo;
use fmore_auction::{Auction, AuctionError, BidStore};
use fmore_numerics::rng::derive_seed;
use fmore_numerics::seeded_rng;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of an admitted job, unique for the lifetime of its service.
pub type JobId = u64;

/// A job's bid stream: called once per shard — on a worker thread for pooled engines —
/// with the shard's index range, the job's current round, and a recycled columnar
/// [`BidStore`] to push sealed bids into.
///
/// The closure must be a pure function of `(range, round)`: it may capture immutable
/// population state (or per-thread scratch that is fully rewritten per call), but nothing
/// mutable shared with other jobs — that contract is what the solo-vs-interleaved
/// determinism suite enforces.
pub type BidSource =
    dyn Fn(Range<usize>, u64, &mut BidStore) -> Result<(), AuctionError> + Send + Sync;

/// Optional per-winner post-selection work (the stand-in for local training in synthetic
/// service traffic): called as `work(round, slot, winner)` on a worker thread, returning a
/// scalar folded into [`RoundSummary::work_value`]. A panic inside is caught by the
/// checked executor path and fails only this job's round.
pub type WinnerWork = dyn Fn(u64, usize, &WinnerInfo) -> f64 + Send + Sync;

/// A [`BidSource`] already bound to its round — the shape the streamed selector's fill
/// input takes (and the fault layer wraps to inject shard panics).
type ShardFill = dyn Fn(Range<usize>, &mut BidStore) -> Result<(), AuctionError> + Send + Sync;

/// Synthetic deadline model for a job: deterministic per-`(seed, round, slot)` completion
/// times fed through [`apply_deadline`], so a service job exercises the same
/// survivor/missed partition as the MEC dynamics without owning a churn simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineSpec {
    /// Round deadline `T` in simulated seconds.
    pub deadline_secs: f64,
    /// Nominal completion time of an unhindered winner.
    pub base_secs: f64,
    /// Probability a winner is slowed this round.
    pub straggler_rate: f64,
    /// Multiplicative slowdown applied to stragglers (`completion = base · (1 + slowdown)`).
    pub slowdown: f64,
}

impl DeadlineSpec {
    /// A deadline loose enough that only stragglers miss it.
    pub fn lenient() -> Self {
        Self {
            deadline_secs: 10.0,
            base_secs: 5.0,
            straggler_rate: 0.2,
            slowdown: 1.5,
        }
    }

    /// Deterministic uniform draw in `[0, 1)` for `(seed, round, slot)`.
    fn uniform(seed: u64, round: u64, slot: usize) -> f64 {
        let h = derive_seed(derive_seed(seed, round), slot as u64 + 1);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn timings(&self, seed: u64, round: u64, winners: usize) -> Vec<ParticipantTiming> {
        (0..winners)
            .map(|slot| {
                let straggler = Self::uniform(seed, round, slot) < self.straggler_rate;
                let completion_secs = if straggler {
                    self.base_secs * (1.0 + self.slowdown)
                } else {
                    self.base_secs
                };
                ParticipantTiming {
                    slot,
                    completion_secs,
                    straggler,
                    dropped_out: false,
                }
            })
            .collect()
    }
}

/// Everything the service needs to run one tenant: population size, auction, stream
/// geometry, seed, and the job's bid/work closures.
///
/// Cloning a spec is cheap (the closures are shared via `Arc`) and yields a job that
/// replays the exact same history — the determinism suite relies on this to compare solo
/// and interleaved runs of the same spec.
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable name (reported in histories and soak tables).
    pub name: String,
    /// Number of bidder indices streamed per round.
    pub population: usize,
    /// Shard width of the bid stream (peak memory is `O(width · shard + K)`).
    pub shard_size: usize,
    /// Extra ranked candidates the selector keeps beyond `K` (re-auction reserve).
    pub reserve: usize,
    /// The job's auction: scoring rule, `K`, selection rule, pricing rule.
    pub auction: Auction,
    /// Root seed; each round derives its own RNG as `derive_seed(seed, round)`.
    pub seed: u64,
    /// Optional synthetic deadline model applied to each round's winners.
    pub deadline: Option<DeadlineSpec>,
    /// Bound on rounds queued but not yet run (the backpressure knob); `0` means
    /// "service default".
    pub max_pending: usize,
    /// Dimension of the synthetic per-winner model updates aggregated each round; `0`
    /// disables the update/aggregation stage. Updates are a pure function of
    /// `(seed, round, node)`, screened through
    /// [`federated_average_screened`] so corrupted vectors are quarantined, never averaged.
    pub update_dim: usize,
    /// Optional round watchdog: simulated-time budget plus bounded retry with
    /// deterministic backoff accounting. `None` means a failed round is recorded and
    /// never retried (the pre-watchdog behaviour).
    pub watchdog: Option<WatchdogSpec>,
    /// Optional deterministic fault-injection plan (chaos testing); `None` injects
    /// nothing and leaves the round pipeline byte-identical to a plan-free build.
    pub faults: Option<FaultPlan>,
    /// How the per-winner work stage is dispatched. Synthetic winner work is a single
    /// closure call, so anything finer than [`FanOutGranularity::PerWinner`] runs each
    /// winner as a one-unit [`TaskChain`] through the chain scheduler — same work, same
    /// history bit-for-bit (including injected work faults), different dispatch path. The
    /// chaos determinism suite pins that equivalence.
    pub fan_out: FanOutGranularity,
    /// Optional deterministic adversary model (Byzantine participants); `None` — or an
    /// all-honest plan — leaves every bid and update byte-identical to a plan-free build.
    pub adversaries: Option<AdversaryPlan>,
    /// Optional reputation loop: aggregation verdicts accumulate per-node scores that
    /// down-weight or exclude suspect bids in later rounds' selection. `None` disables
    /// the loop entirely (the pre-reputation behaviour).
    pub reputation: Option<ReputationSpec>,
    /// The global-aggregation backend applied to the round's synthetic updates. The
    /// default ([`JobSpec::default_aggregation`]) is the median-norm screen the service
    /// always used, bit-for-bit.
    pub aggregation: Arc<dyn AggregationRule>,
    /// The job's bid stream.
    pub source: Arc<BidSource>,
    /// Optional per-winner work.
    pub work: Option<Arc<WinnerWork>>,
}

impl JobSpec {
    /// The service's historical aggregation backend: the median-norm screen under the
    /// default [`ScreenPolicy`]. Shares its implementation with
    /// [`crate::aggregator::federated_average_screened`], so specs carrying this default
    /// reproduce pre-rule histories exactly.
    pub fn default_aggregation() -> Arc<dyn AggregationRule> {
        Arc::new(MedianNormScreen(ScreenPolicy::default()))
    }

    /// Validates everything the spec can get wrong *at admission* — fault rates,
    /// adversary rates and budgets, reputation bounds, aggregation parameters — so a
    /// malformed plan is a typed [`FlError::InvalidConfig`] at `admit` time, never a
    /// skewed draw threshold discovered rounds later.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FlError> {
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        if let Some(plan) = &self.adversaries {
            plan.validate()?;
        }
        if let Some(spec) = &self.reputation {
            spec.validate()?;
        }
        self.aggregation.validate()
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("population", &self.population)
            .field("shard_size", &self.shard_size)
            .field("winners", &self.auction.winners_per_round())
            .field("seed", &self.seed)
            .field("deadline", &self.deadline)
            .field("max_pending", &self.max_pending)
            .field("update_dim", &self.update_dim)
            .field("watchdog", &self.watchdog)
            .field("faults", &self.faults)
            .field("fan_out", &self.fan_out)
            .field("adversaries", &self.adversaries)
            .field("reputation", &self.reputation)
            .field("aggregation", &self.aggregation.name())
            .finish()
    }
}

/// What one successful round produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSummary {
    /// The job-local round number (1-based).
    pub round: u64,
    /// Bids streamed through the selector.
    pub offered: usize,
    /// Post-deadline surviving winners, in selection order.
    pub winners: Vec<WinnerInfo>,
    /// Total payment promised to the surviving winners.
    pub total_payment: f64,
    /// Winners that missed the deadline (excluded from `winners`).
    pub deadline_misses: usize,
    /// Winners that dropped out mid-round (excluded from `winners`, payment forfeited).
    pub dropouts: usize,
    /// Updates quarantined by aggregation screening (the round degraded to the rest).
    pub quarantined: usize,
    /// Simulated seconds the successful attempt spent (deadline wave time plus injected
    /// stall charges) — what the watchdog budget was checked against.
    pub sim_secs: f64,
    /// Sum of the per-winner work values (0 when the job has no work closure).
    pub work_value: f64,
    /// Peak resident bid bytes of the round's streaming stage.
    pub peak_bid_bytes: usize,
}

/// One round's outcome in a job's history: a summary, or the typed error that failed the
/// round (the job itself survives and may run further rounds) — plus the watchdog's
/// retry/backoff accounting and every fault injected into the round, as typed entries.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// The job-local round number (1-based).
    pub round: u64,
    /// The round's final outcome (of the last attempt).
    pub outcome: Result<RoundSummary, FlError>,
    /// Attempts executed (1 for a clean round; watchdog retries add to this).
    pub attempts: u32,
    /// Total deterministic backoff charged across retries, in simulated seconds.
    pub backoff_secs: f64,
    /// Every fault injected across the round's attempts, in injection order.
    pub faults: Vec<FaultEvent>,
    /// The typed error of each failed-and-retried attempt, in attempt order (the final
    /// attempt's error, if any, is in `outcome` instead).
    pub retry_errors: Vec<FlError>,
}

/// The full per-job history: every round ever run, successful or failed, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobHistory {
    /// The job's name (from its spec).
    pub name: String,
    /// One record per round run.
    pub rounds: Vec<RoundRecord>,
}

impl JobHistory {
    /// Number of successful rounds.
    pub fn completed(&self) -> usize {
        self.rounds.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Number of failed rounds.
    pub fn failed(&self) -> usize {
        self.rounds.len() - self.completed()
    }

    /// FNV-1a fingerprint over the history's *auction-observable* content: round numbers,
    /// offered counts, winner nodes/scores/payments bit-for-bit, deadline misses,
    /// dropouts, quarantine counts, simulated round time, work values, retry/backoff
    /// accounting, injected faults, and failure messages.
    /// [`RoundSummary::peak_bid_bytes`] is deliberately excluded — it is memory
    /// *accounting* and scales with the engine's parallel width, while the fingerprint
    /// pins what must be invariant across widths and neighbours.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        for record in &self.rounds {
            eat(&record.round.to_le_bytes());
            eat(&u64::from(record.attempts).to_le_bytes());
            eat(&record.backoff_secs.to_bits().to_le_bytes());
            for fault in &record.faults {
                eat(&u64::from(fault.attempt).to_le_bytes());
                eat(&(fault.slot as u64).to_le_bytes());
                eat(&fault_kind_tag(fault.kind).to_le_bytes());
            }
            for error in &record.retry_errors {
                eat(error.to_string().as_bytes());
            }
            match &record.outcome {
                Ok(s) => {
                    eat(&(s.offered as u64).to_le_bytes());
                    eat(&s.total_payment.to_bits().to_le_bytes());
                    eat(&(s.deadline_misses as u64).to_le_bytes());
                    eat(&(s.dropouts as u64).to_le_bytes());
                    eat(&(s.quarantined as u64).to_le_bytes());
                    eat(&s.sim_secs.to_bits().to_le_bytes());
                    eat(&s.work_value.to_bits().to_le_bytes());
                    for w in &s.winners {
                        eat(&w.node.0.to_le_bytes());
                        eat(&w.score.to_bits().to_le_bytes());
                        eat(&w.payment.to_bits().to_le_bytes());
                    }
                }
                Err(e) => eat(e.to_string().as_bytes()),
            }
        }
        h
    }
}

/// Stable fold tag of a [`FaultKind`] for fingerprinting.
fn fault_kind_tag(kind: FaultKind) -> u64 {
    use crate::faults::Corruption;
    match kind {
        FaultKind::FillPanic => 1,
        FaultKind::WorkPanic => 2,
        FaultKind::Stall => 3,
        FaultKind::Dropout => 4,
        FaultKind::CorruptUpdate(Corruption::Nan) => 5,
        FaultKind::CorruptUpdate(Corruption::Inf) => 6,
        FaultKind::CorruptUpdate(Corruption::Scale) => 7,
    }
}

/// The deterministic synthetic model update of one winner: a pure function of
/// `(seed, round, node, dim)` in `[-1, 1)^dim`, the service-path stand-in for a trained
/// parameter delta (corruption faults mutate it *after* this derivation).
fn synthetic_update(seed: u64, round: u64, node: u64, dim: usize) -> Vec<f64> {
    let base = derive_seed(derive_seed(seed, round), node.wrapping_add(1));
    (0..dim)
        .map(|d| {
            let h = derive_seed(base, d as u64 + 1);
            ((h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) * 2.0 - 1.0
        })
        .collect()
}

/// Real wall-clock pause of one injected stall: long enough that the executor genuinely
/// parks a worker mid-wave, short enough that chaos suites stay sub-second. Simulated
/// time (what the watchdog meters) is charged separately via [`FaultPlan::stall_secs`].
const STALL_SLEEP: Duration = Duration::from_micros(200);

/// A live job inside the service: spec + round counter + pending-round queue depth +
/// accumulated history. All of it is private to the job's own mutex; a round holds no
/// other lock while it runs.
#[derive(Debug)]
pub struct FlJob {
    spec: JobSpec,
    round: u64,
    pending: usize,
    history: JobHistory,
    /// Per-node reputation accumulated from aggregation verdicts; `Some` iff the spec
    /// enables the loop. Part of the job's resumable state (checkpointed).
    ledger: Option<ReputationLedger>,
}

impl FlJob {
    pub(super) fn new(spec: JobSpec) -> Self {
        let history = JobHistory {
            name: spec.name.clone(),
            rounds: Vec::new(),
        };
        let ledger = spec.reputation.map(ReputationLedger::new);
        Self {
            spec,
            round: 0,
            pending: 0,
            history,
            ledger,
        }
    }

    pub(super) fn spec(&self) -> &JobSpec {
        &self.spec
    }

    pub(super) fn pending(&self) -> usize {
        self.pending
    }

    pub(super) fn push_pending(&mut self) {
        self.pending += 1;
    }

    pub(super) fn pop_pending(&mut self) -> bool {
        if self.pending == 0 {
            return false;
        }
        self.pending -= 1;
        true
    }

    pub(super) fn history(&self) -> &JobHistory {
        &self.history
    }

    pub(super) fn into_history(self) -> JobHistory {
        self.history
    }

    /// Snapshot of the job's resumable state. The round counter *is* the job's entire RNG
    /// position — every round re-derives its randomness from `(seed, round)` — so counter
    /// plus history plus the reputation ledger is a complete checkpoint.
    pub(super) fn checkpoint(&self) -> super::JobCheckpoint {
        super::JobCheckpoint {
            round: self.round,
            history: self.history.clone(),
            reputation: self
                .ledger
                .as_ref()
                .map(|l| l.entries().collect())
                .unwrap_or_default(),
        }
    }

    /// Rebuilds a job mid-run from a checkpoint and its (re-supplied) spec. The next round
    /// run is `checkpoint.round + 1`, with randomness identical to what the uninterrupted
    /// job would have drawn — including the reputation state selection depends on.
    pub(super) fn from_checkpoint(spec: JobSpec, checkpoint: super::JobCheckpoint) -> Self {
        let ledger = spec
            .reputation
            .map(|r| ReputationLedger::from_entries(r, checkpoint.reputation));
        Self {
            spec,
            round: checkpoint.round,
            pending: 0,
            history: checkpoint.history,
            ledger,
        }
    }

    /// Runs one round — retrying under the spec's watchdog policy — and records its
    /// outcome, retry/backoff accounting, and every injected fault in the history. The
    /// returned result mirrors the recorded outcome; an `Err` means *this round* failed
    /// (its retry budget included) — the job stays usable.
    pub(super) fn run_round(&mut self, engine: &RoundEngine) -> Result<RoundSummary, FlError> {
        self.round += 1;
        let round = self.round;
        let max_retries = self.spec.watchdog.as_ref().map_or(0, |w| w.max_retries);
        let mut faults = Vec::new();
        let mut retry_errors = Vec::new();
        let mut backoff_secs = 0.0;
        let mut attempt = 0u32;
        // Aggregation verdicts of the *final* attempt, applied to the ledger after the
        // retry loop settles: within one round every attempt sees the same reputation
        // snapshot, so retries replay the identical auction.
        let mut verdicts: Vec<(u64, bool)> = Vec::new();
        let outcome = loop {
            match self.round_body(round, attempt, engine, &mut faults, &mut verdicts) {
                Ok(summary) => break Ok(summary),
                Err(error) => {
                    if attempt >= max_retries || !WatchdogSpec::retryable(&error) {
                        break Err(error);
                    }
                    // max_retries > 0 implies a watchdog; charge its deterministic
                    // backoff (accounting only — no real sleeping) and go again.
                    let watchdog = self
                        .spec
                        .watchdog
                        .as_ref()
                        .expect("retries need a watchdog");
                    backoff_secs += watchdog.backoff_secs(attempt);
                    retry_errors.push(error);
                    attempt += 1;
                }
            }
        };
        if let Some(ledger) = &mut self.ledger {
            for &(node, accepted) in &verdicts {
                ledger.record(node, accepted);
            }
        }
        self.history.rounds.push(RoundRecord {
            round,
            outcome: outcome.clone(),
            attempts: attempt + 1,
            backoff_secs,
            faults,
            retry_errors,
        });
        outcome
    }

    /// One attempt of one round. Fault draws are keyed by `(plan, round, attempt, slot)`
    /// while the auction RNG is keyed by `(seed, round)` alone — so a clean retry of a
    /// faulted attempt replays the *identical* auction and is bit-identical to a round
    /// that never faulted.
    fn round_body(
        &self,
        round: u64,
        attempt: u32,
        engine: &RoundEngine,
        faults: &mut Vec<FaultEvent>,
        verdicts: &mut Vec<(u64, bool)>,
    ) -> Result<RoundSummary, FlError> {
        verdicts.clear();
        let spec = &self.spec;
        let clock = spec
            .faults
            .as_ref()
            .map(|plan| (plan, FaultClock::new(plan, spec.seed)));
        // Adversary draws are attempt-independent (see `crate::adversary`): a retried
        // round replays the same auction against the same lies.
        let adversary = spec
            .adversaries
            .as_ref()
            .filter(|plan| plan.is_active())
            .map(|plan| (plan, AdversaryClock::new(plan, spec.seed)));
        // The round's frozen reputation view, shared with the fill closures on worker
        // threads; the ledger itself only moves between rounds.
        let reputation = self.ledger.as_ref().map(|l| Arc::new(l.snapshot()));
        let excluded_bids = Arc::new(AtomicUsize::new(0));

        // Each round's randomness derives from (seed, round) alone, so the stream of
        // histories is independent of when — or beside whom — the round executes.
        let mut rng = seeded_rng(derive_seed(spec.seed, round));
        let source = Arc::clone(&spec.source);
        // Record the shards that will panic before dispatch (draws are deterministic, so
        // "will fire" and "fired" coincide).
        let mut fill_panic_shards: Vec<usize> = Vec::new();
        if let Some((plan, clock)) = &clock {
            if plan.fill_panic_rate > 0.0 {
                for start in (0..spec.population).step_by(spec.shard_size.max(1)) {
                    if clock.fill_panics(plan, round, attempt, start) {
                        fill_panic_shards.push(start);
                        faults.push(FaultEvent {
                            attempt,
                            slot: start,
                            kind: FaultKind::FillPanic,
                        });
                    }
                }
            }
        }
        let fill: Arc<ShardFill> = match &clock {
            Some((plan, clock)) if plan.fill_panic_rate > 0.0 => {
                let plan = (*plan).clone();
                let clock = *clock;
                Arc::new(move |range: Range<usize>, store: &mut BidStore| {
                    assert!(
                        !clock.fill_panics(&plan, round, attempt, range.start),
                        "injected fault: bid shard at {} panicked",
                        range.start
                    );
                    source(range, round, store)
                })
            }
            _ => Arc::new(move |range: Range<usize>, store: &mut BidStore| {
                source(range, round, store)
            }),
        };
        // Post-fill bid revision: adversarial distortion first (the lie the node tells),
        // then the reputation filter (what the auctioneer believes). Inactive plans and
        // full scores leave every bid untouched, so honest histories stay bit-identical.
        let fill: Arc<ShardFill> = if adversary.is_some() || reputation.is_some() {
            let inner = fill;
            let plan = adversary.as_ref().map(|(plan, _)| (*plan).clone());
            let adversary_clock = adversary.as_ref().map(|(_, clock)| *clock);
            let filter = reputation.clone();
            let excluded_bids = Arc::clone(&excluded_bids);
            Arc::new(move |range: Range<usize>, store: &mut BidStore| {
                let start = store.len();
                inner(range, store)?;
                let dropped = store.revise_from(start, |node, qualities, ask| {
                    if let (Some(plan), Some(clock)) = (&plan, &adversary_clock) {
                        if let Some(distortion) = clock.bid_distortion(plan, round, node.0) {
                            distortion.apply(plan, qualities, ask);
                        }
                    }
                    match &filter {
                        Some(filter) => filter.revise(node.0, qualities, ask),
                        None => true,
                    }
                });
                excluded_bids.fetch_add(dropped, Ordering::Relaxed);
                Ok(())
            })
        } else {
            fill
        };
        let streamed = match auction_select_streamed(
            &spec.auction,
            spec.population,
            spec.shard_size,
            spec.reserve,
            engine,
            fill,
            &mut rng,
            |award| WinnerInfo {
                client: award.node.0 as usize,
                node: award.node,
                data_size: 1,
                categories: 1,
                score: award.score,
                payment: award.payment,
            },
        ) {
            Ok(streamed) => streamed,
            // The executor attributes a caught panic to its wave-relative task slot,
            // which depends on the pool width. An *injected* fill panic must leave a
            // width-invariant record, so canonicalise it to the first panicking shard's
            // start index (the panic genuinely fired on a worker either way).
            Err(FlError::JobPanic(_)) if !fill_panic_shards.is_empty() => {
                let shard = fill_panic_shards[0];
                return Err(FlError::JobPanic(crate::executor::JobPanic {
                    slot: shard,
                    message: format!("injected fault: bid shard at {shard} panicked"),
                }));
            }
            // An empty bid book caused by reputation exclusion is its own typed,
            // retryable failure: the fleet degraded, the model was not poisoned.
            Err(FlError::Auction(AuctionError::NoBids))
                if excluded_bids.load(Ordering::Relaxed) > 0 =>
            {
                return Err(FlError::AllBiddersExcluded {
                    excluded: excluded_bids.load(Ordering::Relaxed),
                });
            }
            Err(e) => return Err(e),
        };

        let mut winners = streamed.winners;
        let mut deadline_misses = 0;
        let mut sim_secs = 0.0f64;
        if let Some(deadline) = &spec.deadline {
            let timings = deadline.timings(spec.seed, round, winners.len());
            let verdict = apply_deadline(&timings, deadline.deadline_secs);
            deadline_misses = winners.len() - verdict.survivors.len();
            sim_secs = verdict.wave_secs;
            let mut keep = verdict.survivors.into_iter().peekable();
            let mut slot = 0usize;
            winners.retain(|_| {
                let keep_this = keep.peek() == Some(&slot);
                if keep_this {
                    keep.next();
                }
                slot += 1;
                keep_this
            });
        }

        // Mid-round dropouts: the survivor set thins again, payment forfeited.
        let mut dropouts = 0;
        if let Some((plan, clock)) = &clock {
            let mut slot = 0usize;
            winners.retain(|_| {
                let dropped = clock.drops_out(plan, round, attempt, slot);
                if dropped {
                    faults.push(FaultEvent {
                        attempt,
                        slot,
                        kind: FaultKind::Dropout,
                    });
                    dropouts += 1;
                }
                slot += 1;
                !dropped
            });
        }

        // Per-winner work fan-out, with injected panics and stalls. Stall charges land on
        // the round's simulated clock (the watchdog's meter); the stalled task also parks
        // its worker briefly for real so the executor sees genuine dead time.
        let work_value = match &spec.work {
            Some(work) => {
                let tasks: Vec<Task<f64>> = winners
                    .iter()
                    .enumerate()
                    .map(|(slot, winner)| {
                        let injected = clock.as_ref().and_then(|(plan, clock)| {
                            let fault = clock.work_fault(plan, round, attempt, slot)?;
                            faults.push(FaultEvent {
                                attempt,
                                slot,
                                kind: fault,
                            });
                            if fault == FaultKind::Stall {
                                sim_secs += plan.stall_secs;
                            }
                            Some(fault)
                        });
                        let work = Arc::clone(work);
                        let winner = winner.clone();
                        Box::new(move || {
                            match injected {
                                Some(FaultKind::WorkPanic) => {
                                    panic!("injected fault: work task in slot {slot} panicked")
                                }
                                Some(FaultKind::Stall) => std::thread::sleep(STALL_SLEEP),
                                _ => {}
                            }
                            work(round, slot, &winner)
                        }) as Task<f64>
                    })
                    .collect();
                match spec.fan_out {
                    FanOutGranularity::PerWinner => engine.try_run_tasks(tasks)?.into_iter().sum(),
                    // Winner work is a single closure call, so finer granularities
                    // degrade to one-unit chains: the same tasks, dispatched through the
                    // chain scheduler. Fault attribution (chain index = winner slot) and
                    // the resulting history are bit-identical to the per-winner path.
                    FanOutGranularity::PerEpoch | FanOutGranularity::PerBatch => {
                        let chains: Vec<TaskChain<f64>> = tasks
                            .into_iter()
                            .map(|task| {
                                let mut task = Some(task);
                                TaskChain::new(1, 1, move || {
                                    Some(task.take().expect("one-unit chain runs once")())
                                })
                            })
                            .collect();
                        crate::chain::run_chains(engine, chains)?.into_iter().sum()
                    }
                }
            }
            None => 0.0,
        };

        // The watchdog meters simulated time, so its verdict is identical on every
        // machine and at every pool width. Checked before aggregation: a wedged round
        // should not publish a model.
        if let Some(watchdog) = &spec.watchdog {
            if sim_secs > watchdog.round_budget_secs {
                return Err(FlError::RoundTimeout {
                    round,
                    sim_secs,
                    budget_secs: watchdog.round_budget_secs,
                });
            }
        }

        // Synthetic update stage: derive each survivor's update, poison per the adversary
        // plan, corrupt per the fault plan, then hand the batch to the spec's aggregation
        // rule. Quarantine degrades the round — and feeds the reputation verdicts — while
        // a fully quarantined batch fails it (retryably).
        let mut quarantined = 0;
        if spec.update_dim > 0 && !winners.is_empty() {
            let updates: Vec<(Vec<f64>, f64)> = winners
                .iter()
                .enumerate()
                .map(|(slot, winner)| {
                    let mut params =
                        synthetic_update(spec.seed, round, winner.node.0, spec.update_dim);
                    if let Some((plan, aclock)) = &adversary {
                        if let Some(poison) = aclock.update_poison(plan, round, winner.node.0) {
                            poison.apply(plan, &mut params);
                        }
                    }
                    if let Some((plan, clock)) = &clock {
                        if let Some(corruption) = clock.corruption(plan, round, attempt, slot) {
                            corruption.apply(&mut params, plan.corrupt_scale);
                            faults.push(FaultEvent {
                                attempt,
                                slot,
                                kind: FaultKind::CorruptUpdate(corruption),
                            });
                        }
                    }
                    (params, winner.data_size as f64)
                })
                .collect();
            let borrowed: Vec<(&[f64], f64)> = updates
                .iter()
                .map(|(params, weight)| (params.as_slice(), *weight))
                .collect();
            let mut global = Vec::new();
            let mut scratch = AggregationScratch::new();
            let screened =
                match spec
                    .aggregation
                    .aggregate_with(&borrowed, &mut global, &mut scratch)
                {
                    Ok(screened) => screened,
                    Err(e @ FlError::AllUpdatesQuarantined { .. }) => {
                        // The round fails, but the ledger still learns: every winner of the
                        // fully quarantined batch takes the penalty.
                        verdicts.extend(winners.iter().map(|w| (w.node.0, false)));
                        return Err(e);
                    }
                    Err(e) => return Err(e),
                };
            quarantined = screened.quarantined.len();
            let mut next_bad = screened.quarantined.iter().peekable();
            for (slot, winner) in winners.iter().enumerate() {
                let bad = next_bad.peek().is_some_and(|q| q.index == slot);
                if bad {
                    next_bad.next();
                }
                verdicts.push((winner.node.0, !bad));
            }
            debug_assert!(global.iter().all(|p| p.is_finite()));
        }

        let total_payment = winners.iter().map(|w| w.payment).sum();
        Ok(RoundSummary {
            round,
            offered: streamed.offered,
            winners,
            total_payment,
            deadline_misses,
            dropouts,
            quarantined,
            sim_secs,
            work_value,
            peak_bid_bytes: streamed.peak_bid_bytes,
        })
    }
}
