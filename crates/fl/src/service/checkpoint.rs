//! Job checkpoint/restore: a serialisable snapshot of a live job's resumable state.
//!
//! A checkpoint is small by design: because every round re-derives its randomness from
//! `(seed, round)` alone, the round counter **is** the job's entire RNG position — there
//! is no generator state to capture. Counter plus accumulated history is therefore a
//! complete checkpoint: a job restored mid-run and driven to completion produces a history
//! bit-identical to the uninterrupted run (pinned by the determinism suite).
//!
//! The byte format is a hand-rolled little-endian codec (the workspace takes no serde
//! dependency): a `FMCK` magic + version header, then length-prefixed fields. Every decode
//! failure — truncation, a bad tag, trailing bytes — is a typed
//! [`FlError::CheckpointCorrupt`], never a panic.

use crate::error::FlError;
use crate::faults::{Corruption, FaultEvent, FaultKind};
use crate::metrics::WinnerInfo;
use crate::service::{JobHistory, RoundRecord, RoundSummary};
use fmore_auction::{AuctionError, NodeId};
use fmore_numerics::NumericsError;

/// Snapshot of one job: its round counter and full history. Produce one with
/// [`AuctionService::checkpoint`](crate::service::AuctionService::checkpoint), persist it
/// with [`JobCheckpoint::to_bytes`], and resume it on any service — before or after a
/// restart — with [`AuctionService::restore`](crate::service::AuctionService::restore)
/// plus the original [`JobSpec`](crate::service::JobSpec) (specs hold closures and are
/// deliberately *not* serialised; the caller re-supplies them).
#[derive(Debug, Clone, PartialEq)]
pub struct JobCheckpoint {
    /// Rounds already run (the next round will be `round + 1`).
    pub round: u64,
    /// Everything the job recorded up to the checkpoint.
    pub history: JobHistory,
    /// The reputation ledger's tracked `(node, score)` entries, in node order — selection
    /// depends on them, so a resumed job must see the same scores the uninterrupted run
    /// would. Empty when the job runs without a reputation loop.
    pub reputation: Vec<(u64, f64)>,
}

const MAGIC: &[u8; 4] = b"FMCK";
const VERSION: u16 = 2;

impl JobCheckpoint {
    /// The checkpointed job's name (restore validates it against the supplied spec).
    pub fn name(&self) -> &str {
        &self.history.name
    }

    /// Serialises the checkpoint to a self-describing byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.history.rounds.len() * 128);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut out, self.round);
        put_str(&mut out, &self.history.name);
        put_u64(&mut out, self.history.rounds.len() as u64);
        for record in &self.history.rounds {
            put_u64(&mut out, record.round);
            put_u32(&mut out, record.attempts);
            put_f64(&mut out, record.backoff_secs);
            put_u64(&mut out, record.faults.len() as u64);
            for fault in &record.faults {
                put_u32(&mut out, fault.attempt);
                put_u64(&mut out, fault.slot as u64);
                out.push(fault_kind_tag(fault.kind));
            }
            put_u64(&mut out, record.retry_errors.len() as u64);
            for error in &record.retry_errors {
                put_fl_error(&mut out, error);
            }
            match &record.outcome {
                Ok(summary) => {
                    out.push(0);
                    put_summary(&mut out, summary);
                }
                Err(error) => {
                    out.push(1);
                    put_fl_error(&mut out, error);
                }
            }
        }
        put_u64(&mut out, self.reputation.len() as u64);
        for &(node, score) in &self.reputation {
            put_u64(&mut out, node);
            put_f64(&mut out, score);
        }
        out
    }

    /// Deserialises a checkpoint produced by [`JobCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`FlError::CheckpointCorrupt`] on any malformed input: wrong magic/version,
    /// truncation, an unknown tag, invalid UTF-8, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FlError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let round = r.u64()?;
        let name = r.string()?;
        let n_rounds = r.len()?;
        let mut rounds = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            let record_round = r.u64()?;
            let attempts = r.u32()?;
            let backoff_secs = r.f64()?;
            let n_faults = r.len()?;
            let mut faults = Vec::with_capacity(n_faults);
            for _ in 0..n_faults {
                let attempt = r.u32()?;
                let slot = r.u64()? as usize;
                let kind = fault_kind_from_tag(r.u8()?)?;
                faults.push(FaultEvent {
                    attempt,
                    slot,
                    kind,
                });
            }
            let n_retry = r.len()?;
            let mut retry_errors = Vec::with_capacity(n_retry);
            for _ in 0..n_retry {
                retry_errors.push(take_fl_error(&mut r)?);
            }
            let outcome = match r.u8()? {
                0 => Ok(take_summary(&mut r)?),
                1 => Err(take_fl_error(&mut r)?),
                tag => return Err(corrupt(&format!("bad outcome tag {tag}"))),
            };
            rounds.push(RoundRecord {
                round: record_round,
                outcome,
                attempts,
                backoff_secs,
                faults,
                retry_errors,
            });
        }
        let n_reputation = r.len()?;
        let mut reputation = Vec::with_capacity(n_reputation);
        for _ in 0..n_reputation {
            let node = r.u64()?;
            let score = r.f64()?;
            reputation.push((node, score));
        }
        r.finish()?;
        Ok(Self {
            round,
            history: JobHistory { name, rounds },
            reputation,
        })
    }
}

fn corrupt(msg: &str) -> FlError {
    FlError::CheckpointCorrupt(msg.to_string())
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_summary(out: &mut Vec<u8>, s: &RoundSummary) {
    put_u64(out, s.round);
    put_u64(out, s.offered as u64);
    put_u64(out, s.winners.len() as u64);
    for w in &s.winners {
        put_u64(out, w.client as u64);
        put_u64(out, w.node.0);
        put_u64(out, w.data_size as u64);
        put_u64(out, w.categories as u64);
        put_f64(out, w.score);
        put_f64(out, w.payment);
    }
    put_f64(out, s.total_payment);
    put_u64(out, s.deadline_misses as u64);
    put_u64(out, s.dropouts as u64);
    put_u64(out, s.quarantined as u64);
    put_f64(out, s.sim_secs);
    put_f64(out, s.work_value);
    put_u64(out, s.peak_bid_bytes as u64);
}

fn take_summary(r: &mut Reader<'_>) -> Result<RoundSummary, FlError> {
    let round = r.u64()?;
    let offered = r.u64()? as usize;
    let n_winners = r.len()?;
    let mut winners = Vec::with_capacity(n_winners);
    for _ in 0..n_winners {
        winners.push(WinnerInfo {
            client: r.u64()? as usize,
            node: NodeId(r.u64()?),
            data_size: r.u64()? as usize,
            categories: r.u64()? as usize,
            score: r.f64()?,
            payment: r.f64()?,
        });
    }
    Ok(RoundSummary {
        round,
        offered,
        winners,
        total_payment: r.f64()?,
        deadline_misses: r.u64()? as usize,
        dropouts: r.u64()? as usize,
        quarantined: r.u64()? as usize,
        sim_secs: r.f64()?,
        work_value: r.f64()?,
        peak_bid_bytes: r.u64()? as usize,
    })
}

fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::FillPanic => 1,
        FaultKind::WorkPanic => 2,
        FaultKind::Stall => 3,
        FaultKind::Dropout => 4,
        FaultKind::CorruptUpdate(Corruption::Nan) => 5,
        FaultKind::CorruptUpdate(Corruption::Inf) => 6,
        FaultKind::CorruptUpdate(Corruption::Scale) => 7,
    }
}

fn fault_kind_from_tag(tag: u8) -> Result<FaultKind, FlError> {
    Ok(match tag {
        1 => FaultKind::FillPanic,
        2 => FaultKind::WorkPanic,
        3 => FaultKind::Stall,
        4 => FaultKind::Dropout,
        5 => FaultKind::CorruptUpdate(Corruption::Nan),
        6 => FaultKind::CorruptUpdate(Corruption::Inf),
        7 => FaultKind::CorruptUpdate(Corruption::Scale),
        other => return Err(corrupt(&format!("bad fault kind tag {other}"))),
    })
}

fn put_fl_error(out: &mut Vec<u8>, e: &FlError) {
    match e {
        FlError::InvalidConfig(msg) => {
            out.push(0);
            put_str(out, msg);
        }
        FlError::UnknownClient(idx) => {
            out.push(1);
            put_u64(out, *idx as u64);
        }
        FlError::Auction(inner) => {
            out.push(2);
            put_auction_error(out, inner);
        }
        FlError::JobPanic(p) => {
            out.push(3);
            put_u64(out, p.slot as u64);
            put_str(out, &p.message);
        }
        FlError::UnknownJob(id) => {
            out.push(4);
            put_u64(out, *id);
        }
        FlError::AdmissionFull { capacity } => {
            out.push(5);
            put_u64(out, *capacity as u64);
        }
        FlError::Backpressure { job, pending } => {
            out.push(6);
            put_u64(out, *job);
            put_u64(out, *pending as u64);
        }
        FlError::RoundTimeout {
            round,
            sim_secs,
            budget_secs,
        } => {
            out.push(7);
            put_u64(out, *round);
            put_f64(out, *sim_secs);
            put_f64(out, *budget_secs);
        }
        FlError::NonFiniteUpdate { index } => {
            out.push(8);
            put_u64(out, *index as u64);
        }
        FlError::AllUpdatesQuarantined { quarantined } => {
            out.push(9);
            put_u64(out, *quarantined as u64);
        }
        FlError::CheckpointCorrupt(msg) => {
            out.push(10);
            put_str(out, msg);
        }
        FlError::AllBiddersExcluded { excluded } => {
            out.push(11);
            put_u64(out, *excluded as u64);
        }
    }
}

fn take_fl_error(r: &mut Reader<'_>) -> Result<FlError, FlError> {
    Ok(match r.u8()? {
        0 => FlError::InvalidConfig(r.string()?),
        1 => FlError::UnknownClient(r.u64()? as usize),
        2 => FlError::Auction(take_auction_error(r)?),
        3 => FlError::JobPanic(crate::executor::JobPanic {
            slot: r.u64()? as usize,
            message: r.string()?,
        }),
        4 => FlError::UnknownJob(r.u64()?),
        5 => FlError::AdmissionFull {
            capacity: r.u64()? as usize,
        },
        6 => FlError::Backpressure {
            job: r.u64()?,
            pending: r.u64()? as usize,
        },
        7 => FlError::RoundTimeout {
            round: r.u64()?,
            sim_secs: r.f64()?,
            budget_secs: r.f64()?,
        },
        8 => FlError::NonFiniteUpdate {
            index: r.u64()? as usize,
        },
        9 => FlError::AllUpdatesQuarantined {
            quarantined: r.u64()? as usize,
        },
        10 => FlError::CheckpointCorrupt(r.string()?),
        11 => FlError::AllBiddersExcluded {
            excluded: r.u64()? as usize,
        },
        tag => return Err(corrupt(&format!("bad error tag {tag}"))),
    })
}

fn put_auction_error(out: &mut Vec<u8>, e: &AuctionError) {
    match e {
        AuctionError::DimensionMismatch { expected, actual } => {
            out.push(0);
            put_u64(out, *expected as u64);
            put_u64(out, *actual as u64);
        }
        AuctionError::InvalidParameter(msg) => {
            out.push(1);
            put_str(out, msg);
        }
        AuctionError::ThetaOutOfSupport { theta, lo, hi } => {
            out.push(2);
            put_f64(out, *theta);
            put_f64(out, *lo);
            put_f64(out, *hi);
        }
        AuctionError::InvalidGame { n, k } => {
            out.push(3);
            put_u64(out, *n as u64);
            put_u64(out, *k as u64);
        }
        AuctionError::NoBids => out.push(4),
        AuctionError::Numerics(inner) => {
            out.push(5);
            put_numerics_error(out, inner);
        }
    }
}

fn take_auction_error(r: &mut Reader<'_>) -> Result<AuctionError, FlError> {
    Ok(match r.u8()? {
        0 => AuctionError::DimensionMismatch {
            expected: r.u64()? as usize,
            actual: r.u64()? as usize,
        },
        1 => AuctionError::InvalidParameter(r.string()?),
        2 => AuctionError::ThetaOutOfSupport {
            theta: r.f64()?,
            lo: r.f64()?,
            hi: r.f64()?,
        },
        3 => AuctionError::InvalidGame {
            n: r.u64()? as usize,
            k: r.u64()? as usize,
        },
        4 => AuctionError::NoBids,
        5 => AuctionError::Numerics(take_numerics_error(r)?),
        tag => return Err(corrupt(&format!("bad auction error tag {tag}"))),
    })
}

fn put_numerics_error(out: &mut Vec<u8>, e: &NumericsError) {
    match e {
        NumericsError::InvalidInterval { lo, hi } => {
            out.push(0);
            put_f64(out, *lo);
            put_f64(out, *hi);
        }
        NumericsError::EmptyInput(what) => {
            out.push(1);
            put_str(out, what);
        }
        NumericsError::InvalidProbability(p) => {
            out.push(2);
            put_f64(out, *p);
        }
        NumericsError::InvalidParameter { name, value } => {
            out.push(3);
            put_str(out, name);
            put_f64(out, *value);
        }
    }
}

fn take_numerics_error(r: &mut Reader<'_>) -> Result<NumericsError, FlError> {
    // `NumericsError` carries `&'static str` names. Decoding leaks the tiny decoded
    // string to regain `'static` — checkpoints are restored a handful of times per
    // process, and exact round-tripping (history equality, fingerprint stability)
    // matters more than the few bytes.
    let leak = |s: String| -> &'static str { Box::leak(s.into_boxed_str()) };
    Ok(match r.u8()? {
        0 => NumericsError::InvalidInterval {
            lo: r.f64()?,
            hi: r.f64()?,
        },
        1 => NumericsError::EmptyInput(leak(r.string()?)),
        2 => NumericsError::InvalidProbability(r.f64()?),
        3 => NumericsError::InvalidParameter {
            name: leak(r.string()?),
            value: r.f64()?,
        },
        tag => return Err(corrupt(&format!("bad numerics error tag {tag}"))),
    })
}

/// Bounds-checked cursor over a checkpoint buffer; every overrun is a typed error.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FlError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt("truncated checkpoint"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FlError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FlError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, FlError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FlError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64(&mut self) -> Result<f64, FlError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A collection length: bounded by the bytes actually remaining, so a corrupt length
    /// word cannot trigger an absurd pre-allocation.
    fn len(&mut self) -> Result<usize, FlError> {
        let n = self.u64()?;
        if n > self.bytes.len() as u64 {
            return Err(corrupt(&format!("implausible collection length {n}")));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, FlError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 string"))
    }

    fn finish(&self) -> Result<(), FlError> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(&format!(
                "{} trailing bytes after checkpoint",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_numerics::NumericsError;

    fn sample_summary() -> RoundSummary {
        RoundSummary {
            round: 3,
            offered: 256,
            winners: vec![WinnerInfo {
                client: 17,
                node: NodeId(17),
                data_size: 1,
                categories: 1,
                score: 1.25,
                payment: 0.875,
            }],
            total_payment: 0.875,
            deadline_misses: 2,
            dropouts: 1,
            quarantined: 1,
            sim_secs: 6.5,
            work_value: 4.0,
            peak_bid_bytes: 4096,
        }
    }

    fn every_error() -> Vec<FlError> {
        vec![
            FlError::InvalidConfig("K > N".into()),
            FlError::UnknownClient(4),
            FlError::Auction(AuctionError::DimensionMismatch {
                expected: 2,
                actual: 3,
            }),
            FlError::Auction(AuctionError::InvalidParameter("w".into())),
            FlError::Auction(AuctionError::ThetaOutOfSupport {
                theta: 9.0,
                lo: 0.1,
                hi: 1.0,
            }),
            FlError::Auction(AuctionError::InvalidGame { n: 4, k: 9 }),
            FlError::Auction(AuctionError::NoBids),
            FlError::Auction(AuctionError::Numerics(NumericsError::InvalidInterval {
                lo: 2.0,
                hi: 1.0,
            })),
            FlError::Auction(AuctionError::Numerics(NumericsError::EmptyInput("grid"))),
            FlError::Auction(AuctionError::Numerics(NumericsError::InvalidProbability(
                1.5,
            ))),
            FlError::Auction(AuctionError::Numerics(NumericsError::InvalidParameter {
                name: "sigma",
                value: -1.0,
            })),
            FlError::JobPanic(crate::executor::JobPanic {
                slot: 3,
                message: "boom".into(),
            }),
            FlError::UnknownJob(8),
            FlError::AdmissionFull { capacity: 4 },
            FlError::Backpressure { job: 2, pending: 8 },
            FlError::RoundTimeout {
                round: 5,
                sim_secs: 35.0,
                budget_secs: 20.0,
            },
            FlError::NonFiniteUpdate { index: 2 },
            FlError::AllUpdatesQuarantined { quarantined: 6 },
            FlError::CheckpointCorrupt("nested".into()),
            FlError::AllBiddersExcluded { excluded: 12 },
        ]
    }

    fn sample_checkpoint() -> JobCheckpoint {
        let mut rounds = vec![RoundRecord {
            round: 1,
            outcome: Ok(sample_summary()),
            attempts: 2,
            backoff_secs: 1.5,
            faults: vec![
                FaultEvent {
                    attempt: 0,
                    slot: 4,
                    kind: FaultKind::Stall,
                },
                FaultEvent {
                    attempt: 0,
                    slot: 0,
                    kind: FaultKind::CorruptUpdate(Corruption::Scale),
                },
            ],
            retry_errors: vec![FlError::RoundTimeout {
                round: 1,
                sim_secs: 40.0,
                budget_secs: 20.0,
            }],
        }];
        // One failed round per error variant, so the codec round-trips the whole family.
        for (i, error) in every_error().into_iter().enumerate() {
            rounds.push(RoundRecord {
                round: 2 + i as u64,
                outcome: Err(error),
                attempts: 1,
                backoff_secs: 0.0,
                faults: Vec::new(),
                retry_errors: Vec::new(),
            });
        }
        let round = rounds.len() as u64;
        JobCheckpoint {
            round,
            history: JobHistory {
                name: "cp-job".into(),
                rounds,
            },
            reputation: vec![(3, 0.75), (17, 0.0), (901, 0.25)],
        }
    }

    #[test]
    fn checkpoint_round_trips_every_variant_exactly() {
        let cp = sample_checkpoint();
        let bytes = cp.to_bytes();
        let back = JobCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.name(), "cp-job");
        assert_eq!(
            back.history.fingerprint(),
            cp.history.fingerprint(),
            "serialisation preserves the history fingerprint"
        );
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors_never_panics() {
        let bytes = sample_checkpoint().to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            JobCheckpoint::from_bytes(&bad),
            Err(FlError::CheckpointCorrupt(_))
        ));
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            JobCheckpoint::from_bytes(&bad),
            Err(FlError::CheckpointCorrupt(_))
        ));
        // Truncation at every prefix length must fail typed, not panic.
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    JobCheckpoint::from_bytes(&bytes[..cut]),
                    Err(FlError::CheckpointCorrupt(_))
                ),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage is rejected too.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            JobCheckpoint::from_bytes(&bad),
            Err(FlError::CheckpointCorrupt(_))
        ));
        // An implausible collection length fails before allocating.
        let mut bad = bytes;
        let name_len_at = 4 + 2 + 8;
        bad[name_len_at..name_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            JobCheckpoint::from_bytes(&bad),
            Err(FlError::CheckpointCorrupt(_))
        ));
    }

    #[test]
    fn empty_history_checkpoints_round_trip() {
        let cp = JobCheckpoint {
            round: 0,
            history: JobHistory {
                name: "fresh".into(),
                rounds: Vec::new(),
            },
            reputation: Vec::new(),
        };
        assert_eq!(JobCheckpoint::from_bytes(&cp.to_bytes()).unwrap(), cp);
    }
}
