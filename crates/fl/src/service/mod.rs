//! Always-on multi-tenant auction service.
//!
//! Every experiment in the workspace so far has been a batch run that owns the process.
//! [`AuctionService`] is the long-running shape FMore's §I/§VI pitch implies: one shared
//! work-stealing executor multiplexing many concurrent FL jobs, each with its own
//! population stream, seed, scheme, `K`, and deadline config.
//!
//! # Contract
//!
//! * **Admission** — [`AuctionService::admit`] refuses (with
//!   [`FlError::AdmissionFull`]) once `max_jobs` tenants are live; a slot frees when a job
//!   is [closed](AuctionService::close).
//! * **Backpressure** — rounds are *requested* ([`AuctionService::request_round`]) into a
//!   bounded per-job queue and *drained* ([`AuctionService::run_pending`]) by whatever
//!   thread the caller dedicates to the job. A full queue returns
//!   [`FlError::Backpressure`] instead of queueing unboundedly — the service never spawns;
//!   all parallelism comes from bounded fan-outs on the shared [`WorkerPool`].
//! * **Isolation** — a round locks only its own job. Bid ingestion reuses the streamed
//!   selection path (`O(width · shard + K)` peak memory per job, never `O(N)`), and every
//!   fan-out goes through the checked executor path, so a panicking task in job A surfaces
//!   as [`FlError::JobPanic`] in *A's* round record while job B's wave — and the process —
//!   complete untouched.
//! * **Determinism** — a job's history is a pure function of its [`JobSpec`]: bit-identical
//!   whether the job runs alone or interleaved with noisy neighbours, at any pool width.
//!
//! [`WorkerPool`]: crate::executor::WorkerPool

mod checkpoint;
mod job;

pub use checkpoint::JobCheckpoint;
pub use job::{
    BidSource, DeadlineSpec, FlJob, JobHistory, JobId, JobSpec, RoundRecord, RoundSummary,
    WinnerWork,
};

use crate::engine::RoundEngine;
use crate::error::FlError;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Capacity knobs of an [`AuctionService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum concurrently admitted jobs.
    pub max_jobs: usize,
    /// Default bound on per-job pending rounds (used when a spec leaves
    /// [`JobSpec::max_pending`] at `0`).
    pub max_pending: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_jobs: 64,
            max_pending: 32,
        }
    }
}

struct ServiceState {
    jobs: BTreeMap<JobId, Arc<Mutex<FlJob>>>,
    next: JobId,
}

/// The long-running multi-tenant auction service. See the [module docs](self) for the
/// admission/backpressure/isolation contract.
///
/// The service itself is `Sync`: callers drive jobs from as many threads as they like.
/// The jobs table is behind one short-lived mutex (held only for map lookups, never
/// across a round); each job has its own mutex, so rounds of different jobs genuinely
/// interleave on the shared pool.
pub struct AuctionService {
    engine: RoundEngine,
    config: ServiceConfig,
    state: Mutex<ServiceState>,
}

/// Locks a mutex, recovering the data if a previous holder panicked — a service must keep
/// serving its healthy tenants after one tenant's round dies mid-lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl AuctionService {
    /// Builds a service on the process-wide shared worker pool.
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_engine(config, RoundEngine::default())
    }

    /// Builds a service running its rounds on a caller-supplied engine (an inline engine
    /// for strict single-threaded runs, or a private pool of a chosen width). The engine
    /// never affects job histories — only wall-clock.
    pub fn with_engine(config: ServiceConfig, engine: RoundEngine) -> Self {
        Self {
            engine,
            config,
            state: Mutex::new(ServiceState {
                jobs: BTreeMap::new(),
                next: 0,
            }),
        }
    }

    /// The engine executing this service's rounds.
    pub fn engine(&self) -> &RoundEngine {
        &self.engine
    }

    /// Number of currently admitted jobs.
    pub fn len(&self) -> usize {
        lock(&self.state).jobs.len()
    }

    /// Whether no jobs are admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The service's job capacity.
    pub fn capacity(&self) -> usize {
        self.config.max_jobs
    }

    /// The ids of all live jobs, in admission order.
    pub fn jobs(&self) -> Vec<JobId> {
        lock(&self.state).jobs.keys().copied().collect()
    }

    /// Admits a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] when the spec's fault/adversary/reputation/aggregation
    /// parameters are out of range (see [`JobSpec::validate`]);
    /// [`FlError::AdmissionFull`] when the service already runs `max_jobs` jobs.
    pub fn admit(&self, spec: JobSpec) -> Result<JobId, FlError> {
        spec.validate()?;
        let mut state = lock(&self.state);
        if state.jobs.len() >= self.config.max_jobs {
            return Err(FlError::AdmissionFull {
                capacity: self.config.max_jobs,
            });
        }
        let id = state.next;
        state.next += 1;
        state
            .jobs
            .insert(id, Arc::new(Mutex::new(FlJob::new(spec))));
        Ok(id)
    }

    /// Removes a job and returns its final history, freeing its admission slot.
    ///
    /// # Errors
    ///
    /// [`FlError::UnknownJob`] if no such job is live.
    pub fn close(&self, id: JobId) -> Result<JobHistory, FlError> {
        let job = lock(&self.state)
            .jobs
            .remove(&id)
            .ok_or(FlError::UnknownJob(id))?;
        Ok(match Arc::try_unwrap(job) {
            Ok(m) => m
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .into_history(),
            // A racing round still holds the job; snapshot what it has recorded.
            Err(shared) => lock(&shared).history().clone(),
        })
    }

    /// Enqueues one round for the job without running it.
    ///
    /// # Errors
    ///
    /// [`FlError::UnknownJob`] for a dead id; [`FlError::Backpressure`] when the job's
    /// pending queue is at its bound (`spec.max_pending`, or the service default) — the
    /// caller must drain via [`AuctionService::run_pending`] first.
    pub fn request_round(&self, id: JobId) -> Result<(), FlError> {
        let job = self.job(id)?;
        let mut job = lock(&job);
        let bound = match job.spec().max_pending {
            0 => self.config.max_pending,
            n => n,
        };
        if job.pending() >= bound {
            return Err(FlError::Backpressure {
                job: id,
                pending: job.pending(),
            });
        }
        job.push_pending();
        Ok(())
    }

    /// Runs every pending round of the job, in order, recording each outcome (success *or
    /// typed failure*) in the job's history. Returns how many rounds ran. A failed round
    /// never aborts the drain: the next pending round still runs.
    ///
    /// # Errors
    ///
    /// [`FlError::UnknownJob`] for a dead id. Per-round failures are recorded, not
    /// returned — read them from [`AuctionService::history`].
    pub fn run_pending(&self, id: JobId) -> Result<usize, FlError> {
        let job = self.job(id)?;
        let mut ran = 0;
        loop {
            let mut job = lock(&job);
            if !job.pop_pending() {
                return Ok(ran);
            }
            let _ = job.run_round(&self.engine);
            ran += 1;
        }
    }

    /// Runs one round immediately (bypassing the pending queue) and returns its summary.
    ///
    /// # Errors
    ///
    /// [`FlError::UnknownJob`] for a dead id; otherwise whatever failed the round
    /// (auction failure, [`FlError::JobPanic`], …). The failure is also recorded in the
    /// job's history, and the job remains usable.
    pub fn run_round(&self, id: JobId) -> Result<RoundSummary, FlError> {
        let job = self.job(id)?;
        let mut job = lock(&job);
        job.run_round(&self.engine)
    }

    /// Snapshot of the job's history so far.
    ///
    /// # Errors
    ///
    /// [`FlError::UnknownJob`] for a dead id.
    pub fn history(&self, id: JobId) -> Result<JobHistory, FlError> {
        let job = self.job(id)?;
        let job = lock(&job);
        Ok(job.history().clone())
    }

    /// Snapshot of the job's resumable state — serialise it with
    /// [`JobCheckpoint::to_bytes`] and resume it (here or on a fresh service) with
    /// [`AuctionService::restore`]. The job keeps running; a checkpoint is a copy, not a
    /// close.
    ///
    /// # Errors
    ///
    /// [`FlError::UnknownJob`] for a dead id.
    pub fn checkpoint(&self, id: JobId) -> Result<JobCheckpoint, FlError> {
        let job = self.job(id)?;
        let job = lock(&job);
        Ok(job.checkpoint())
    }

    /// Admits a job resumed from a checkpoint: its round counter and history continue
    /// where the checkpoint left off, and — because each round's randomness derives from
    /// `(seed, round)` alone — the restored job's further rounds are bit-identical to the
    /// uninterrupted run's. The spec is re-supplied by the caller (specs hold closures and
    /// are never serialised) and must name the same job.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] when `spec.name` differs from the checkpointed name or
    /// the spec itself is out of range (see [`JobSpec::validate`]);
    /// [`FlError::AdmissionFull`] when the service is at capacity.
    pub fn restore(&self, spec: JobSpec, checkpoint: JobCheckpoint) -> Result<JobId, FlError> {
        spec.validate()?;
        if spec.name != checkpoint.name() {
            return Err(FlError::InvalidConfig(format!(
                "checkpoint of job '{}' cannot restore a spec named '{}'",
                checkpoint.name(),
                spec.name
            )));
        }
        let mut state = lock(&self.state);
        if state.jobs.len() >= self.config.max_jobs {
            return Err(FlError::AdmissionFull {
                capacity: self.config.max_jobs,
            });
        }
        let id = state.next;
        state.next += 1;
        state.jobs.insert(
            id,
            Arc::new(Mutex::new(FlJob::from_checkpoint(spec, checkpoint))),
        );
        Ok(id)
    }

    fn job(&self, id: JobId) -> Result<Arc<Mutex<FlJob>>, FlError> {
        lock(&self.state)
            .jobs
            .get(&id)
            .cloned()
            .ok_or(FlError::UnknownJob(id))
    }
}

impl std::fmt::Debug for AuctionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuctionService")
            .field("jobs", &self.len())
            .field("capacity", &self.config.max_jobs)
            .field("mode", &self.engine.mode())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_auction::{CobbDouglas, NodeId, PricingRule, ScoringRule, SelectionRule};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn toy_auction(k: usize) -> fmore_auction::Auction {
        let scoring = CobbDouglas::with_scale(25.0, vec![0.5, 0.3]).unwrap();
        fmore_auction::Auction::new(
            ScoringRule::new(scoring),
            k,
            SelectionRule::TopK,
            PricingRule::FirstPrice,
        )
    }

    fn toy_source() -> Arc<BidSource> {
        Arc::new(|range, round, store| {
            for i in range {
                let phase = ((i as u64).wrapping_mul(2654435761) ^ round) % 97;
                let q = [
                    0.2 + 0.7 * (phase as f64 / 97.0),
                    0.3 + 0.5 * ((phase as f64 * 1.618) % 1.0),
                ];
                store.push(NodeId(i as u64), &q, 0.05 + 0.01 * (i % 7) as f64)?;
            }
            Ok(())
        })
    }

    fn toy_spec(name: &str, seed: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            population: 256,
            shard_size: 64,
            reserve: 4,
            auction: toy_auction(8),
            seed,
            deadline: Some(DeadlineSpec::lenient()),
            max_pending: 0,
            update_dim: 0,
            watchdog: None,
            faults: None,
            fan_out: Default::default(),
            adversaries: None,
            reputation: None,
            aggregation: JobSpec::default_aggregation(),
            source: toy_source(),
            work: None,
        }
    }

    #[test]
    fn admission_is_bounded_and_close_frees_the_slot() {
        let service = AuctionService::with_engine(
            ServiceConfig {
                max_jobs: 2,
                max_pending: 4,
            },
            RoundEngine::inline(),
        );
        let a = service.admit(toy_spec("a", 1)).unwrap();
        let _b = service.admit(toy_spec("b", 2)).unwrap();
        let err = service.admit(toy_spec("c", 3)).unwrap_err();
        assert_eq!(err, FlError::AdmissionFull { capacity: 2 });
        service.close(a).unwrap();
        assert!(service.admit(toy_spec("c", 3)).is_ok());
        assert_eq!(service.len(), 2);
    }

    #[test]
    fn backpressure_bounds_the_pending_queue() {
        let service = AuctionService::with_engine(
            ServiceConfig {
                max_jobs: 4,
                max_pending: 2,
            },
            RoundEngine::inline(),
        );
        let id = service.admit(toy_spec("bp", 9)).unwrap();
        service.request_round(id).unwrap();
        service.request_round(id).unwrap();
        let err = service.request_round(id).unwrap_err();
        assert_eq!(
            err,
            FlError::Backpressure {
                job: id,
                pending: 2
            }
        );
        // Draining frees the queue and actually runs the rounds.
        assert_eq!(service.run_pending(id).unwrap(), 2);
        assert_eq!(service.history(id).unwrap().completed(), 2);
        service.request_round(id).unwrap();
    }

    #[test]
    fn unknown_job_is_a_typed_error_everywhere() {
        let service = AuctionService::new(ServiceConfig::default());
        assert_eq!(service.run_round(7).unwrap_err(), FlError::UnknownJob(7));
        assert_eq!(service.history(7).unwrap_err(), FlError::UnknownJob(7));
        assert_eq!(service.close(7).unwrap_err(), FlError::UnknownJob(7));
        assert_eq!(
            service.request_round(7).unwrap_err(),
            FlError::UnknownJob(7)
        );
        assert_eq!(service.run_pending(7).unwrap_err(), FlError::UnknownJob(7));
    }

    #[test]
    fn rounds_produce_winners_payments_and_bounded_memory() {
        let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
        let id = service.admit(toy_spec("toy", 42)).unwrap();
        let summary = service.run_round(id).unwrap();
        assert_eq!(summary.round, 1);
        assert_eq!(summary.offered, 256);
        assert!(!summary.winners.is_empty() && summary.winners.len() <= 8);
        assert!(summary.total_payment > 0.0);
        // Streaming, not collecting: peak bid bytes must be far below the full population.
        assert!(summary.peak_bid_bytes < 256 * 3 * 8);
        let again = service.run_round(id).unwrap();
        assert_eq!(again.round, 2);
        assert_ne!(summary.winners, again.winners, "rounds draw fresh bids");
    }

    #[test]
    fn histories_are_deterministic_per_spec() {
        let run_seed = |engine: RoundEngine, seed: u64| {
            let service = AuctionService::with_engine(ServiceConfig::default(), engine);
            let id = service.admit(toy_spec("det", seed)).unwrap();
            for _ in 0..3 {
                service.run_round(id).unwrap();
            }
            service.close(id).unwrap()
        };
        let run = |engine: RoundEngine| run_seed(engine, 77);
        let inline = run(RoundEngine::inline());
        let pooled = run(RoundEngine::pooled(4));
        // Same width → the full history (including memory accounting) is bit-identical.
        assert_eq!(inline, run(RoundEngine::inline()));
        assert_eq!(pooled, run(RoundEngine::pooled(4)));
        // Across widths only `peak_bid_bytes` may differ (wider waves hold more shard
        // stores); everything the auction observed is pinned by the fingerprint.
        assert_eq!(inline.fingerprint(), pooled.fingerprint());
        assert_ne!(
            inline.fingerprint(),
            run_seed(RoundEngine::inline(), 78).fingerprint(),
            "different seeds produce different histories"
        );
    }

    #[test]
    fn poisoned_neighbour_fails_its_own_round_only() {
        let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
        let calls = Arc::new(AtomicUsize::new(0));
        let mut poisoned = toy_spec("poisoned", 5);
        let seen = Arc::clone(&calls);
        poisoned.work = Some(Arc::new(move |round, slot, _winner| {
            seen.fetch_add(1, Ordering::Relaxed);
            assert!(!(round == 1 && slot == 2), "synthetic training crash");
            1.0
        }));
        let healthy_spec = toy_spec("healthy", 6);
        let a = service.admit(poisoned).unwrap();
        let b = service.admit(healthy_spec.clone()).unwrap();

        // Job A's first round dies in its work stage; the error is typed and recorded.
        let err = service.run_round(a).unwrap_err();
        assert!(
            matches!(err, FlError::JobPanic(ref p) if p.message.contains("crash")),
            "{err}"
        );
        let history = service.history(a).unwrap();
        assert_eq!(history.failed(), 1);

        // Job B is untouched by its neighbour's panic...
        let healthy_round = service.run_round(b).unwrap();
        assert!(!healthy_round.winners.is_empty());
        // ...and B's history matches a solo run on a fresh service bit-for-bit.
        let solo = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
        let solo_id = solo.admit(healthy_spec).unwrap();
        let solo_round = solo.run_round(solo_id).unwrap();
        assert_eq!(healthy_round, solo_round);

        // Job A itself survives: round 2 completes on the same pool.
        let recovered = service.run_round(a).unwrap();
        assert_eq!(recovered.round, 2);
        assert!(recovered.work_value > 0.0);
        assert!(calls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn close_during_a_racing_round_snapshots_history_and_frees_the_slot() {
        use std::sync::atomic::AtomicBool;
        let service = AuctionService::with_engine(
            ServiceConfig {
                max_jobs: 1,
                max_pending: 4,
            },
            RoundEngine::inline(),
        );
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let mut spec = toy_spec("racer", 21);
        let (entered_w, release_r) = (Arc::clone(&entered), Arc::clone(&release));
        spec.work = Some(Arc::new(move |_round, slot, _winner| {
            if slot == 0 {
                entered_w.store(true, Ordering::SeqCst);
                while !release_r.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            }
            1.0
        }));
        let id = service.admit(spec).unwrap();
        // Hold a handle to the job the way an in-flight round does, so `close` is
        // guaranteed to hit its snapshot branch rather than unwrapping the sole Arc.
        let held = service.job(id).unwrap();

        std::thread::scope(|scope| {
            let round = scope.spawn(|| service.run_round(id));
            while !entered.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // The round is mid-work and owns the job mutex. Close concurrently: it must
            // remove the job, then wait out the racing round and snapshot its record.
            let closer = scope.spawn(|| service.close(id));
            std::thread::sleep(std::time::Duration::from_millis(10));
            // The slot is free for a new tenant even while the old round still runs.
            assert!(service.is_empty());
            let fresh = service.admit(toy_spec("tenant2", 22)).unwrap();
            assert!(service.run_round(fresh).is_ok());

            release.store(true, Ordering::SeqCst);
            let summary = round.join().expect("round thread").unwrap();
            assert_eq!(summary.round, 1);
            let snapshot = closer.join().expect("closer thread").unwrap();
            // Close serialised after the racing round's record was written.
            assert_eq!(snapshot.name, "racer");
            assert_eq!(snapshot.completed(), 1);
        });
        drop(held);
        assert_eq!(service.run_round(id).unwrap_err(), FlError::UnknownJob(id));
    }

    #[test]
    fn capacity_reuse_preserves_the_closed_jobs_history() {
        let service = AuctionService::with_engine(
            ServiceConfig {
                max_jobs: 1,
                max_pending: 4,
            },
            RoundEngine::inline(),
        );
        let a = service.admit(toy_spec("first", 31)).unwrap();
        service.run_round(a).unwrap();
        service.run_round(a).unwrap();
        assert_eq!(
            service.admit(toy_spec("second", 32)).unwrap_err(),
            FlError::AdmissionFull { capacity: 1 }
        );
        let history = service.close(a).unwrap();
        assert_eq!(history.name, "first");
        assert_eq!(history.completed(), 2);
        let b = service.admit(toy_spec("second", 32)).unwrap();
        assert!(service.run_round(b).is_ok());
        assert_eq!(service.history(b).unwrap().name, "second");
    }

    #[test]
    fn watchdog_recovers_faulted_rounds_within_budget() {
        use crate::faults::{FaultPlan, WatchdogSpec};
        let run = || {
            let service =
                AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
            let mut spec = toy_spec("chaos", 404);
            spec.update_dim = 8;
            spec.watchdog = Some(WatchdogSpec {
                round_budget_secs: 20.0,
                max_retries: 3,
                backoff_base_secs: 0.5,
                backoff_factor: 2.0,
            });
            spec.faults = Some(FaultPlan::chaos(11));
            spec.work = Some(Arc::new(|_round, _slot, winner| winner.score));
            let id = service.admit(spec).unwrap();
            for _ in 0..6 {
                let _ = service.run_round(id);
            }
            service.close(id).unwrap()
        };
        let history = run();
        assert_eq!(history.completed(), 6, "every faulted round recovered");
        let retried: Vec<_> = history.rounds.iter().filter(|r| r.attempts > 1).collect();
        assert!(
            !retried.is_empty(),
            "chaos rates over 6 rounds × 8 winners must trip at least one retry"
        );
        for record in &retried {
            assert_eq!(record.retry_errors.len() as u32, record.attempts - 1);
            assert!(record.backoff_secs > 0.0);
            assert!(record.retry_errors.iter().all(WatchdogSpec::retryable));
            assert!(!record.faults.is_empty());
        }
        // Chaos is replayable: the identical spec reproduces the identical history.
        assert_eq!(history, run());
    }

    #[test]
    fn faults_without_a_watchdog_fail_typed_and_unretried() {
        use crate::faults::FaultPlan;
        let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::inline());
        let mut spec = toy_spec("unguarded", 77);
        let mut plan = FaultPlan::chaos(3);
        // Make failure certain: every work task panics, and no watchdog retries it.
        // (Panic and stall share one draw, so the two rates must fit one budget.)
        plan.panic_rate = 1.0;
        plan.stall_rate = 0.0;
        spec.faults = Some(plan);
        spec.work = Some(Arc::new(|_round, _slot, winner| winner.score));
        let id = service.admit(spec).unwrap();
        let err = service.run_round(id).unwrap_err();
        assert!(matches!(err, FlError::JobPanic(_)), "{err}");
        let history = service.close(id).unwrap();
        assert_eq!(history.rounds[0].attempts, 1);
        assert!(history.rounds[0].retry_errors.is_empty());
        assert!(!history.rounds[0].faults.is_empty());
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let spec = || toy_spec("cp", 55);
        // Uninterrupted reference run.
        let full = {
            let service =
                AuctionService::with_engine(ServiceConfig::default(), RoundEngine::inline());
            let id = service.admit(spec()).unwrap();
            for _ in 0..4 {
                service.run_round(id).unwrap();
            }
            service.close(id).unwrap()
        };
        // Interrupted run: two rounds, checkpoint → bytes → restore on a *fresh* service,
        // two more rounds.
        let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::inline());
        let id = service.admit(spec()).unwrap();
        for _ in 0..2 {
            service.run_round(id).unwrap();
        }
        let bytes = service.checkpoint(id).unwrap().to_bytes();
        let resumed = JobCheckpoint::from_bytes(&bytes).unwrap();
        let fresh = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::inline());
        let rid = fresh.restore(spec(), resumed).unwrap();
        for _ in 0..2 {
            fresh.run_round(rid).unwrap();
        }
        assert_eq!(fresh.close(rid).unwrap(), full);
        // The original keeps running — a checkpoint is a copy, not a close.
        service.run_round(id).unwrap();
        // Restoring under a different name is refused.
        let err = fresh
            .restore(toy_spec("other", 55), service.checkpoint(id).unwrap())
            .unwrap_err();
        assert!(matches!(err, FlError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn malformed_specs_are_rejected_at_admission_typed() {
        use crate::adversary::{AdversaryPlan, ReputationSpec};
        use crate::aggregator::Krum;
        use crate::faults::FaultPlan;
        let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::inline());

        let mut spec = toy_spec("bad-faults", 1);
        let mut plan = FaultPlan::chaos(1);
        plan.dropout_rate = 1.5;
        spec.faults = Some(plan);
        assert!(matches!(
            service.admit(spec).unwrap_err(),
            FlError::InvalidConfig(_)
        ));

        let mut spec = toy_spec("bad-adversaries", 1);
        let mut plan = AdversaryPlan::byzantine(1);
        plan.sign_flip_rate = 0.9; // poison classes now sum past 1
        spec.adversaries = Some(plan);
        assert!(matches!(
            service.admit(spec).unwrap_err(),
            FlError::InvalidConfig(_)
        ));

        let mut spec = toy_spec("bad-reputation", 1);
        let mut reputation = ReputationSpec::standard();
        reputation.penalty = -0.5;
        spec.reputation = Some(reputation);
        assert!(matches!(
            service.admit(spec).unwrap_err(),
            FlError::InvalidConfig(_)
        ));

        let mut spec = toy_spec("bad-aggregation", 1);
        spec.aggregation = Arc::new(Krum::multi(1, 0));
        assert!(matches!(
            service.admit(spec).unwrap_err(),
            FlError::InvalidConfig(_)
        ));

        // Restore validates the re-supplied spec too.
        let id = service.admit(toy_spec("good", 2)).unwrap();
        let checkpoint = service.checkpoint(id).unwrap();
        let mut spec = toy_spec("good", 2);
        spec.reputation = Some(ReputationSpec {
            exclusion_threshold: 7.0,
            ..ReputationSpec::standard()
        });
        assert!(matches!(
            service.restore(spec, checkpoint).unwrap_err(),
            FlError::InvalidConfig(_)
        ));
        assert_eq!(service.len(), 1, "nothing malformed was admitted");
    }

    #[test]
    fn honest_adversary_plan_and_idle_reputation_are_bitwise_inert() {
        use crate::adversary::{AdversaryPlan, ReputationSpec};
        let run = |decorate: bool| {
            let service =
                AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
            let mut spec = toy_spec("inert", 313);
            spec.update_dim = 8;
            if decorate {
                spec.adversaries = Some(AdversaryPlan::honest(99));
                spec.reputation = Some(ReputationSpec::standard());
            }
            let id = service.admit(spec).unwrap();
            for _ in 0..4 {
                service.run_round(id).unwrap();
            }
            service.close(id).unwrap()
        };
        // An all-honest plan plus a reputation loop that never sees a quarantine must
        // leave the history byte-identical — the decoration is pure potential.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reputation_loop_excludes_repeat_offenders_and_fails_typed_when_empty() {
        use crate::adversary::ReputationSpec;
        use crate::faults::FaultPlan;
        let run = || {
            let service =
                AuctionService::with_engine(ServiceConfig::default(), RoundEngine::pooled(2));
            let mut spec = toy_spec("three-strikes", 606);
            // Four nodes, all of them winners, every update corrupted: the ledger learns
            // fast, and once every node is excluded the book goes empty.
            spec.population = 4;
            spec.shard_size = 2;
            spec.auction = toy_auction(4);
            spec.reserve = 0;
            spec.update_dim = 8;
            spec.deadline = None;
            spec.faults = Some(FaultPlan {
                seed: 17,
                fill_panic_rate: 0.0,
                panic_rate: 0.0,
                stall_rate: 0.0,
                stall_secs: 0.0,
                dropout_rate: 0.0,
                corrupt_rate: 1.0,
                corrupt_scale: 1e9,
                faulty_attempts: u32::MAX,
            });
            spec.reputation = Some(ReputationSpec::standard());
            let id = service.admit(spec).unwrap();
            for _ in 0..20 {
                let _ = service.run_round(id);
            }
            service.close(id).unwrap()
        };
        let history = run();
        assert!(
            history.rounds.iter().any(|r| matches!(
                r.outcome,
                Ok(ref s) if s.quarantined > 0
            ) || matches!(
                r.outcome,
                Err(FlError::AllUpdatesQuarantined { .. })
            )),
            "corruption at rate 1.0 must trip quarantines"
        );
        let first_empty = history
            .rounds
            .iter()
            .position(|r| matches!(r.outcome, Err(FlError::AllBiddersExcluded { .. })))
            .expect("with every update corrupt, reputation must eventually exclude all four");
        assert_eq!(
            history.rounds[first_empty].outcome,
            Err(FlError::AllBiddersExcluded { excluded: 4 }),
            "the whole four-node book was dropped"
        );
        // Exclusion is sticky within this configuration: every later round fails the
        // same way, typed — the job never panics and the service keeps serving it.
        for record in &history.rounds[first_empty..] {
            assert!(
                matches!(
                    record.outcome,
                    Err(FlError::AllBiddersExcluded { excluded: 4 })
                ),
                "round {}: {:?}",
                record.round,
                record.outcome
            );
        }
        assert!(crate::faults::WatchdogSpec::retryable(
            &FlError::AllBiddersExcluded { excluded: 4 }
        ));
        // The collapse is replayable bit-for-bit.
        assert_eq!(history, run());
    }

    #[test]
    fn run_pending_records_failures_and_keeps_draining() {
        let service = AuctionService::with_engine(ServiceConfig::default(), RoundEngine::inline());
        let mut spec = toy_spec("flaky", 11);
        spec.work = Some(Arc::new(|round, _slot, _winner| {
            assert!(round != 1, "round one always dies");
            2.0
        }));
        let id = service.admit(spec).unwrap();
        service.request_round(id).unwrap();
        service.request_round(id).unwrap();
        assert_eq!(service.run_pending(id).unwrap(), 2);
        let history = service.close(id).unwrap();
        assert_eq!(history.rounds.len(), 2);
        assert_eq!(history.failed(), 1);
        assert_eq!(history.completed(), 1);
        assert!(matches!(
            history.rounds[0].outcome,
            Err(FlError::JobPanic(_))
        ));
        assert!(history.rounds[1].outcome.is_ok());
    }
}
