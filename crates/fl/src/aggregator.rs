//! Global aggregation (FedAvg, Eq. 3 of the paper), with typed rejection of poisoned
//! updates and a screening pass that quarantines them instead of failing the round.
//!
//! Byzantine-resilient aggregation lives behind the [`AggregationRule`] trait: FedAvg and
//! the median-norm screen are the baseline impls, joined by coordinate-wise-median,
//! trimmed-mean, and Krum/multi-Krum backends. The robust backends share one shape — a
//! robust *center* estimate, a distance screen against that center, then FedAvg over the
//! survivors — so a batch with no outliers aggregates **bit-for-bit** like plain FedAvg
//! (pinned by the property suite), while Byzantine updates are quarantined with typed
//! reasons the reputation ledger can act on. All rules are allocation-free in steady state
//! when driven through [`AggregationRule::aggregate_with`] and a reused
//! [`AggregationScratch`].

use crate::error::FlError;

/// Computes the data-size-weighted average of client parameter vectors:
/// `w(t+1) = Σ D_i w_i(t+1) / Σ D_i`.
///
/// Updates with non-positive weight are ignored. Returns `Ok(None)` if there are no usable
/// updates or the parameter vectors disagree in length.
///
/// # Errors
///
/// [`FlError::NonFiniteUpdate`] when an accepted update contains a NaN/±∞ parameter — such
/// a value would silently poison every coordinate of the global model.
pub fn federated_average(updates: &[(Vec<f64>, f64)]) -> Result<Option<Vec<f64>>, FlError> {
    federated_average_slices(
        updates
            .iter()
            .map(|(params, weight)| (params.as_slice(), *weight)),
    )
}

/// Borrowing form of [`federated_average`]: averages parameter slices without requiring the
/// caller to materialise owned vectors (used by the round engine, whose `LocalUpdate`s
/// already own their parameters).
///
/// # Errors
///
/// As for [`federated_average`].
pub fn federated_average_slices<'a, I>(updates: I) -> Result<Option<Vec<f64>>, FlError>
where
    I: IntoIterator<Item = (&'a [f64], f64)>,
{
    let mut out = Vec::new();
    Ok(federated_average_into(updates, &mut out)?.then_some(out))
}

/// Accumulating form of [`federated_average_slices`]: writes the weighted average into `out`
/// (cleared first, capacity reused), so a driver that averages every round reuses one buffer
/// instead of allocating per round. Returns `Ok(false)` — leaving `out` empty — when there
/// are no usable updates or the parameter vectors disagree in length.
///
/// # Errors
///
/// [`FlError::NonFiniteUpdate`] when an accepted (positive-weight) update contains a
/// non-finite parameter; `out` is left empty. Callers that must *survive* poisoned updates
/// screen them out first with [`federated_average_screened`].
pub fn federated_average_into<'a, I>(updates: I, out: &mut Vec<f64>) -> Result<bool, FlError>
where
    I: IntoIterator<Item = (&'a [f64], f64)>,
{
    out.clear();
    let mut initialised = false;
    let mut total_weight = 0.0;
    for (index, (params, weight)) in updates.into_iter().enumerate() {
        if weight <= 0.0 {
            continue;
        }
        if !params.iter().all(|p| p.is_finite()) {
            out.clear();
            return Err(FlError::NonFiniteUpdate { index });
        }
        if !initialised {
            out.extend(params.iter().map(|p| p * weight));
            initialised = true;
        } else {
            if params.len() != out.len() {
                out.clear();
                return Ok(false);
            }
            for (a, p) in out.iter_mut().zip(params) {
                *a += p * weight;
            }
        }
        total_weight += weight;
    }
    if !initialised || total_weight <= 0.0 {
        out.clear();
        return Ok(false);
    }
    for a in out.iter_mut() {
        *a /= total_weight;
    }
    Ok(true)
}

/// Screening policy of [`federated_average_screened`]: an update is quarantined when any
/// parameter is non-finite, or when its L2 norm exceeds `norm_factor ×` the median norm of
/// the finite updates in the batch (a relative gate, so the policy needs no knowledge of
/// the model's scale).
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenPolicy {
    /// Multiple of the batch's median update norm beyond which an update is an outlier.
    pub norm_factor: f64,
}

impl Default for ScreenPolicy {
    fn default() -> Self {
        Self { norm_factor: 8.0 }
    }
}

/// Why one update was quarantined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateFault {
    /// The update contains a NaN/±∞ parameter.
    NonFinite,
    /// The update's norm is a `norm_factor` outlier against the batch median.
    NormOutlier {
        /// The offending update's L2 norm.
        norm: f64,
        /// The limit it exceeded (`norm_factor × median`).
        limit: f64,
    },
    /// The update sits a `distance_factor` outlier from a robust rule's center estimate
    /// (coordinate median, trimmed mean, or the Krum selection mean).
    FarFromCenter {
        /// L2 distance of the update from the robust center.
        distance: f64,
        /// The limit it exceeded (`distance_factor × median distance`).
        limit: f64,
    },
}

/// One quarantined update of a screened aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quarantine {
    /// Index of the update in the batch handed to [`federated_average_screened`].
    pub index: usize,
    /// Why it was rejected.
    pub fault: UpdateFault,
}

/// Outcome of one screened aggregation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenedAggregation {
    /// Updates that passed screening and were aggregated.
    pub accepted: usize,
    /// Updates rejected by screening, with their typed reasons, in batch order.
    pub quarantined: Vec<Quarantine>,
}

/// FedAvg with update screening: quarantines non-finite and norm-outlier updates (per
/// `policy`), aggregates the survivors into `out`, and reports exactly what was rejected —
/// the round *degrades* to the surviving winners instead of being poisoned or failing.
///
/// Screening is a pure function of the batch, so a screened aggregation is as
/// deterministic as a plain one.
///
/// # Errors
///
/// [`FlError::AllUpdatesQuarantined`] when screening rejected every update of a non-empty
/// batch — there is nothing left to aggregate, and silently keeping the stale model would
/// hide the outage. (An empty batch returns `Ok` with `accepted == 0`.)
pub fn federated_average_screened(
    updates: &[(&[f64], f64)],
    policy: &ScreenPolicy,
    out: &mut Vec<f64>,
) -> Result<ScreenedAggregation, FlError> {
    screen_by_norm(updates, policy, out, &mut AggregationScratch::default())
}

/// Scratch-based core of [`federated_average_screened`], shared with the
/// [`MedianNormScreen`] rule so both paths are bit-identical and the rule path reuses its
/// buffers across rounds.
fn screen_by_norm(
    updates: &[(&[f64], f64)],
    policy: &ScreenPolicy,
    out: &mut Vec<f64>,
    scratch: &mut AggregationScratch,
) -> Result<ScreenedAggregation, FlError> {
    out.clear();
    if updates.is_empty() {
        return Ok(ScreenedAggregation {
            accepted: 0,
            quarantined: Vec::new(),
        });
    }

    scratch.norms.clear();
    scratch.sorted.clear();
    for (params, _) in updates {
        let norm = params
            .iter()
            .all(|p| p.is_finite())
            .then(|| params.iter().map(|p| p * p).sum::<f64>().sqrt());
        if let Some(norm) = norm {
            scratch.sorted.push(norm);
        }
        scratch.norms.push(norm);
    }
    scratch
        .sorted
        .sort_by(|a, b| a.partial_cmp(b).expect("finite norms are ordered"));
    let finite = scratch.sorted.len();
    let median = scratch.sorted.get(finite / 2).copied().unwrap_or(0.0);
    let limit = policy.norm_factor * median;

    let mut quarantined = Vec::new();
    scratch.survivors.clear();
    for (index, ((_, _), norm)) in updates.iter().zip(&scratch.norms).enumerate() {
        match norm {
            None => quarantined.push(Quarantine {
                index,
                fault: UpdateFault::NonFinite,
            }),
            Some(norm) if finite > 1 && *norm > limit => quarantined.push(Quarantine {
                index,
                fault: UpdateFault::NormOutlier { norm: *norm, limit },
            }),
            Some(_) => scratch.survivors.push(index),
        }
    }
    if scratch.survivors.is_empty() {
        return Err(FlError::AllUpdatesQuarantined {
            quarantined: quarantined.len(),
        });
    }
    let accepted = scratch.survivors.len();
    // Screening removed every non-finite update, so the typed error path below is
    // unreachable; `?` still propagates it rather than asserting.
    federated_average_into(scratch.survivors.iter().map(|&i| updates[i]), out)?;
    Ok(ScreenedAggregation {
        accepted,
        quarantined,
    })
}

/// Reusable buffers for [`AggregationRule::aggregate_with`]. One scratch per driver keeps
/// every rule allocation-free in steady state: the buffers grow to the batch's high-water
/// mark on the first rounds and are only rewound (never freed) afterwards.
#[derive(Debug, Clone, Default)]
pub struct AggregationScratch {
    /// Per-update L2 norms (`None` = non-finite), batch order. Norm screen only.
    norms: Vec<Option<f64>>,
    /// Batch indices of positive-weight finite updates, batch order.
    members: Vec<usize>,
    /// Batch indices that passed the screen and feed FedAvg, batch order.
    survivors: Vec<usize>,
    /// The rule's robust center estimate (`dim` long).
    center: Vec<f64>,
    /// One coordinate's values across members (median/trimmed-mean), or one member's
    /// distances to the others (Krum).
    column: Vec<f64>,
    /// L2 distance of each member from the center, member order.
    dists: Vec<f64>,
    /// Sort buffer for medians.
    sorted: Vec<f64>,
    /// Pairwise squared distances between members (`n × n`, row-major). Krum only.
    pair: Vec<f64>,
    /// Krum score per member.
    scores: Vec<f64>,
    /// Member positions sorted by Krum score (ties broken by batch index).
    order: Vec<usize>,
}

impl AggregationScratch {
    /// A fresh scratch with empty buffers (they size themselves on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pluggable global-aggregation backend: turns one round's update batch into the new
/// global parameter vector, quarantining what it rejects.
///
/// The contract every impl honours (pinned by the property suite):
///
/// - **FedAvg parity.** On a batch with no outliers — in particular, with zero
///   adversaries — the output is bit-for-bit what [`federated_average_into`] produces.
/// - **Permutation invariance.** The accepted/quarantined *sets* do not depend on batch
///   order (aggregation itself is reduced in a fixed batch-index order, so the output
///   bits do not either).
/// - **Graceful degradation.** Rejecting every update of a non-empty batch is the typed,
///   retryable [`FlError::AllUpdatesQuarantined`] — never a panic, never a silently
///   stale model.
///
/// Updates with non-positive weight are ignored exactly as FedAvg ignores them (not
/// screened, not quarantined, not aggregated).
pub trait AggregationRule: Send + Sync + std::fmt::Debug {
    /// Stable lowercase identifier (used in reports and experiment tables).
    fn name(&self) -> &'static str;

    /// Validates the rule's own parameters (e.g. a distance factor below 1 would
    /// quarantine the median update itself).
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] naming the offending field.
    fn validate(&self) -> Result<(), FlError> {
        Ok(())
    }

    /// Aggregates `updates` into `out` (cleared first), reusing `scratch`'s buffers.
    ///
    /// # Errors
    ///
    /// [`FlError::AllUpdatesQuarantined`] when the rule rejected every update of a
    /// non-empty batch; [`FlError::NonFiniteUpdate`] only from [`FedAvg`], which does not
    /// screen.
    fn aggregate_with(
        &self,
        updates: &[(&[f64], f64)],
        out: &mut Vec<f64>,
        scratch: &mut AggregationScratch,
    ) -> Result<ScreenedAggregation, FlError>;

    /// Convenience form of [`AggregationRule::aggregate_with`] that allocates a throwaway
    /// scratch — fine for tests and one-shot callers, not for per-round loops.
    ///
    /// # Errors
    ///
    /// As for [`AggregationRule::aggregate_with`].
    fn aggregate(
        &self,
        updates: &[(&[f64], f64)],
        out: &mut Vec<f64>,
    ) -> Result<ScreenedAggregation, FlError> {
        self.aggregate_with(updates, out, &mut AggregationScratch::default())
    }
}

/// Plain FedAvg (Eq. 3) as an [`AggregationRule`]: no screening, every positive-weight
/// update is accepted, and a non-finite parameter is a hard [`FlError::NonFiniteUpdate`].
/// The baseline the robust rules are measured against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FedAvg;

impl AggregationRule for FedAvg {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn aggregate_with(
        &self,
        updates: &[(&[f64], f64)],
        out: &mut Vec<f64>,
        _scratch: &mut AggregationScratch,
    ) -> Result<ScreenedAggregation, FlError> {
        let initialised = federated_average_into(updates.iter().copied(), out)?;
        let accepted = if initialised {
            updates.iter().filter(|(_, weight)| *weight > 0.0).count()
        } else {
            0
        };
        Ok(ScreenedAggregation {
            accepted,
            quarantined: Vec::new(),
        })
    }
}

/// The existing median-norm screen ([`federated_average_screened`]) as an
/// [`AggregationRule`]; both paths share one implementation, so they are bit-identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MedianNormScreen(pub ScreenPolicy);

impl AggregationRule for MedianNormScreen {
    fn name(&self) -> &'static str {
        "median-norm"
    }

    fn validate(&self) -> Result<(), FlError> {
        if !self.0.norm_factor.is_finite() || self.0.norm_factor < 1.0 {
            return Err(FlError::InvalidConfig(format!(
                "median-norm norm_factor must be finite and >= 1, got {}",
                self.0.norm_factor
            )));
        }
        Ok(())
    }

    fn aggregate_with(
        &self,
        updates: &[(&[f64], f64)],
        out: &mut Vec<f64>,
        scratch: &mut AggregationScratch,
    ) -> Result<ScreenedAggregation, FlError> {
        screen_by_norm(updates, &self.0, out, scratch)
    }
}

/// Coordinate-wise median as the center estimate of a distance screen: robust to up to
/// half the batch being Byzantine in any single coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinateMedian {
    /// Multiple of the batch's median center-distance beyond which an update is
    /// quarantined.
    pub distance_factor: f64,
}

impl Default for CoordinateMedian {
    fn default() -> Self {
        Self {
            distance_factor: 4.0,
        }
    }
}

impl AggregationRule for CoordinateMedian {
    fn name(&self) -> &'static str {
        "coordinate-median"
    }

    fn validate(&self) -> Result<(), FlError> {
        validate_distance_factor("coordinate-median", self.distance_factor)
    }

    fn aggregate_with(
        &self,
        updates: &[(&[f64], f64)],
        out: &mut Vec<f64>,
        scratch: &mut AggregationScratch,
    ) -> Result<ScreenedAggregation, FlError> {
        screen_by_distance(updates, self.distance_factor, out, scratch, |u, m, s| {
            coordinate_center(u, m, s, 0)
        })
    }
}

/// Per-coordinate trimmed mean as the center estimate of a distance screen: drops the
/// `trim` smallest and largest values of every coordinate before averaging, tolerating up
/// to `trim` Byzantine members.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimmedMean {
    /// Values trimmed from *each* tail of every coordinate (clamped so at least one value
    /// always survives).
    pub trim: usize,
    /// Multiple of the batch's median center-distance beyond which an update is
    /// quarantined.
    pub distance_factor: f64,
}

impl TrimmedMean {
    /// A trimmed mean dropping `trim` values per tail with the default distance gate.
    pub fn new(trim: usize) -> Self {
        Self {
            trim,
            distance_factor: 4.0,
        }
    }
}

impl AggregationRule for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }

    fn validate(&self) -> Result<(), FlError> {
        validate_distance_factor("trimmed-mean", self.distance_factor)
    }

    fn aggregate_with(
        &self,
        updates: &[(&[f64], f64)],
        out: &mut Vec<f64>,
        scratch: &mut AggregationScratch,
    ) -> Result<ScreenedAggregation, FlError> {
        let trim = self.trim;
        screen_by_distance(
            updates,
            self.distance_factor,
            out,
            scratch,
            move |u, m, s| coordinate_center(u, m, s, trim),
        )
    }
}

/// Krum / multi-Krum as the center estimate of a distance screen: scores each member by
/// the summed squared distance to its `n - f - 2` closest peers and averages the `select`
/// best-scored members into the center (Blanchard et al., NeurIPS 2017).
#[derive(Debug, Clone, PartialEq)]
pub struct Krum {
    /// Byzantine members the rule is provisioned against (`f` in the Krum score).
    pub assumed_byzantine: usize,
    /// Members averaged into the center: 1 = classic Krum, >1 = multi-Krum.
    pub select: usize,
    /// Multiple of the batch's median center-distance beyond which an update is
    /// quarantined.
    pub distance_factor: f64,
}

impl Krum {
    /// Classic Krum provisioned against `assumed_byzantine` adversaries.
    pub fn new(assumed_byzantine: usize) -> Self {
        Self {
            assumed_byzantine,
            select: 1,
            distance_factor: 4.0,
        }
    }

    /// Multi-Krum averaging the `select` best-scored members.
    pub fn multi(assumed_byzantine: usize, select: usize) -> Self {
        Self {
            assumed_byzantine,
            select,
            distance_factor: 4.0,
        }
    }
}

impl AggregationRule for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn validate(&self) -> Result<(), FlError> {
        validate_distance_factor("krum", self.distance_factor)?;
        if self.select == 0 {
            return Err(FlError::InvalidConfig(
                "krum select must be >= 1 (0 members would average to nothing)".into(),
            ));
        }
        Ok(())
    }

    fn aggregate_with(
        &self,
        updates: &[(&[f64], f64)],
        out: &mut Vec<f64>,
        scratch: &mut AggregationScratch,
    ) -> Result<ScreenedAggregation, FlError> {
        let (f, select) = (self.assumed_byzantine, self.select);
        screen_by_distance(
            updates,
            self.distance_factor,
            out,
            scratch,
            move |u, m, s| krum_center(u, m, s, f, select),
        )
    }
}

fn validate_distance_factor(rule: &str, factor: f64) -> Result<(), FlError> {
    if !factor.is_finite() || factor < 1.0 {
        return Err(FlError::InvalidConfig(format!(
            "{rule} distance_factor must be finite and >= 1 (below 1 quarantines the \
             median update itself), got {factor}"
        )));
    }
    Ok(())
}

/// Shared body of the robust rules: filter to positive-weight finite members, let `center`
/// fill `scratch.center`, quarantine members farther than `distance_factor ×` the upper
/// median member-distance from it, FedAvg the survivors.
///
/// A batch the center cannot be computed for (members disagree in dimension) degrades to
/// the FedAvg contract for mismatched lengths: nothing aggregated, `out` empty, `Ok`.
fn screen_by_distance(
    updates: &[(&[f64], f64)],
    distance_factor: f64,
    out: &mut Vec<f64>,
    scratch: &mut AggregationScratch,
    center: impl FnOnce(&[(&[f64], f64)], &[usize], &mut AggregationScratch),
) -> Result<ScreenedAggregation, FlError> {
    out.clear();
    let mut quarantined = Vec::new();
    // `members` is moved out of the scratch so the center closure can still borrow the
    // rest of the buffers mutably; it is always restored before returning.
    let mut members = std::mem::take(&mut scratch.members);
    members.clear();
    let mut dim: Option<usize> = None;
    let mut mismatched = false;
    for (index, (params, weight)) in updates.iter().enumerate() {
        if *weight <= 0.0 {
            continue;
        }
        if !params.iter().all(|p| p.is_finite()) {
            quarantined.push(Quarantine {
                index,
                fault: UpdateFault::NonFinite,
            });
            continue;
        }
        match dim {
            None => dim = Some(params.len()),
            Some(d) if d != params.len() => mismatched = true,
            Some(_) => {}
        }
        members.push(index);
    }
    if members.is_empty() {
        scratch.members = members;
        if quarantined.is_empty() {
            // Empty batch or only non-positive weights: FedAvg's "nothing to do", not an
            // outage.
            return Ok(ScreenedAggregation {
                accepted: 0,
                quarantined,
            });
        }
        return Err(FlError::AllUpdatesQuarantined {
            quarantined: quarantined.len(),
        });
    }
    if mismatched {
        scratch.members = members;
        return Ok(ScreenedAggregation {
            accepted: 0,
            quarantined,
        });
    }

    center(updates, &members, scratch);
    scratch.dists.clear();
    for &i in &members {
        let d = updates[i]
            .0
            .iter()
            .zip(&scratch.center)
            .map(|(p, c)| (p - c) * (p - c))
            .sum::<f64>()
            .sqrt();
        scratch.dists.push(d);
    }
    scratch.sorted.clear();
    scratch.sorted.extend_from_slice(&scratch.dists);
    scratch.sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("finite members give finite distances")
    });
    let median = scratch.sorted[scratch.sorted.len() / 2];
    let limit = distance_factor * median;
    // A lone member is never an outlier against itself, matching the norm screen.
    let gate = members.len() > 1 && limit.is_finite();

    scratch.survivors.clear();
    for (k, &index) in members.iter().enumerate() {
        if gate && scratch.dists[k] > limit {
            quarantined.push(Quarantine {
                index,
                fault: UpdateFault::FarFromCenter {
                    distance: scratch.dists[k],
                    limit,
                },
            });
        } else {
            scratch.survivors.push(index);
        }
    }
    // NonFinite quarantines were pushed in a first pass and distance quarantines in a
    // second; restore batch order so callers (and the ledger) see one coherent report.
    quarantined.sort_by_key(|q| q.index);
    scratch.members = members;
    if scratch.survivors.is_empty() {
        return Err(FlError::AllUpdatesQuarantined {
            quarantined: quarantined.len(),
        });
    }
    let accepted = scratch.survivors.len();
    // Survivors are finite with positive weight, so this neither errors nor returns false.
    federated_average_into(scratch.survivors.iter().map(|&i| updates[i]), out)?;
    Ok(ScreenedAggregation {
        accepted,
        quarantined,
    })
}

/// Fills `scratch.center` with the per-coordinate `trim`-trimmed mean of the members
/// (`trim == 0` degenerates to the coordinate-wise median — the upper median, matching the
/// norm screen's convention — via a full sort either way).
fn coordinate_center(
    updates: &[(&[f64], f64)],
    members: &[usize],
    scratch: &mut AggregationScratch,
    trim: usize,
) {
    let dim = updates[members[0]].0.len();
    let n = members.len();
    // Clamp so at least one value survives trimming, whatever the caller asked for.
    let trim = trim.min((n - 1) / 2);
    scratch.center.clear();
    for c in 0..dim {
        scratch.column.clear();
        for &i in members {
            scratch.column.push(updates[i].0[c]);
        }
        scratch
            .column
            .sort_by(|a, b| a.partial_cmp(b).expect("members are finite"));
        let value = if trim == 0 {
            scratch.column[n / 2]
        } else {
            let kept = &scratch.column[trim..n - trim];
            kept.iter().sum::<f64>() / kept.len() as f64
        };
        scratch.center.push(value);
    }
}

/// Fills `scratch.center` with the multi-Krum center: mean of the `select` members whose
/// summed squared distance to their `n - f - 2` nearest peers is smallest.
fn krum_center(
    updates: &[(&[f64], f64)],
    members: &[usize],
    scratch: &mut AggregationScratch,
    assumed_byzantine: usize,
    select: usize,
) {
    let n = members.len();
    let dim = updates[members[0]].0.len();
    if n == 1 {
        scratch.center.clear();
        scratch.center.extend_from_slice(updates[members[0]].0);
        return;
    }

    scratch.pair.clear();
    scratch.pair.resize(n * n, 0.0);
    for a in 0..n {
        for b in (a + 1)..n {
            let d2 = updates[members[a]]
                .0
                .iter()
                .zip(updates[members[b]].0)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>();
            scratch.pair[a * n + b] = d2;
            scratch.pair[b * n + a] = d2;
        }
    }

    // Krum's neighbourhood size n - f - 2, clamped to the batch actually present.
    let closest = n.saturating_sub(assumed_byzantine + 2).max(1).min(n - 1);
    scratch.scores.clear();
    for a in 0..n {
        scratch.column.clear();
        for b in 0..n {
            if b != a {
                scratch.column.push(scratch.pair[a * n + b]);
            }
        }
        scratch
            .column
            .sort_by(|a, b| a.partial_cmp(b).expect("squared distances are not NaN"));
        scratch.scores.push(scratch.column[..closest].iter().sum());
    }

    scratch.order.clear();
    scratch.order.extend(0..n);
    // Ties broken by batch index, so the selection is permutation-invariant.
    scratch.order.sort_by(|&x, &y| {
        scratch.scores[x]
            .partial_cmp(&scratch.scores[y])
            .expect("krum scores are not NaN")
            .then(members[x].cmp(&members[y]))
    });
    let m = select.max(1).min(n);
    scratch.center.clear();
    scratch.center.resize(dim, 0.0);
    for &k in &scratch.order[..m] {
        for (acc, p) in scratch.center.iter_mut().zip(updates[members[k]].0) {
            *acc += p;
        }
    }
    for acc in scratch.center.iter_mut() {
        *acc /= m as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_give_plain_mean() {
        let avg = federated_average(&[(vec![1.0, 2.0], 1.0), (vec![3.0, 4.0], 1.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    fn weights_follow_data_sizes() {
        // Eq. 3: node with 3x the data pulls the average 3x harder.
        let avg = federated_average(&[(vec![0.0], 1.0), (vec![4.0], 3.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![3.0]);
    }

    #[test]
    fn zero_and_negative_weights_are_ignored() {
        let avg = federated_average(&[(vec![10.0], 0.0), (vec![-3.0], -5.0), (vec![2.0], 2.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![2.0]);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(federated_average(&[]).unwrap().is_none());
        assert!(federated_average(&[(vec![1.0], 0.0)]).unwrap().is_none());
        assert!(
            federated_average(&[(vec![1.0], 1.0), (vec![1.0, 2.0], 1.0)])
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn single_update_is_returned_unchanged() {
        let avg = federated_average(&[(vec![1.5, -2.5, 0.0], 7.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![1.5, -2.5, 0.0]);
    }

    #[test]
    fn non_finite_updates_are_a_typed_error() {
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = federated_average(&[(vec![1.0], 1.0), (vec![poison], 1.0)]).unwrap_err();
            assert_eq!(err, FlError::NonFiniteUpdate { index: 1 });
        }
        // Zero-weight poisoned updates are skipped before inspection, like any other
        // zero-weight update.
        let avg = federated_average(&[(vec![f64::NAN], 0.0), (vec![3.0], 1.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![3.0]);
        let mut out = vec![9.0];
        let err = federated_average_into([(&[f64::NAN][..], 1.0)], &mut out).unwrap_err();
        assert_eq!(err, FlError::NonFiniteUpdate { index: 0 });
        assert!(out.is_empty(), "the buffer never carries poisoned output");
    }

    #[test]
    fn screening_quarantines_poison_and_outliers_and_degrades() {
        let clean_a = vec![1.0, 1.0];
        let clean_b = vec![1.2, 0.8];
        let clean_c = vec![0.9, 1.1];
        let nan = vec![f64::NAN, 1.0];
        let huge = vec![1e9, 1e9];
        let updates: Vec<(&[f64], f64)> = vec![
            (&clean_a, 1.0),
            (&nan, 1.0),
            (&clean_b, 1.0),
            (&huge, 1.0),
            (&clean_c, 1.0),
        ];
        let mut out = Vec::new();
        let screened =
            federated_average_screened(&updates, &ScreenPolicy::default(), &mut out).unwrap();
        assert_eq!(screened.accepted, 3);
        assert_eq!(screened.quarantined.len(), 2);
        assert_eq!(screened.quarantined[0].index, 1);
        assert_eq!(screened.quarantined[0].fault, UpdateFault::NonFinite);
        assert_eq!(screened.quarantined[1].index, 3);
        assert!(matches!(
            screened.quarantined[1].fault,
            UpdateFault::NormOutlier { .. }
        ));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.is_finite() && p.abs() < 10.0));
    }

    #[test]
    fn screening_fails_typed_when_nothing_survives() {
        let a = vec![f64::NAN];
        let b = vec![f64::INFINITY];
        let updates: Vec<(&[f64], f64)> = vec![(&a, 1.0), (&b, 1.0)];
        let mut out = Vec::new();
        let err =
            federated_average_screened(&updates, &ScreenPolicy::default(), &mut out).unwrap_err();
        assert_eq!(err, FlError::AllUpdatesQuarantined { quarantined: 2 });
        assert!(out.is_empty());
    }

    #[test]
    fn screening_keeps_a_lone_update_and_empty_batches() {
        // A single clean update is never an outlier against itself.
        let solo = vec![42.0];
        let updates: Vec<(&[f64], f64)> = vec![(&solo, 2.0)];
        let mut out = Vec::new();
        let screened =
            federated_average_screened(&updates, &ScreenPolicy::default(), &mut out).unwrap();
        assert_eq!(screened.accepted, 1);
        assert!(screened.quarantined.is_empty());
        assert_eq!(out, vec![42.0]);

        let screened = federated_average_screened(&[], &ScreenPolicy::default(), &mut out).unwrap();
        assert_eq!(screened.accepted, 0);
        assert!(out.is_empty());
    }

    fn every_rule() -> Vec<Box<dyn AggregationRule>> {
        vec![
            Box::new(FedAvg),
            Box::new(MedianNormScreen::default()),
            Box::new(CoordinateMedian::default()),
            Box::new(TrimmedMean::new(1)),
            Box::new(Krum::new(1)),
            Box::new(Krum::multi(1, 3)),
        ]
    }

    fn honest_batch() -> Vec<Vec<f64>> {
        (0..6)
            .map(|i| {
                let jitter = (i as f64 - 2.5) * 0.01;
                vec![1.0 + jitter, -2.0 + jitter, 0.5 - jitter]
            })
            .collect()
    }

    #[test]
    fn every_rule_matches_fedavg_bits_on_a_clean_batch() {
        let batch = honest_batch();
        let updates: Vec<(&[f64], f64)> = batch
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_slice(), 1.0 + i as f64))
            .collect();
        let mut baseline = Vec::new();
        assert!(federated_average_into(updates.iter().copied(), &mut baseline).unwrap());

        let mut scratch = AggregationScratch::new();
        for rule in every_rule() {
            let mut out = Vec::new();
            let report = rule
                .aggregate_with(&updates, &mut out, &mut scratch)
                .unwrap_or_else(|e| panic!("{} failed on a clean batch: {e}", rule.name()));
            assert_eq!(report.accepted, updates.len(), "{}", rule.name());
            assert!(report.quarantined.is_empty(), "{}", rule.name());
            assert_eq!(
                out.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                baseline.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "{} diverged from FedAvg on a clean batch",
                rule.name()
            );
        }
    }

    #[test]
    fn robust_rules_quarantine_a_scaled_gradient_and_recover_the_honest_mean() {
        let mut batch = honest_batch();
        // A 25x scaled-gradient poison, mid-batch.
        batch.insert(3, batch[0].iter().map(|p| p * 25.0).collect());
        let updates: Vec<(&[f64], f64)> = batch.iter().map(|p| (p.as_slice(), 1.0)).collect();
        let honest: Vec<(&[f64], f64)> = updates
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(_, u)| *u)
            .collect();
        let mut want = Vec::new();
        assert!(federated_average_into(honest.iter().copied(), &mut want).unwrap());

        let mut scratch = AggregationScratch::new();
        for rule in [
            Box::new(CoordinateMedian::default()) as Box<dyn AggregationRule>,
            Box::new(TrimmedMean::new(1)),
            Box::new(Krum::new(1)),
            Box::new(Krum::multi(1, 3)),
        ] {
            let mut out = Vec::new();
            let report = rule
                .aggregate_with(&updates, &mut out, &mut scratch)
                .unwrap();
            assert_eq!(report.accepted, 6, "{}", rule.name());
            assert_eq!(report.quarantined.len(), 1, "{}", rule.name());
            assert_eq!(report.quarantined[0].index, 3, "{}", rule.name());
            assert!(
                matches!(
                    report.quarantined[0].fault,
                    UpdateFault::FarFromCenter { .. }
                ),
                "{}",
                rule.name()
            );
            assert_eq!(
                out.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "{} did not recover the honest mean",
                rule.name()
            );
        }
    }

    #[test]
    fn robust_rules_quarantine_sign_flips_and_non_finite_updates() {
        let batch = honest_batch();
        let flipped: Vec<f64> = batch[0].iter().map(|p| -8.0 * p).collect();
        let nan = vec![f64::NAN, 0.0, 0.0];
        let mut updates: Vec<(&[f64], f64)> = batch.iter().map(|p| (p.as_slice(), 1.0)).collect();
        updates.push((&flipped, 1.0));
        updates.push((&nan, 1.0));

        for rule in [
            Box::new(CoordinateMedian::default()) as Box<dyn AggregationRule>,
            Box::new(TrimmedMean::new(1)),
            Box::new(Krum::new(2)),
        ] {
            let mut out = Vec::new();
            let report = rule.aggregate(&updates, &mut out).unwrap();
            assert_eq!(report.accepted, 6, "{}", rule.name());
            let faults: Vec<usize> = report.quarantined.iter().map(|q| q.index).collect();
            assert_eq!(faults, vec![6, 7], "{}", rule.name());
            assert_eq!(report.quarantined[1].fault, UpdateFault::NonFinite);
        }
    }

    #[test]
    fn rules_fail_typed_when_every_update_is_rejected() {
        let nan = vec![f64::NAN];
        let inf = vec![f64::INFINITY];
        let updates: Vec<(&[f64], f64)> = vec![(&nan, 1.0), (&inf, 1.0)];
        for rule in [
            Box::new(MedianNormScreen::default()) as Box<dyn AggregationRule>,
            Box::new(CoordinateMedian::default()),
            Box::new(TrimmedMean::new(1)),
            Box::new(Krum::new(1)),
        ] {
            let mut out = Vec::new();
            let err = rule.aggregate(&updates, &mut out).unwrap_err();
            assert_eq!(
                err,
                FlError::AllUpdatesQuarantined { quarantined: 2 },
                "{}",
                rule.name()
            );
            assert!(out.is_empty(), "{}", rule.name());
        }
        // FedAvg does not screen: the poison is its hard typed error.
        let err = FedAvg.aggregate(&updates, &mut Vec::new()).unwrap_err();
        assert_eq!(err, FlError::NonFiniteUpdate { index: 0 });
    }

    #[test]
    fn rules_share_fedavg_degenerate_contract() {
        let mut scratch = AggregationScratch::new();
        let a = vec![1.0];
        let b = vec![1.0, 2.0];
        for rule in every_rule() {
            let mut out = vec![9.0];
            // Empty batch: accepted 0, no error.
            let report = rule.aggregate_with(&[], &mut out, &mut scratch).unwrap();
            assert_eq!(report.accepted, 0, "{}", rule.name());
            assert!(out.is_empty(), "{}", rule.name());
            // Only non-positive weights: same. (The norm screen is weight-blind and
            // still reports such updates as accepted — FedAvg then skips them.)
            let report = rule
                .aggregate_with(&[(&a, 0.0), (&a, -1.0)], &mut out, &mut scratch)
                .unwrap();
            assert!(out.is_empty(), "{}", rule.name());
            if rule.name() != "median-norm" {
                assert_eq!(report.accepted, 0, "{}", rule.name());
            }
            // Mismatched dimensions: nothing aggregated, no panic. (The norm screen
            // reports its survivors as accepted even though FedAvg then declines the
            // mismatched batch — its long-standing contract; `out` stays empty either
            // way.)
            let report = rule
                .aggregate_with(&[(&a, 1.0), (&b, 1.0)], &mut out, &mut scratch)
                .unwrap_or_else(|e| panic!("{} on mismatched dims: {e}", rule.name()));
            assert!(out.is_empty(), "{}", rule.name());
            if rule.name() != "median-norm" {
                assert_eq!(report.accepted, 0, "{}", rule.name());
            }
        }
    }

    #[test]
    fn rule_validation_rejects_degenerate_parameters() {
        assert!(MedianNormScreen(ScreenPolicy { norm_factor: 0.5 })
            .validate()
            .is_err());
        assert!(MedianNormScreen(ScreenPolicy {
            norm_factor: f64::NAN
        })
        .validate()
        .is_err());
        assert!(CoordinateMedian {
            distance_factor: 0.0
        }
        .validate()
        .is_err());
        assert!(TrimmedMean {
            trim: 1,
            distance_factor: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(Krum::multi(1, 0).validate().is_err());
        for rule in every_rule() {
            rule.validate()
                .unwrap_or_else(|e| panic!("{} default invalid: {e}", rule.name()));
        }
        assert!(FedAvg.validate().is_ok());
    }

    #[test]
    fn krum_center_is_an_actual_member_for_classic_krum() {
        let batch = honest_batch();
        let poison = vec![50.0, 50.0, 50.0];
        let mut updates: Vec<(&[f64], f64)> = batch.iter().map(|p| (p.as_slice(), 1.0)).collect();
        updates.insert(0, (&poison, 1.0));
        let mut scratch = AggregationScratch::new();
        let mut out = Vec::new();
        let report = Krum::new(1)
            .aggregate_with(&updates, &mut out, &mut scratch)
            .unwrap();
        // The poison leads the batch and still gets quarantined: selection is score-based,
        // not order-based.
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].index, 0);
        assert_eq!(report.accepted, 6);
    }
}
