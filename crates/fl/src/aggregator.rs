//! Global aggregation (FedAvg, Eq. 3 of the paper).

/// Computes the data-size-weighted average of client parameter vectors:
/// `w(t+1) = Σ D_i w_i(t+1) / Σ D_i`.
///
/// Updates with non-positive weight are ignored. Returns `None` if there are no usable
/// updates or the parameter vectors disagree in length.
pub fn federated_average(updates: &[(Vec<f64>, f64)]) -> Option<Vec<f64>> {
    federated_average_slices(
        updates
            .iter()
            .map(|(params, weight)| (params.as_slice(), *weight)),
    )
}

/// Borrowing form of [`federated_average`]: averages parameter slices without requiring the
/// caller to materialise owned vectors (used by the round engine, whose `LocalUpdate`s
/// already own their parameters).
pub fn federated_average_slices<'a, I>(updates: I) -> Option<Vec<f64>>
where
    I: IntoIterator<Item = (&'a [f64], f64)>,
{
    let mut out = Vec::new();
    federated_average_into(updates, &mut out).then_some(out)
}

/// Accumulating form of [`federated_average_slices`]: writes the weighted average into `out`
/// (cleared first, capacity reused), so a driver that averages every round reuses one buffer
/// instead of allocating per round. Returns `false` — leaving `out` empty — when there are
/// no usable updates or the parameter vectors disagree in length.
pub fn federated_average_into<'a, I>(updates: I, out: &mut Vec<f64>) -> bool
where
    I: IntoIterator<Item = (&'a [f64], f64)>,
{
    out.clear();
    let mut initialised = false;
    let mut total_weight = 0.0;
    for (params, weight) in updates {
        if weight <= 0.0 {
            continue;
        }
        if !initialised {
            out.extend(params.iter().map(|p| p * weight));
            initialised = true;
        } else {
            if params.len() != out.len() {
                out.clear();
                return false;
            }
            for (a, p) in out.iter_mut().zip(params) {
                *a += p * weight;
            }
        }
        total_weight += weight;
    }
    if !initialised || total_weight <= 0.0 {
        out.clear();
        return false;
    }
    for a in out.iter_mut() {
        *a /= total_weight;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_give_plain_mean() {
        let avg = federated_average(&[(vec![1.0, 2.0], 1.0), (vec![3.0, 4.0], 1.0)]).unwrap();
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    fn weights_follow_data_sizes() {
        // Eq. 3: node with 3x the data pulls the average 3x harder.
        let avg = federated_average(&[(vec![0.0], 1.0), (vec![4.0], 3.0)]).unwrap();
        assert_eq!(avg, vec![3.0]);
    }

    #[test]
    fn zero_and_negative_weights_are_ignored() {
        let avg =
            federated_average(&[(vec![10.0], 0.0), (vec![-3.0], -5.0), (vec![2.0], 2.0)]).unwrap();
        assert_eq!(avg, vec![2.0]);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(federated_average(&[]).is_none());
        assert!(federated_average(&[(vec![1.0], 0.0)]).is_none());
        assert!(federated_average(&[(vec![1.0], 1.0), (vec![1.0, 2.0], 1.0)]).is_none());
    }

    #[test]
    fn single_update_is_returned_unchanged() {
        let avg = federated_average(&[(vec![1.5, -2.5, 0.0], 7.0)]).unwrap();
        assert_eq!(avg, vec![1.5, -2.5, 0.0]);
    }
}
