//! Global aggregation (FedAvg, Eq. 3 of the paper), with typed rejection of poisoned
//! updates and a screening pass that quarantines them instead of failing the round.

use crate::error::FlError;

/// Computes the data-size-weighted average of client parameter vectors:
/// `w(t+1) = Σ D_i w_i(t+1) / Σ D_i`.
///
/// Updates with non-positive weight are ignored. Returns `Ok(None)` if there are no usable
/// updates or the parameter vectors disagree in length.
///
/// # Errors
///
/// [`FlError::NonFiniteUpdate`] when an accepted update contains a NaN/±∞ parameter — such
/// a value would silently poison every coordinate of the global model.
pub fn federated_average(updates: &[(Vec<f64>, f64)]) -> Result<Option<Vec<f64>>, FlError> {
    federated_average_slices(
        updates
            .iter()
            .map(|(params, weight)| (params.as_slice(), *weight)),
    )
}

/// Borrowing form of [`federated_average`]: averages parameter slices without requiring the
/// caller to materialise owned vectors (used by the round engine, whose `LocalUpdate`s
/// already own their parameters).
///
/// # Errors
///
/// As for [`federated_average`].
pub fn federated_average_slices<'a, I>(updates: I) -> Result<Option<Vec<f64>>, FlError>
where
    I: IntoIterator<Item = (&'a [f64], f64)>,
{
    let mut out = Vec::new();
    Ok(federated_average_into(updates, &mut out)?.then_some(out))
}

/// Accumulating form of [`federated_average_slices`]: writes the weighted average into `out`
/// (cleared first, capacity reused), so a driver that averages every round reuses one buffer
/// instead of allocating per round. Returns `Ok(false)` — leaving `out` empty — when there
/// are no usable updates or the parameter vectors disagree in length.
///
/// # Errors
///
/// [`FlError::NonFiniteUpdate`] when an accepted (positive-weight) update contains a
/// non-finite parameter; `out` is left empty. Callers that must *survive* poisoned updates
/// screen them out first with [`federated_average_screened`].
pub fn federated_average_into<'a, I>(updates: I, out: &mut Vec<f64>) -> Result<bool, FlError>
where
    I: IntoIterator<Item = (&'a [f64], f64)>,
{
    out.clear();
    let mut initialised = false;
    let mut total_weight = 0.0;
    for (index, (params, weight)) in updates.into_iter().enumerate() {
        if weight <= 0.0 {
            continue;
        }
        if !params.iter().all(|p| p.is_finite()) {
            out.clear();
            return Err(FlError::NonFiniteUpdate { index });
        }
        if !initialised {
            out.extend(params.iter().map(|p| p * weight));
            initialised = true;
        } else {
            if params.len() != out.len() {
                out.clear();
                return Ok(false);
            }
            for (a, p) in out.iter_mut().zip(params) {
                *a += p * weight;
            }
        }
        total_weight += weight;
    }
    if !initialised || total_weight <= 0.0 {
        out.clear();
        return Ok(false);
    }
    for a in out.iter_mut() {
        *a /= total_weight;
    }
    Ok(true)
}

/// Screening policy of [`federated_average_screened`]: an update is quarantined when any
/// parameter is non-finite, or when its L2 norm exceeds `norm_factor ×` the median norm of
/// the finite updates in the batch (a relative gate, so the policy needs no knowledge of
/// the model's scale).
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenPolicy {
    /// Multiple of the batch's median update norm beyond which an update is an outlier.
    pub norm_factor: f64,
}

impl Default for ScreenPolicy {
    fn default() -> Self {
        Self { norm_factor: 8.0 }
    }
}

/// Why one update was quarantined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateFault {
    /// The update contains a NaN/±∞ parameter.
    NonFinite,
    /// The update's norm is a `norm_factor` outlier against the batch median.
    NormOutlier {
        /// The offending update's L2 norm.
        norm: f64,
        /// The limit it exceeded (`norm_factor × median`).
        limit: f64,
    },
}

/// One quarantined update of a screened aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quarantine {
    /// Index of the update in the batch handed to [`federated_average_screened`].
    pub index: usize,
    /// Why it was rejected.
    pub fault: UpdateFault,
}

/// Outcome of one screened aggregation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenedAggregation {
    /// Updates that passed screening and were aggregated.
    pub accepted: usize,
    /// Updates rejected by screening, with their typed reasons, in batch order.
    pub quarantined: Vec<Quarantine>,
}

/// FedAvg with update screening: quarantines non-finite and norm-outlier updates (per
/// `policy`), aggregates the survivors into `out`, and reports exactly what was rejected —
/// the round *degrades* to the surviving winners instead of being poisoned or failing.
///
/// Screening is a pure function of the batch, so a screened aggregation is as
/// deterministic as a plain one.
///
/// # Errors
///
/// [`FlError::AllUpdatesQuarantined`] when screening rejected every update of a non-empty
/// batch — there is nothing left to aggregate, and silently keeping the stale model would
/// hide the outage. (An empty batch returns `Ok` with `accepted == 0`.)
pub fn federated_average_screened(
    updates: &[(&[f64], f64)],
    policy: &ScreenPolicy,
    out: &mut Vec<f64>,
) -> Result<ScreenedAggregation, FlError> {
    out.clear();
    if updates.is_empty() {
        return Ok(ScreenedAggregation {
            accepted: 0,
            quarantined: Vec::new(),
        });
    }

    let norms: Vec<Option<f64>> = updates
        .iter()
        .map(|(params, _)| {
            params
                .iter()
                .all(|p| p.is_finite())
                .then(|| params.iter().map(|p| p * p).sum::<f64>().sqrt())
        })
        .collect();
    let mut finite: Vec<f64> = norms.iter().filter_map(|n| *n).collect();
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite norms are ordered"));
    let median = finite.get(finite.len() / 2).copied().unwrap_or(0.0);
    let limit = policy.norm_factor * median;

    let mut quarantined = Vec::new();
    let mut kept = Vec::with_capacity(updates.len());
    for (index, ((params, weight), norm)) in updates.iter().zip(&norms).enumerate() {
        match norm {
            None => quarantined.push(Quarantine {
                index,
                fault: UpdateFault::NonFinite,
            }),
            Some(norm) if finite.len() > 1 && *norm > limit => quarantined.push(Quarantine {
                index,
                fault: UpdateFault::NormOutlier { norm: *norm, limit },
            }),
            Some(_) => kept.push((*params, *weight)),
        }
    }
    if kept.is_empty() {
        return Err(FlError::AllUpdatesQuarantined {
            quarantined: quarantined.len(),
        });
    }
    let accepted = kept.len();
    // Screening removed every non-finite update, so the typed error path below is
    // unreachable; `?` still propagates it rather than asserting.
    federated_average_into(kept, out)?;
    Ok(ScreenedAggregation {
        accepted,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_give_plain_mean() {
        let avg = federated_average(&[(vec![1.0, 2.0], 1.0), (vec![3.0, 4.0], 1.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    fn weights_follow_data_sizes() {
        // Eq. 3: node with 3x the data pulls the average 3x harder.
        let avg = federated_average(&[(vec![0.0], 1.0), (vec![4.0], 3.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![3.0]);
    }

    #[test]
    fn zero_and_negative_weights_are_ignored() {
        let avg = federated_average(&[(vec![10.0], 0.0), (vec![-3.0], -5.0), (vec![2.0], 2.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![2.0]);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(federated_average(&[]).unwrap().is_none());
        assert!(federated_average(&[(vec![1.0], 0.0)]).unwrap().is_none());
        assert!(
            federated_average(&[(vec![1.0], 1.0), (vec![1.0, 2.0], 1.0)])
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn single_update_is_returned_unchanged() {
        let avg = federated_average(&[(vec![1.5, -2.5, 0.0], 7.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![1.5, -2.5, 0.0]);
    }

    #[test]
    fn non_finite_updates_are_a_typed_error() {
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = federated_average(&[(vec![1.0], 1.0), (vec![poison], 1.0)]).unwrap_err();
            assert_eq!(err, FlError::NonFiniteUpdate { index: 1 });
        }
        // Zero-weight poisoned updates are skipped before inspection, like any other
        // zero-weight update.
        let avg = federated_average(&[(vec![f64::NAN], 0.0), (vec![3.0], 1.0)])
            .unwrap()
            .unwrap();
        assert_eq!(avg, vec![3.0]);
        let mut out = vec![9.0];
        let err = federated_average_into([(&[f64::NAN][..], 1.0)], &mut out).unwrap_err();
        assert_eq!(err, FlError::NonFiniteUpdate { index: 0 });
        assert!(out.is_empty(), "the buffer never carries poisoned output");
    }

    #[test]
    fn screening_quarantines_poison_and_outliers_and_degrades() {
        let clean_a = vec![1.0, 1.0];
        let clean_b = vec![1.2, 0.8];
        let clean_c = vec![0.9, 1.1];
        let nan = vec![f64::NAN, 1.0];
        let huge = vec![1e9, 1e9];
        let updates: Vec<(&[f64], f64)> = vec![
            (&clean_a, 1.0),
            (&nan, 1.0),
            (&clean_b, 1.0),
            (&huge, 1.0),
            (&clean_c, 1.0),
        ];
        let mut out = Vec::new();
        let screened =
            federated_average_screened(&updates, &ScreenPolicy::default(), &mut out).unwrap();
        assert_eq!(screened.accepted, 3);
        assert_eq!(screened.quarantined.len(), 2);
        assert_eq!(screened.quarantined[0].index, 1);
        assert_eq!(screened.quarantined[0].fault, UpdateFault::NonFinite);
        assert_eq!(screened.quarantined[1].index, 3);
        assert!(matches!(
            screened.quarantined[1].fault,
            UpdateFault::NormOutlier { .. }
        ));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.is_finite() && p.abs() < 10.0));
    }

    #[test]
    fn screening_fails_typed_when_nothing_survives() {
        let a = vec![f64::NAN];
        let b = vec![f64::INFINITY];
        let updates: Vec<(&[f64], f64)> = vec![(&a, 1.0), (&b, 1.0)];
        let mut out = Vec::new();
        let err =
            federated_average_screened(&updates, &ScreenPolicy::default(), &mut out).unwrap_err();
        assert_eq!(err, FlError::AllUpdatesQuarantined { quarantined: 2 });
        assert!(out.is_empty());
    }

    #[test]
    fn screening_keeps_a_lone_update_and_empty_batches() {
        // A single clean update is never an outlier against itself.
        let solo = vec![42.0];
        let updates: Vec<(&[f64], f64)> = vec![(&solo, 2.0)];
        let mut out = Vec::new();
        let screened =
            federated_average_screened(&updates, &ScreenPolicy::default(), &mut out).unwrap();
        assert_eq!(screened.accepted, 1);
        assert!(screened.quarantined.is_empty());
        assert_eq!(out, vec![42.0]);

        let screened = federated_average_screened(&[], &ScreenPolicy::default(), &mut out).unwrap();
        assert_eq!(screened.accepted, 0);
        assert!(out.is_empty());
    }
}
