//! Error type for the federated-learning substrate.

use std::fmt;

/// Error returned by the federated-learning substrate.
///
/// This is the one typed error family of every service-facing path: a malformed job, a
/// mid-churn population, or a panicking training/scoring task must fail **that job's
/// round** — never the process. Parallel-stage panics are caught at the executor and
/// surface here as [`FlError::JobPanic`]; the service-layer variants
/// ([`FlError::UnknownJob`], [`FlError::AdmissionFull`], [`FlError::Backpressure`]) are the
/// admission/backpressure contract of [`crate::service::AuctionService`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// Invalid training configuration (zero clients, `K > N`, zero rounds, …).
    InvalidConfig(String),
    /// A client-selection strategy referenced a client that does not exist.
    UnknownClient(usize),
    /// The auction used by FMore selection failed.
    Auction(fmore_auction::AuctionError),
    /// A parallel task of one round panicked; caught at the executor and attributed to the
    /// round that submitted it, with every sibling slot still delivered.
    JobPanic(crate::executor::JobPanic),
    /// The service has no job under this id (never admitted, or already closed).
    UnknownJob(u64),
    /// Admission refused: the service is already at its concurrent-job capacity.
    AdmissionFull {
        /// The service's configured job capacity.
        capacity: usize,
    },
    /// A job's bounded round queue is full — the caller must drain (run) pending rounds
    /// before requesting more.
    Backpressure {
        /// The job whose queue is full.
        job: u64,
        /// Rounds already pending for that job.
        pending: usize,
    },
    /// A round attempt exceeded its watchdog budget (simulated seconds, so the verdict is
    /// deterministic); the watchdog retries it up to the spec's bound.
    RoundTimeout {
        /// The round that blew its budget.
        round: u64,
        /// Simulated seconds the attempt spent.
        sim_secs: f64,
        /// The watchdog's per-round budget.
        budget_secs: f64,
    },
    /// An update handed to the aggregator contains a non-finite parameter. Raised by
    /// [`crate::aggregator::federated_average_into`]; the screened service path quarantines
    /// such updates before they reach this error.
    NonFiniteUpdate {
        /// Index of the poisoned update in the aggregation batch.
        index: usize,
    },
    /// Update screening quarantined *every* update of a round: there is nothing left to
    /// aggregate, so the round fails (retryably) instead of skipping aggregation silently.
    AllUpdatesQuarantined {
        /// How many updates were quarantined.
        quarantined: usize,
    },
    /// A serialised [`crate::service::JobCheckpoint`] could not be decoded.
    CheckpointCorrupt(String),
    /// The reputation ledger excluded every bid of a round: nothing was left for the
    /// auction to select. Classified retryable (a degraded fleet deserves its retry
    /// budget), but within one round the reputation snapshot is fixed, so an exhausted
    /// budget fails the round typed — never a panic, never a silently empty winner set.
    AllBiddersExcluded {
        /// How many bids the reputation filter dropped this round.
        excluded: usize,
    },
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::InvalidConfig(msg) => write!(f, "invalid federated-learning config: {msg}"),
            FlError::UnknownClient(idx) => write!(f, "unknown client index {idx}"),
            FlError::Auction(e) => write!(f, "auction failure: {e}"),
            FlError::JobPanic(p) => write!(f, "round task panicked: {p}"),
            FlError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            FlError::AdmissionFull { capacity } => {
                write!(f, "admission refused: service already runs {capacity} jobs")
            }
            FlError::Backpressure { job, pending } => {
                write!(
                    f,
                    "backpressure: job {job} already has {pending} pending rounds"
                )
            }
            FlError::RoundTimeout {
                round,
                sim_secs,
                budget_secs,
            } => {
                write!(
                    f,
                    "round {round} timed out: {sim_secs:.3}s simulated against a \
                     {budget_secs:.3}s budget"
                )
            }
            FlError::NonFiniteUpdate { index } => {
                write!(f, "update {index} contains a non-finite parameter")
            }
            FlError::AllUpdatesQuarantined { quarantined } => {
                write!(
                    f,
                    "all {quarantined} updates of the round were quarantined; nothing to \
                     aggregate"
                )
            }
            FlError::CheckpointCorrupt(msg) => write!(f, "corrupt job checkpoint: {msg}"),
            FlError::AllBiddersExcluded { excluded } => {
                write!(
                    f,
                    "reputation filter excluded all {excluded} bids of the round; nothing \
                     to select"
                )
            }
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Auction(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fmore_auction::AuctionError> for FlError {
    fn from(e: fmore_auction::AuctionError) -> Self {
        FlError::Auction(e)
    }
}

impl From<crate::executor::JobPanic> for FlError {
    fn from(p: crate::executor::JobPanic) -> Self {
        FlError::JobPanic(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FlError::InvalidConfig("K > N".into());
        assert!(e.to_string().contains("K > N"));
        assert!(std::error::Error::source(&e).is_none());

        let e = FlError::UnknownClient(7);
        assert!(e.to_string().contains('7'));

        let inner = fmore_auction::AuctionError::NoBids;
        let e: FlError = inner.into();
        assert!(e.to_string().contains("no bids"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn service_variants_render_their_context() {
        let e: FlError = crate::executor::JobPanic {
            slot: 3,
            message: "boom".into(),
        }
        .into();
        assert!(e.to_string().contains("slot 3"));
        assert!(e.to_string().contains("boom"));

        assert!(FlError::UnknownJob(9).to_string().contains('9'));
        assert!(FlError::AdmissionFull { capacity: 4 }
            .to_string()
            .contains('4'));
        let e = FlError::Backpressure { job: 2, pending: 8 };
        assert!(e.to_string().contains("job 2"));
        assert!(e.to_string().contains("8 pending"));
    }

    #[test]
    fn robustness_variants_render_their_context() {
        let e = FlError::RoundTimeout {
            round: 4,
            sim_secs: 35.5,
            budget_secs: 20.0,
        };
        assert!(e.to_string().contains("round 4"));
        assert!(e.to_string().contains("35.500"));
        assert!(e.to_string().contains("20.000"));

        assert!(FlError::NonFiniteUpdate { index: 3 }
            .to_string()
            .contains("update 3"));
        assert!(FlError::AllUpdatesQuarantined { quarantined: 5 }
            .to_string()
            .contains("all 5 updates"));
        assert!(FlError::CheckpointCorrupt("truncated".into())
            .to_string()
            .contains("truncated"));
        assert!(FlError::AllBiddersExcluded { excluded: 9 }
            .to_string()
            .contains("all 9 bids"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlError>();
    }
}
