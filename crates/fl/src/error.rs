//! Error type for the federated-learning substrate.

use std::fmt;

/// Error returned by the federated-learning substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// Invalid training configuration (zero clients, `K > N`, zero rounds, …).
    InvalidConfig(String),
    /// A client-selection strategy referenced a client that does not exist.
    UnknownClient(usize),
    /// The auction used by FMore selection failed.
    Auction(fmore_auction::AuctionError),
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::InvalidConfig(msg) => write!(f, "invalid federated-learning config: {msg}"),
            FlError::UnknownClient(idx) => write!(f, "unknown client index {idx}"),
            FlError::Auction(e) => write!(f, "auction failure: {e}"),
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Auction(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fmore_auction::AuctionError> for FlError {
    fn from(e: fmore_auction::AuctionError) -> Self {
        FlError::Auction(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FlError::InvalidConfig("K > N".into());
        assert!(e.to_string().contains("K > N"));
        assert!(std::error::Error::source(&e).is_none());

        let e = FlError::UnknownClient(7);
        assert!(e.to_string().contains('7'));

        let inner = fmore_auction::AuctionError::NoBids;
        let e: FlError = inner.into();
        assert!(e.to_string().contains("no bids"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlError>();
    }
}
