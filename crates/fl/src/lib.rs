//! Federated-learning substrate: clients, FedAvg aggregation, client-selection strategies,
//! and the round loop of Algorithm 1.
//!
//! The crate implements the three training schemes compared throughout the paper's
//! evaluation:
//!
//! * **RandFL** — the classic federated learning of McMahan et al.: `K` clients chosen
//!   uniformly at random each round,
//! * **FixFL** — a fixed set of `K` clients trains every round,
//! * **FMore / ψ-FMore** — each round is preceded by the multi-dimensional procurement
//!   auction of [`fmore_auction`]; the `K` highest-scoring bidders train and are paid.
//!
//! The [`trainer::FederatedTrainer`] drives the six steps of Algorithm 1 (bid ask, bid
//! collection, winner determination, task assignment, local training, global aggregation) and
//! records per-round metrics ([`metrics::RoundMetrics`]) — model accuracy, loss, payments,
//! and winner scores — which the experiment harness turns into the paper's figures.
//!
//! # Example
//!
//! ```
//! use fmore_fl::config::FlConfig;
//! use fmore_fl::selection::SelectionStrategy;
//! use fmore_fl::trainer::FederatedTrainer;
//! use fmore_ml::dataset::TaskKind;
//!
//! let config = FlConfig::fast_test(TaskKind::MnistO);
//! let mut trainer = FederatedTrainer::new(config, SelectionStrategy::random(), 42)?;
//! let history = trainer.run(3)?;
//! assert_eq!(history.rounds.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod aggregator;
pub mod chain;
pub mod client;
pub mod config;
pub mod engine;
pub mod error;
pub mod executor;
pub mod faults;
pub mod metrics;
pub mod selection;
pub mod service;
pub mod trainer;

pub use adversary::{
    AdversaryClock, AdversaryPlan, BidDistortion, Poison, ReputationFilter, ReputationLedger,
    ReputationSpec,
};
pub use aggregator::{
    federated_average, federated_average_into, federated_average_screened, AggregationRule,
    AggregationScratch, CoordinateMedian, FedAvg, Krum, MedianNormScreen, Quarantine, ScreenPolicy,
    ScreenedAggregation, TrimmedMean, UpdateFault,
};
pub use chain::{run_chains, TaskChain};
pub use client::EdgeClient;
pub use config::FlConfig;
pub use engine::{
    shared_pool, ExecutionMode, FanOutGranularity, RoundEngine, SlotState, WorkerPool,
};
pub use error::FlError;
pub use executor::JobPanic;
pub use faults::{Corruption, FaultClock, FaultEvent, FaultKind, FaultPlan, WatchdogSpec};
pub use metrics::{RoundMetrics, RoundOutcome, TrainingHistory, WinnerInfo};
pub use selection::SelectionStrategy;
pub use service::{
    AuctionService, JobCheckpoint, JobHistory, JobId, JobSpec, RoundSummary, ServiceConfig,
};
pub use trainer::FederatedTrainer;
