//! The federated-learning round loop (Algorithm 1 of the paper), composed from the shared
//! stages of [`crate::engine`].

use crate::aggregator::{AggregationRule, AggregationScratch, FedAvg};
use crate::client::EdgeClient;
use crate::config::{FlConfig, ModelChoice};
use crate::engine::{self, FanOutGranularity, RoundEngine, SlotState, TrainingJob};
use crate::error::FlError;
use crate::metrics::{RoundMetrics, RoundOutcome, TrainingHistory, WinnerInfo};
use crate::selection::SelectionStrategy;
use fmore_auction::{Auction, CobbDouglas, EquilibriumSolver, LinearCost, NodeId, ScoringRule};
use fmore_ml::arena::ScratchArena;
use fmore_ml::dataset::{image_spec_for, Dataset, SyntheticTextSpec, TaskKind};
use fmore_ml::model::{Model, Sequential};
use fmore_ml::models;
use fmore_ml::partition::partition_non_iid;
use fmore_numerics::rng::{derive_seed, sample_indices};
use fmore_numerics::{seeded_rng, UniformDist};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Drives federated training: client selection (random, fixed, or by FMore auction), local
/// SGD at the selected clients, FedAvg aggregation, and per-round evaluation.
///
/// All per-round work flows through the stages of [`crate::engine`]; parallel local training
/// runs on the engine's worker pool (the process-wide [`engine::shared_pool`] unless a
/// specific engine is injected via [`FederatedTrainer::with_engine`]).
pub struct FederatedTrainer {
    config: FlConfig,
    strategy: SelectionStrategy,
    train_data: Arc<Dataset>,
    test_data: Dataset,
    test_indices: Vec<usize>,
    clients: Vec<EdgeClient>,
    global: Sequential,
    solver: Option<EquilibriumSolver>,
    auction: Option<Auction>,
    engine: RoundEngine,
    /// How local training decomposes into executor tasks; never affects histories.
    fan_out: FanOutGranularity,
    rng: StdRng,
    seed: u64,
    round: usize,
    /// Reusable per-winner-slot training state (model + arena + buffers); grown on demand,
    /// lent to the slot's job each round and reclaimed with the update.
    slots: Vec<Option<SlotState>>,
    /// Reusable snapshot of the global parameters shared with the round's jobs.
    global_params: Arc<Vec<f64>>,
    /// Scratch arena for the per-round global evaluation.
    eval_arena: ScratchArena,
    /// Reusable FedAvg accumulator.
    avg_buf: Vec<f64>,
    /// Pluggable aggregation rule (step 6); defaults to plain [`FedAvg`], which keeps
    /// histories bit-identical to the unscreened baseline.
    aggregation: Arc<dyn AggregationRule>,
    /// Reusable scratch for the aggregation rule's screening internals.
    agg_scratch: AggregationScratch,
}

impl std::fmt::Debug for FederatedTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedTrainer")
            .field("task", &self.config.task.name())
            .field("strategy", &self.strategy.name())
            .field("clients", &self.clients.len())
            .field("winners_per_round", &self.config.winners_per_round)
            .field("mode", &self.engine.mode())
            .field("round", &self.round)
            .finish()
    }
}

fn generate_datasets(config: &FlConfig, rng: &mut StdRng) -> (Dataset, Dataset) {
    match config.task {
        TaskKind::HpNews => {
            let spec = SyntheticTextSpec::hpnews_like();
            (
                spec.generate(config.train_samples, rng),
                spec.generate(config.test_samples, rng),
            )
        }
        task => {
            let spec = image_spec_for(task);
            (
                spec.generate(config.train_samples, rng),
                spec.generate(config.test_samples, rng),
            )
        }
    }
}

fn build_model(config: &FlConfig, rng: &mut StdRng) -> Sequential {
    match config.model {
        ModelChoice::PaperModel => models::model_for_task(config.task, rng),
        ModelChoice::FastSurrogate => models::fast_model_for_task(config.task, rng),
    }
}

impl FederatedTrainer {
    /// Builds a trainer on the default engine (the process-wide shared worker pool).
    ///
    /// The constructor synthesises the task's train/test data, partitions it non-IID across
    /// `N` clients, draws every client's private cost parameter θ, instantiates the global
    /// model, and (for FMore strategies) precomputes the equilibrium bidding strategy and the
    /// auction.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for inconsistent configurations,
    /// [`FlError::UnknownClient`] if a fixed selection references a missing client, and
    /// [`FlError::Auction`] if the auction components cannot be constructed.
    pub fn new(config: FlConfig, strategy: SelectionStrategy, seed: u64) -> Result<Self, FlError> {
        Self::with_engine(config, strategy, seed, RoundEngine::default())
    }

    /// Builds a trainer running its parallel stages on a caller-supplied engine (an inline
    /// engine for strict single-threaded runs, a private pool, the spawn-per-round baseline,
    /// or a pool shared with other trainers).
    ///
    /// The choice of engine never affects the produced [`TrainingHistory`] — only wall-clock.
    ///
    /// # Errors
    ///
    /// As for [`FederatedTrainer::new`].
    pub fn with_engine(
        config: FlConfig,
        strategy: SelectionStrategy,
        seed: u64,
        engine: RoundEngine,
    ) -> Result<Self, FlError> {
        config.validate()?;
        if let SelectionStrategy::Fixed(indices) = &strategy {
            if indices.is_empty() {
                return Err(FlError::InvalidConfig(
                    "fixed selection must not be empty".into(),
                ));
            }
            if let Some(&bad) = indices.iter().find(|&&i| i >= config.clients) {
                return Err(FlError::UnknownClient(bad));
            }
        }

        let mut rng = seeded_rng(seed);
        let (train_data, test_data) = generate_datasets(&config, &mut rng);
        let shards = partition_non_iid(&train_data, &config.partition, &mut rng);

        let theta_dist = UniformDist::new(config.theta_range.0, config.theta_range.1)
            .map_err(fmore_auction::AuctionError::from)?;
        let clients: Vec<EdgeClient> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                use fmore_numerics::Distribution1D;
                let theta = theta_dist.sample(&mut rng);
                EdgeClient::new(
                    NodeId(i as u64),
                    shard,
                    theta,
                    derive_seed(seed, i as u64 + 1),
                )
            })
            .collect();

        let global = build_model(&config, &mut rng);

        let (solver, auction) = match &strategy {
            SelectionStrategy::Auction(cfg) => {
                let scoring =
                    CobbDouglas::with_scale(cfg.scoring_scale, cfg.scoring_exponents.clone())?;
                let cost = LinearCost::new(cfg.cost_coefficients.clone())?;
                let bounds = vec![(0.0, 1.0); cfg.dims()];
                let solver = EquilibriumSolver::builder()
                    .scoring(scoring.clone())
                    .cost(cost)
                    .theta(theta_dist)
                    .bounds(bounds)
                    .population(config.clients)
                    .winners(config.winners_per_round)
                    .grid_size(128)
                    .build()?;
                let auction = Auction::new(
                    ScoringRule::new(scoring),
                    config.winners_per_round,
                    cfg.selection,
                    cfg.pricing,
                );
                (Some(solver), Some(auction))
            }
            _ => (None, None),
        };

        let test_indices = (0..test_data.len()).collect();
        Ok(Self {
            config,
            strategy,
            train_data: Arc::new(train_data),
            test_data,
            test_indices,
            clients,
            global,
            solver,
            auction,
            engine,
            fan_out: FanOutGranularity::default(),
            rng,
            seed,
            round: 0,
            slots: Vec::new(),
            global_params: Arc::new(Vec::new()),
            eval_arena: ScratchArena::new(),
            avg_buf: Vec::new(),
            aggregation: Arc::new(FedAvg),
            agg_scratch: AggregationScratch::new(),
        })
    }

    /// The training configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// The selection strategy in use.
    pub fn strategy(&self) -> &SelectionStrategy {
        &self.strategy
    }

    /// The engine executing this trainer's parallel stages.
    pub fn engine(&self) -> &RoundEngine {
        &self.engine
    }

    /// How local training is decomposed into executor tasks (defaults to
    /// [`FanOutGranularity::PerWinner`]).
    pub fn fan_out(&self) -> FanOutGranularity {
        self.fan_out
    }

    /// Sets the local-training fan-out granularity. Finer granularities let the scheduler
    /// pack work around straggler winners on pooled engines; the produced
    /// [`TrainingHistory`] is bit-identical at every setting.
    pub fn set_fan_out(&mut self, granularity: FanOutGranularity) {
        self.fan_out = granularity;
    }

    /// The aggregation rule applied at step 6 (defaults to plain [`FedAvg`]).
    pub fn aggregation(&self) -> &Arc<dyn AggregationRule> {
        &self.aggregation
    }

    /// Swaps the step-6 aggregation rule — e.g. a robust screen when some clients are
    /// untrusted. With the default [`FedAvg`] rule, histories are bit-identical to the
    /// unscreened baseline.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] when the rule's own parameters are degenerate.
    pub fn set_aggregation(&mut self, rule: Arc<dyn AggregationRule>) -> Result<(), FlError> {
        rule.validate()?;
        self.aggregation = rule;
        Ok(())
    }

    /// The clients participating in the game.
    pub fn clients(&self) -> &[EdgeClient] {
        &self.clients
    }

    /// The current global model parameters.
    pub fn global_parameters(&self) -> Vec<f64> {
        self.global.parameters()
    }

    /// Evaluates the current global model on the held-out test set.
    pub fn evaluate_global(&self) -> fmore_ml::model::Evaluation {
        self.global.evaluate(&self.test_data, &self.test_indices)
    }

    /// Runs `rounds` federated rounds and returns the full history.
    ///
    /// # Errors
    ///
    /// Propagates auction failures from FMore selection.
    pub fn run(&mut self, rounds: usize) -> Result<TrainingHistory, FlError> {
        let mut history = TrainingHistory::default();
        for _ in 0..rounds {
            history.rounds.push(self.run_round()?);
        }
        Ok(history)
    }

    /// Runs a single federated round: refresh client availability, select participants,
    /// train locally, aggregate, evaluate.
    ///
    /// # Errors
    ///
    /// Propagates auction failures from FMore selection.
    pub fn run_round(&mut self) -> Result<RoundMetrics, FlError> {
        self.refresh_clients();
        let (winners, all_scores) = self.select_participants()?;
        self.run_round_with(winners, all_scores)
    }

    /// Re-draws every client's per-round data availability. Called automatically by
    /// [`FederatedTrainer::run_round`]; exposed for drivers (such as the MEC cluster
    /// simulator) that perform their own selection and use
    /// [`FederatedTrainer::run_round_with`].
    pub fn refresh_clients(&mut self) {
        for client in &mut self.clients {
            client.refresh_availability(self.config.availability, &self.train_data);
        }
    }

    /// Selects this round's participants according to the configured strategy, returning the
    /// winner descriptions and (for auctions) every computed score.
    fn select_participants(&mut self) -> Result<(Vec<WinnerInfo>, Vec<f64>), FlError> {
        let k = self.config.winners_per_round;
        match &self.strategy {
            SelectionStrategy::Random => {
                let selected = sample_indices(self.clients.len(), k, &mut self.rng);
                Ok((self.plain_winners(&selected), Vec::new()))
            }
            SelectionStrategy::Fixed(indices) => {
                let selected: Vec<usize> = indices.iter().copied().take(k).collect();
                Ok((self.plain_winners(&selected), Vec::new()))
            }
            SelectionStrategy::Auction(_) => {
                let solver = self.solver.as_ref().ok_or_else(|| {
                    FlError::InvalidConfig("auction strategy without a solver".into())
                })?;
                let auction = self.auction.as_ref().ok_or_else(|| {
                    FlError::InvalidConfig("auction strategy without an auction".into())
                })?;
                let max_data = self.config.partition.size_range.1 as f64;
                let num_classes = self.train_data.num_classes();
                let bids = engine::collect_bids(&self.clients, solver, max_data, num_classes)?;
                let clients = &self.clients;
                let (winners, all_scores) =
                    engine::auction_select(auction, bids, &mut self.rng, |award| {
                        let client_idx = award.node.0 as usize;
                        let client = &clients[client_idx];
                        // The winner trains with its *declared* data size (q1 · max),
                        // never exceeding what it actually has available this round.
                        let declared =
                            (award.quality.get(0).unwrap_or(0.0) * max_data).round() as usize;
                        let data_size = declared.clamp(1, client.data_size().max(1));
                        WinnerInfo {
                            client: client_idx,
                            node: award.node,
                            data_size,
                            categories: client.categories(),
                            score: award.score,
                            payment: award.payment,
                        }
                    })?;
                Ok((winners, all_scores))
            }
        }
    }

    fn plain_winners(&self, selected: &[usize]) -> Vec<WinnerInfo> {
        selected
            .iter()
            .map(|&idx| {
                let client = &self.clients[idx];
                WinnerInfo {
                    client: idx,
                    node: client.id(),
                    data_size: client.data_size().max(1),
                    categories: client.categories(),
                    score: 0.0,
                    payment: 0.0,
                }
            })
            .collect()
    }

    /// Runs the task-assignment / local-training / global-aggregation steps for an externally
    /// determined winner set (used by the MEC cluster simulator, which performs its own
    /// three-dimensional auction before delegating the learning to this trainer). The round's
    /// churn accounting is the trivial static one: every winner completes.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::JobPanic`] if a local-training task panics; the trainer and its
    /// worker pool survive and the next round may run normally.
    pub fn run_round_with(
        &mut self,
        winners: Vec<WinnerInfo>,
        all_scores: Vec<f64>,
    ) -> Result<RoundMetrics, FlError> {
        let outcome = RoundOutcome::all_completed(winners.len());
        self.run_round_with_outcome(winners, all_scores, outcome)
    }

    /// Like [`FederatedTrainer::run_round_with`], but attaches a caller-supplied
    /// [`RoundOutcome`] — the entry point for dynamic drivers whose churn model dropped,
    /// delayed, or replaced winners before the surviving set reaches local training.
    ///
    /// `winners` must already be the post-deadline survivor set: only their updates are
    /// trained and aggregated.
    ///
    /// # Errors
    ///
    /// As for [`FederatedTrainer::run_round_with`].
    pub fn run_round_with_outcome(
        &mut self,
        winners: Vec<WinnerInfo>,
        all_scores: Vec<f64>,
        outcome: RoundOutcome,
    ) -> Result<RoundMetrics, FlError> {
        self.round += 1;
        let jobs = self.training_jobs(&winners);
        let results = engine::local_training_with(&self.engine, jobs, self.fan_out)?;
        let mut updates = Vec::with_capacity(results.len());
        for (update, state) in results {
            self.slots[update.slot] = Some(state);
            updates.push(update);
        }
        engine::aggregate_with_rule(
            self.aggregation.as_ref(),
            &updates,
            &mut self.agg_scratch,
            &mut self.avg_buf,
        )?;
        // The rule leaves `avg_buf` empty when it accepted nothing (e.g. an empty winner
        // set after total churn); the global model then simply carries over.
        if !self.avg_buf.is_empty() {
            self.global.set_parameters(&self.avg_buf);
        }
        // Hand each parameter buffer back to its slot so next round exports into it again.
        for update in updates {
            if let Some(state) = self.slots[update.slot].as_mut() {
                state.params = update.parameters;
            }
        }
        let eval =
            self.global
                .evaluate_in(&mut self.eval_arena, &self.test_data, &self.test_indices);
        Ok(RoundMetrics {
            round: self.round,
            accuracy: eval.accuracy,
            loss: eval.loss,
            winners,
            all_scores,
            outcome,
        })
    }

    /// Drops all per-slot reusable training state (models, arenas, buffers).
    ///
    /// Never changes results — the next round simply re-creates its slots from the global
    /// model, paying the warm-up allocations again. Exposed so tests can pin that slot reuse
    /// leaks no state between rounds, and for drivers that want to release memory between
    /// phases of a long experiment.
    pub fn clear_slot_state(&mut self) {
        self.slots.clear();
    }

    /// Prepares one self-contained [`TrainingJob`] per winner. This is the serial part of the
    /// local-training stage: drawing each winner's training subset through the client's own
    /// seeded RNG (in slot order, so the draw is deterministic) and snapshotting the global
    /// parameters once for all jobs to share. Each job carries its slot's reusable state
    /// (created on first use by cloning the global model); the jobs then run on the engine
    /// in any order.
    fn training_jobs(&mut self, winners: &[WinnerInfo]) -> Vec<TrainingJob> {
        // Refresh the shared parameter snapshot in place when no job from a previous round
        // still holds it (always true once a round has finished).
        match Arc::get_mut(&mut self.global_params) {
            Some(buf) => self.global.parameters_into(buf),
            None => self.global_params = Arc::new(self.global.parameters()),
        }
        if self.slots.len() < winners.len() {
            self.slots.resize_with(winners.len(), || None);
        }
        winners
            .iter()
            .enumerate()
            .map(|(slot, winner)| {
                let mut state = self.slots[slot]
                    .take()
                    .unwrap_or_else(|| SlotState::new(self.global.clone()));
                let client = &mut self.clients[winner.client];
                client.draw_training_subset_into(winner.data_size, &mut state.indices);
                TrainingJob {
                    slot,
                    client: winner.client,
                    state,
                    global_params: Arc::clone(&self.global_params),
                    data: Arc::clone(&self.train_data),
                    epochs: self.config.local_epochs,
                    learning_rate: self.config.learning_rate,
                    batch_size: self.config.batch_size,
                    seed: derive_seed(self.seed, (self.round as u64) << 32 | winner.client as u64),
                }
            })
            .collect()
    }

    /// Draws `n` fresh θ samples from the configured distribution (exposed for experiments
    /// that need to inspect the type population, e.g. the score-distribution analysis).
    pub fn sample_thetas(&mut self, n: usize) -> Vec<f64> {
        let (lo, hi) = self.config.theta_range;
        (0..n).map(|_| self.rng.gen_range(lo..hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::AuctionSelectionConfig;

    fn fast_config() -> FlConfig {
        FlConfig::fast_test(TaskKind::MnistO)
    }

    #[test]
    fn construction_validates_strategy_and_config() {
        assert!(FederatedTrainer::new(fast_config(), SelectionStrategy::random(), 1).is_ok());
        // Fixed selection referencing a missing client.
        let err = FederatedTrainer::new(fast_config(), SelectionStrategy::Fixed(vec![999]), 1)
            .unwrap_err();
        assert_eq!(err, FlError::UnknownClient(999));
        // Empty fixed selection.
        assert!(FederatedTrainer::new(fast_config(), SelectionStrategy::Fixed(vec![]), 1).is_err());
        // Invalid config propagates.
        let mut bad = fast_config();
        bad.winners_per_round = 0;
        assert!(FederatedTrainer::new(bad, SelectionStrategy::random(), 1).is_err());
    }

    #[test]
    fn randfl_round_selects_k_clients_without_payments() {
        let mut trainer =
            FederatedTrainer::new(fast_config(), SelectionStrategy::random(), 2).unwrap();
        let metrics = trainer.run_round().unwrap();
        assert_eq!(metrics.round, 1);
        assert_eq!(metrics.winners.len(), 4);
        assert!(metrics
            .winners
            .iter()
            .all(|w| w.payment == 0.0 && w.score == 0.0));
        assert!(metrics.all_scores.is_empty());
        assert!(metrics.accuracy >= 0.0 && metrics.accuracy <= 1.0);
        assert!(format!("{trainer:?}").contains("RandFL"));
    }

    #[test]
    fn fixfl_always_selects_the_same_clients() {
        let mut trainer =
            FederatedTrainer::new(fast_config(), SelectionStrategy::fixed_first(4), 3).unwrap();
        let first = trainer.run_round().unwrap();
        let second = trainer.run_round().unwrap();
        let ids = |m: &RoundMetrics| m.winners.iter().map(|w| w.client).collect::<Vec<_>>();
        assert_eq!(ids(&first), vec![0, 1, 2, 3]);
        assert_eq!(ids(&first), ids(&second));
    }

    #[test]
    fn fmore_round_produces_scores_and_payments() {
        let mut trainer =
            FederatedTrainer::new(fast_config(), SelectionStrategy::fmore(), 4).unwrap();
        let metrics = trainer.run_round().unwrap();
        assert_eq!(metrics.winners.len(), 4);
        assert_eq!(metrics.all_scores.len(), 12, "one score per bidding client");
        assert!(metrics.winners.iter().all(|w| w.payment > 0.0));
        // Winners have the best scores among all bids.
        let min_winner_score = metrics
            .winners
            .iter()
            .map(|w| w.score)
            .fold(f64::INFINITY, f64::min);
        let beaten = metrics
            .all_scores
            .iter()
            .filter(|&&s| s > min_winner_score + 1e-9)
            .count();
        assert!(
            beaten < metrics.winners.len(),
            "no more than K-1 bids may beat the worst winner"
        );
        // Winner data sizes never exceed what the client has.
        for w in &metrics.winners {
            assert!(w.data_size <= trainer.clients()[w.client].shard().size());
            assert!(w.data_size >= 1);
        }
    }

    #[test]
    fn training_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut t =
                FederatedTrainer::new(fast_config(), SelectionStrategy::fmore(), seed).unwrap();
            t.run(2).unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        let c = run(8);
        assert_ne!(a, c);
    }

    #[test]
    fn every_engine_mode_produces_the_same_history() {
        let run = |engine: RoundEngine| {
            let mut t = FederatedTrainer::with_engine(
                fast_config(),
                SelectionStrategy::fmore(),
                23,
                engine,
            )
            .unwrap();
            t.run(2).unwrap()
        };
        let inline = run(RoundEngine::inline());
        assert_eq!(inline, run(RoundEngine::spawn_per_round()));
        assert_eq!(inline, run(RoundEngine::pooled(1)));
        assert_eq!(inline, run(RoundEngine::pooled(4)));
        assert_eq!(inline, run(RoundEngine::default()));
    }

    #[test]
    fn fan_out_granularity_never_changes_the_history() {
        let run = |granularity| {
            let mut t = FederatedTrainer::with_engine(
                fast_config(),
                SelectionStrategy::fmore(),
                29,
                RoundEngine::pooled(2),
            )
            .unwrap();
            t.set_fan_out(granularity);
            assert_eq!(t.fan_out(), granularity);
            t.run(2).unwrap()
        };
        let per_winner = run(FanOutGranularity::PerWinner);
        assert_eq!(per_winner, run(FanOutGranularity::PerEpoch));
        assert_eq!(per_winner, run(FanOutGranularity::PerBatch));
    }

    #[test]
    fn accuracy_improves_over_a_few_rounds() {
        let mut config = fast_config();
        config.train_samples = 600;
        config.partition.size_range = (40, 80);
        let mut trainer = FederatedTrainer::new(config, SelectionStrategy::fmore(), 11).unwrap();
        let initial = trainer.evaluate_global().accuracy;
        let history = trainer.run(5).unwrap();
        assert!(
            history.final_accuracy() > initial + 0.15,
            "accuracy should improve: {initial} -> {}",
            history.final_accuracy()
        );
        assert_eq!(history.rounds.len(), 5);
        // Rounds are numbered consecutively from 1.
        let rounds: Vec<usize> = history.rounds.iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn external_winner_injection_is_supported() {
        let mut trainer =
            FederatedTrainer::new(fast_config(), SelectionStrategy::random(), 13).unwrap();
        let winners = vec![WinnerInfo {
            client: 0,
            node: NodeId(0),
            data_size: 10,
            categories: 2,
            score: 1.5,
            payment: 0.4,
        }];
        let metrics = trainer.run_round_with(winners, vec![1.5, 0.3]).unwrap();
        assert_eq!(metrics.round, 1);
        assert_eq!(metrics.winners.len(), 1);
        assert_eq!(metrics.all_scores, vec![1.5, 0.3]);
    }

    #[test]
    fn psi_fmore_strategy_runs() {
        let strategy = SelectionStrategy::Auction(AuctionSelectionConfig {
            selection: fmore_auction::SelectionRule::PsiFMore { psi: 0.5 },
            ..AuctionSelectionConfig::default()
        });
        let mut trainer = FederatedTrainer::new(fast_config(), strategy, 17).unwrap();
        let metrics = trainer.run_round().unwrap();
        assert_eq!(metrics.winners.len(), 4);
    }

    #[test]
    fn sampled_thetas_stay_in_range() {
        let mut trainer =
            FederatedTrainer::new(fast_config(), SelectionStrategy::random(), 19).unwrap();
        let thetas = trainer.sample_thetas(50);
        assert_eq!(thetas.len(), 50);
        assert!(thetas.iter().all(|t| (0.1..1.0).contains(t)));
        // Client thetas were drawn from the same range.
        assert!(trainer
            .clients()
            .iter()
            .all(|c| (0.1..1.0).contains(&c.theta())));
    }
}
