//! Edge clients: data shard, private cost parameter, dynamic resource provision, and bidding.

use crate::error::FlError;
use fmore_auction::{EquilibriumSolver, NodeId, Quality, SubmittedBid};
use fmore_ml::dataset::Dataset;
use fmore_ml::partition::ClientShard;
use rand::rngs::StdRng;
use rand::Rng;

/// An edge node participating in federated learning.
///
/// A client owns a data shard, a private cost parameter θ (drawn once and kept secret from
/// the aggregator), and a per-round availability: MEC nodes have other tasks, so only a
/// random fraction of the shard is offered in any given round, reproducing the "dynamic
/// resource provision" of Section II-A.
#[derive(Debug, Clone)]
pub struct EdgeClient {
    id: NodeId,
    shard: ClientShard,
    theta: f64,
    rng: StdRng,
    /// Indices (into the global dataset) available in the current round.
    available: Vec<usize>,
    /// Distinct classes among the currently available samples.
    available_categories: usize,
}

impl EdgeClient {
    /// Creates a client with the given shard, private cost parameter, and RNG seed.
    pub fn new(id: NodeId, shard: ClientShard, theta: f64, seed: u64) -> Self {
        let available = shard.indices.clone();
        let available_categories = shard.categories;
        Self {
            id,
            shard,
            theta,
            rng: fmore_numerics::seeded_rng(seed),
            available,
            available_categories,
        }
    }

    /// The client's node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The private cost parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The full data shard owned by the client.
    pub fn shard(&self) -> &ClientShard {
        &self.shard
    }

    /// Sample indices the client offers in the current round.
    pub fn available_indices(&self) -> &[usize] {
        &self.available
    }

    /// Data size offered in the current round (the `q1` resource).
    pub fn data_size(&self) -> usize {
        self.available.len()
    }

    /// Number of distinct classes among the offered samples.
    pub fn categories(&self) -> usize {
        self.available_categories
    }

    /// Category proportion `q2 ∈ (0, 1]` relative to the task's class count.
    pub fn category_proportion(&self, num_classes: usize) -> f64 {
        if num_classes == 0 {
            return 0.0;
        }
        self.available_categories as f64 / num_classes as f64
    }

    /// Re-draws the per-round availability: a uniform fraction of the shard in
    /// `availability = (lo, hi)` becomes this round's offered data.
    pub fn refresh_availability(&mut self, availability: (f64, f64), data: &Dataset) {
        let (lo, hi) = availability;
        let fraction = if hi > lo {
            self.rng.gen_range(lo..=hi)
        } else {
            hi
        };
        let target = ((self.shard.size() as f64) * fraction).round().max(1.0) as usize;
        let target = target.min(self.shard.size());
        let picked = fmore_numerics::rng::sample_indices(self.shard.size(), target, &mut self.rng);
        self.available = picked.iter().map(|&i| self.shard.indices[i]).collect();
        self.available_categories = data.category_count(&self.available);
    }

    /// Draws the subset of this round's available samples the client actually trains on,
    /// using the client's own seeded RNG.
    ///
    /// A winner may have declared (and be paid for) fewer samples than it has available; the
    /// trained subset is then a uniform draw from the availability — **not** a prefix of it.
    /// (The pre-refactor trainer took the first `take` indices, silently biasing every
    /// non-full-data round toward the front of the shard.)
    pub fn draw_training_subset(&mut self, take: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.draw_training_subset_into(take, &mut out);
        out
    }

    /// Allocation-free form of [`EdgeClient::draw_training_subset`]: writes the drawn sample
    /// indices into `out` (cleared first, capacity reused). Consumes the identical RNG
    /// stream, so the two forms are interchangeable mid-run.
    pub fn draw_training_subset_into(&mut self, take: usize, out: &mut Vec<usize>) {
        let take = take.min(self.available.len()).max(1);
        if take >= self.available.len() {
            out.clear();
            out.extend_from_slice(&self.available);
            return;
        }
        fmore_numerics::rng::sample_indices_into(self.available.len(), take, &mut self.rng, out);
        for slot in out.iter_mut() {
            *slot = self.available[*slot];
        }
    }

    /// The client's currently offered resource quality `(q1, q2)` =
    /// (data size normalised by `max_data_size`, category proportion).
    pub fn resource_quality(&self, max_data_size: f64, num_classes: usize) -> Quality {
        let q1 = if max_data_size > 0.0 {
            (self.data_size() as f64 / max_data_size).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Quality::new(vec![q1, self.category_proportion(num_classes)])
    }

    /// Computes the client's sealed bid for one FMore round.
    ///
    /// The declared quality is the Nash-equilibrium quality of Che's Theorem 1, capped by the
    /// resources the client actually has this round (it cannot promise more data or more
    /// categories than it holds); the payment ask is the equilibrium payment `p*(θ)` of
    /// Theorem 1.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Auction`] if θ lies outside the solver's support.
    pub fn make_bid(
        &self,
        solver: &EquilibriumSolver,
        max_data_size: f64,
        num_classes: usize,
    ) -> Result<SubmittedBid, FlError> {
        let capacity = self.resource_quality(max_data_size, num_classes);
        Ok(solver.capped_bid(self.id, self.theta, capacity.as_slice())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_auction::{CobbDouglas, LinearCost, PaymentMethod};
    use fmore_ml::dataset::SyntheticImageSpec;
    use fmore_ml::partition::{partition_non_iid, PartitionConfig};
    use fmore_numerics::{seeded_rng, UniformDist};

    fn setup() -> (Dataset, Vec<EdgeClient>) {
        let mut rng = seeded_rng(1);
        let data = SyntheticImageSpec::mnist_like().generate(1000, &mut rng);
        let shards = partition_non_iid(
            &data,
            &PartitionConfig {
                clients: 10,
                size_range: (30, 120),
                category_range: (2, 8),
            },
            &mut rng,
        );
        let clients = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                EdgeClient::new(
                    NodeId(i as u64),
                    shard,
                    0.1 + 0.08 * i as f64,
                    100 + i as u64,
                )
            })
            .collect();
        (data, clients)
    }

    fn solver() -> EquilibriumSolver {
        EquilibriumSolver::builder()
            .scoring(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap())
            .cost(LinearCost::new(vec![2.0, 1.0]).unwrap())
            .theta(UniformDist::new(0.1, 1.0).unwrap())
            .bounds(vec![(0.0, 1.0), (0.0, 1.0)])
            .population(10)
            .winners(3)
            .payment_method(PaymentMethod::Quadrature)
            .grid_size(64)
            .build()
            .unwrap()
    }

    #[test]
    fn client_exposes_shard_and_theta() {
        let (data, clients) = setup();
        let c = &clients[0];
        assert_eq!(c.id(), NodeId(0));
        assert!((c.theta() - 0.1).abs() < 1e-12);
        assert_eq!(c.data_size(), c.shard().size());
        assert!(c.categories() >= 1);
        assert!(c.category_proportion(data.num_classes()) > 0.0);
        assert_eq!(c.category_proportion(0), 0.0);
    }

    #[test]
    fn availability_shrinks_the_offered_data() {
        let (data, mut clients) = setup();
        let c = &mut clients[0];
        let full = c.shard().size();
        c.refresh_availability((0.5, 0.6), &data);
        assert!(c.data_size() >= (full as f64 * 0.45) as usize);
        assert!(c.data_size() <= (full as f64 * 0.65).ceil() as usize);
        // Offered indices are a subset of the shard.
        assert!(c
            .available_indices()
            .iter()
            .all(|i| c.shard().indices.contains(i)));
        // Re-drawing availability changes the offer (with very high probability).
        let first = c.available_indices().to_vec();
        c.refresh_availability((0.5, 0.6), &data);
        assert_ne!(first, c.available_indices());
    }

    #[test]
    fn resource_quality_is_normalised() {
        let (data, clients) = setup();
        let q = clients[3].resource_quality(120.0, data.num_classes());
        assert_eq!(q.dims(), 2);
        assert!(q.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        // Zero max size degenerates gracefully.
        let q0 = clients[3].resource_quality(0.0, data.num_classes());
        assert_eq!(q0.get(0), Some(0.0));
    }

    #[test]
    fn bids_are_capped_by_actual_resources_and_cover_cost() {
        let (data, clients) = setup();
        let solver = solver();
        let cost = LinearCost::new(vec![2.0, 1.0]).unwrap();
        for c in &clients {
            let bid = c.make_bid(&solver, 120.0, data.num_classes()).unwrap();
            let capacity = c.resource_quality(120.0, data.num_classes());
            assert!(
                bid.quality.dominated_by(&capacity),
                "bid must not exceed capacity"
            );
            // The ask covers the cost of the *declared* quality (declared ≤ equilibrium
            // quality, and cost is increasing, so equilibrium payment is enough).
            let c_declared =
                fmore_auction::CostFunction::value(&cost, bid.quality.as_slice(), c.theta());
            assert!(bid.ask >= c_declared - 1e-9);
        }
    }

    #[test]
    fn lower_theta_clients_achieve_higher_auction_scores() {
        // A better (cheaper) type has lower cost at the same quality, so the equilibrium
        // payment it needs is smaller and the resulting score s(q) − p is higher — the
        // mechanism's whole point.
        let (data, clients) = setup();
        let solver = solver();
        let scoring = CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap();
        let score_of = |client: &EdgeClient| {
            let bid = client.make_bid(&solver, 120.0, data.num_classes()).unwrap();
            fmore_auction::ScoringFunction::value(&scoring, bid.quality.as_slice()) - bid.ask
        };
        assert!(clients[0].theta() < clients[9].theta());
        // Compare two clients with identical capacity by construction of the solver bounds:
        // the good type's maximum attainable score is higher.
        let u_good = solver.max_score(clients[0].theta()).unwrap();
        let u_bad = solver.max_score(clients[9].theta()).unwrap();
        assert!(u_good > u_bad);
        // And its realised score is at least as good on average across the population.
        let scores: Vec<f64> = clients.iter().map(score_of).collect();
        assert!(scores[0] >= *scores.last().unwrap() - 1e-9 || u_good > u_bad);
    }
}
