//! Client-selection strategies: RandFL, FixFL, FMore, and ψ-FMore.

use fmore_auction::{PricingRule, SelectionRule};

/// Configuration of the FMore auction used for client selection in the simulator.
///
/// The default reproduces Section V-A: scoring `s(q1, q2) = 25·q1·q2` over the normalised
/// data-size and category-proportion resources, first-price payment, linear private cost.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionSelectionConfig {
    /// Multiplicative scale α of the Cobb–Douglas scoring (25 in the paper's simulator).
    pub scoring_scale: f64,
    /// Per-resource exponents of the Cobb–Douglas scoring function.
    pub scoring_exponents: Vec<f64>,
    /// Per-resource coefficients β of the linear private cost `c(q, θ) = θ Σ βi qi`.
    pub cost_coefficients: Vec<f64>,
    /// How winners are paid.
    pub pricing: PricingRule,
    /// How the winner set is formed (plain top-K or ψ-FMore).
    pub selection: SelectionRule,
}

impl Default for AuctionSelectionConfig {
    fn default() -> Self {
        Self {
            scoring_scale: 25.0,
            scoring_exponents: vec![1.0, 1.0],
            cost_coefficients: vec![2.0, 1.0],
            pricing: PricingRule::FirstPrice,
            selection: SelectionRule::TopK,
        }
    }
}

impl AuctionSelectionConfig {
    /// Number of resource dimensions.
    pub fn dims(&self) -> usize {
        self.scoring_exponents.len()
    }
}

/// How the aggregator chooses the `K` participants of each round.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionStrategy {
    /// RandFL: `K` clients chosen uniformly at random (McMahan et al.).
    Random,
    /// FixFL: the same `K` clients (given by their indices) train every round.
    Fixed(Vec<usize>),
    /// FMore / ψ-FMore: clients bid, the auction selects and pays the winners.
    Auction(AuctionSelectionConfig),
}

impl SelectionStrategy {
    /// RandFL.
    pub fn random() -> Self {
        SelectionStrategy::Random
    }

    /// FixFL over the first `k` clients.
    pub fn fixed_first(k: usize) -> Self {
        SelectionStrategy::Fixed((0..k).collect())
    }

    /// FMore with the paper's simulator auction configuration.
    pub fn fmore() -> Self {
        SelectionStrategy::Auction(AuctionSelectionConfig::default())
    }

    /// ψ-FMore with the paper's simulator auction configuration and admission probability ψ.
    pub fn psi_fmore(psi: f64) -> Self {
        SelectionStrategy::Auction(AuctionSelectionConfig {
            selection: SelectionRule::PsiFMore { psi },
            ..AuctionSelectionConfig::default()
        })
    }

    /// Short name used in experiment reports and figures ("FMore", "RandFL", "FixFL",
    /// "ψ-FMore").
    pub fn name(&self) -> &'static str {
        match self {
            SelectionStrategy::Random => "RandFL",
            SelectionStrategy::Fixed(_) => "FixFL",
            SelectionStrategy::Auction(cfg) => match cfg.selection {
                SelectionRule::TopK => "FMore",
                SelectionRule::PsiFMore { .. } => "psi-FMore",
            },
        }
    }

    /// Whether the strategy runs an auction (and therefore produces scores and payments).
    pub fn uses_auction(&self) -> bool {
        matches!(self, SelectionStrategy::Auction(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_names() {
        assert_eq!(SelectionStrategy::random().name(), "RandFL");
        assert_eq!(SelectionStrategy::fixed_first(5).name(), "FixFL");
        assert_eq!(SelectionStrategy::fmore().name(), "FMore");
        assert_eq!(SelectionStrategy::psi_fmore(0.7).name(), "psi-FMore");
        assert!(SelectionStrategy::fmore().uses_auction());
        assert!(!SelectionStrategy::random().uses_auction());
    }

    #[test]
    fn fixed_first_enumerates_clients() {
        let strategy = SelectionStrategy::fixed_first(3);
        assert!(
            matches!(&strategy, SelectionStrategy::Fixed(idx) if *idx == vec![0, 1, 2]),
            "unexpected {strategy:?}"
        );
    }

    #[test]
    fn default_auction_config_matches_paper_simulator() {
        let cfg = AuctionSelectionConfig::default();
        assert_eq!(cfg.scoring_scale, 25.0);
        assert_eq!(cfg.dims(), 2);
        assert_eq!(cfg.pricing, PricingRule::FirstPrice);
        assert_eq!(cfg.selection, SelectionRule::TopK);
    }

    #[test]
    fn psi_fmore_embeds_psi() {
        let strategy = SelectionStrategy::psi_fmore(0.4);
        assert!(
            matches!(
                &strategy,
                SelectionStrategy::Auction(cfg)
                    if cfg.selection == SelectionRule::PsiFMore { psi: 0.4 }
            ),
            "unexpected {strategy:?}"
        );
    }
}
