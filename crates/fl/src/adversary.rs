//! Seeded adversary models and the reputation loop back into the auction.
//!
//! [`crate::faults`] covers *crash* faults — panics, stalls, dropouts — injected into a
//! round's execution. This module covers *adversarial* participants: nodes that are alive
//! and responsive but strategically dishonest. [`AdversaryPlan`] describes a population's
//! adversary mix with per-class rates (untruthful over/under-bids, quality misreports,
//! sign-flip and scaled-gradient poisoning, stale/zero free-rider updates, and seeded
//! colluding cartels); [`AdversaryClock`] turns the plan into draws that are a pure
//! function of `(plan seed ⊕ job seed, round, slot)`, so an adversarial run replays
//! bit-for-bit across worker-pool widths.
//!
//! Unlike [`crate::faults::FaultClock`], the clock's draws are **attempt-independent**:
//! an adversary's bid is part of the auction itself, and a watchdog retry of the round
//! must replay the same auction — retrying does not give the adversary a second roll.
//! (Crash faults retry differently on purpose; dishonesty does not.)
//!
//! [`ReputationLedger`] closes the loop: quarantine verdicts from the aggregation rule
//! become per-node reputation, which the service feeds back into [`fmore_auction`]'s
//! `BidStore` selection — down-weighting suspect bids and excluding nodes below a
//! threshold. When exclusion empties a round's bid book entirely, the service fails the
//! round with the typed, retryable [`crate::FlError::AllBiddersExcluded`] — never a panic,
//! never a silently poisoned model.

use std::collections::BTreeMap;

use crate::error::FlError;
use fmore_numerics::rng::derive_seed;

/// Per-class adversary rates of one job's population. All rates are probabilities in
/// `[0, 1]`; the bid-class rates and the poison-class rates each share a single draw, so
/// each family must sum to at most 1 (validated by [`AdversaryPlan::validate`]).
///
/// Membership is drawn **per node** (round-independent), so a node is the same honest
/// or adversarial actor for the whole job — the property the reputation loop learns.
/// Which lie an adversary tells is drawn per `(round, node)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryPlan {
    /// Seed word mixed with the job seed; two jobs sharing a plan draw independently.
    pub seed: u64,
    /// Fraction of the population that is adversarial at all.
    pub adversary_rate: f64,
    /// Fraction of adversaries that belong to the colluding cartel. Cartel members
    /// coordinate: they always bid the cartel line (boosted quality, cut-rate ask) and
    /// always poison with a sign flip, instead of drawing per-round behavior.
    pub cartel_rate: f64,
    /// Per-round chance a (non-cartel) adversary overbids — asks above its true cost.
    pub overbid_rate: f64,
    /// Multiplier applied to the ask when overbidding (≥ 1).
    pub overbid_factor: f64,
    /// Per-round chance a (non-cartel) adversary underbids to buy the win.
    pub underbid_rate: f64,
    /// Multiplier applied to the ask when underbidding (in `(0, 1]`).
    pub underbid_factor: f64,
    /// Per-round chance a (non-cartel) adversary misreports its qualities upward.
    pub misreport_rate: f64,
    /// Multiplier applied to every quality when misreporting (result capped at 1).
    pub misreport_factor: f64,
    /// Per-round chance a (non-cartel) adversary sign-flips its model update.
    pub sign_flip_rate: f64,
    /// Per-round chance a (non-cartel) adversary scales its update by `scale_factor`.
    pub scaled_rate: f64,
    /// Gradient-scaling factor of the `scaled` poison class.
    pub scale_factor: f64,
    /// Per-round chance a (non-cartel) adversary free-rides: a stale, all-zero update.
    pub free_rider_rate: f64,
}

impl Default for AdversaryPlan {
    fn default() -> Self {
        Self::honest(0)
    }
}

impl AdversaryPlan {
    /// The all-honest plan: zero adversaries, neutral factors. Decorating a job with this
    /// plan is a bitwise no-op — every existing golden fingerprint reproduces exactly.
    pub fn honest(seed: u64) -> Self {
        Self {
            seed,
            adversary_rate: 0.0,
            cartel_rate: 0.0,
            overbid_rate: 0.0,
            overbid_factor: 1.0,
            underbid_rate: 0.0,
            underbid_factor: 1.0,
            misreport_rate: 0.0,
            misreport_factor: 1.0,
            sign_flip_rate: 0.0,
            scaled_rate: 0.0,
            scale_factor: 1.0,
            free_rider_rate: 0.0,
        }
    }

    /// The reference Byzantine mix of the `adversary-soak` experiment: 30% of nodes are
    /// adversarial, a quarter of those collude, and every adversary poisons every round
    /// (the poison-class rates sum to 1).
    pub fn byzantine(seed: u64) -> Self {
        Self {
            seed,
            adversary_rate: 0.3,
            cartel_rate: 0.25,
            overbid_rate: 0.15,
            overbid_factor: 1.5,
            underbid_rate: 0.25,
            underbid_factor: 0.5,
            misreport_rate: 0.35,
            misreport_factor: 1.6,
            sign_flip_rate: 0.45,
            scaled_rate: 0.3,
            scale_factor: 25.0,
            free_rider_rate: 0.25,
        }
    }

    /// Whether the plan can produce any adversarial behavior at all. Drivers skip the
    /// adversary machinery entirely for inactive plans.
    pub fn is_active(&self) -> bool {
        self.adversary_rate > 0.0
    }

    /// Validates every rate to `[0, 1]`, the shared-draw budgets to ≤ 1, and the factors
    /// to usable ranges — at construction, not at draw time, so an out-of-range threshold
    /// can never silently skew the draw distribution.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FlError> {
        let rates = [
            ("adversary_rate", self.adversary_rate),
            ("cartel_rate", self.cartel_rate),
            ("overbid_rate", self.overbid_rate),
            ("underbid_rate", self.underbid_rate),
            ("misreport_rate", self.misreport_rate),
            ("sign_flip_rate", self.sign_flip_rate),
            ("scaled_rate", self.scaled_rate),
            ("free_rider_rate", self.free_rider_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(FlError::InvalidConfig(format!(
                    "adversary plan {name} {rate} must be within [0, 1]"
                )));
            }
        }
        let bid_budget = self.overbid_rate + self.underbid_rate + self.misreport_rate;
        if bid_budget > 1.0 {
            return Err(FlError::InvalidConfig(format!(
                "adversary plan bid-class rates sum to {bid_budget} > 1 (they share one \
                 draw)"
            )));
        }
        let poison_budget = self.sign_flip_rate + self.scaled_rate + self.free_rider_rate;
        if poison_budget > 1.0 {
            return Err(FlError::InvalidConfig(format!(
                "adversary plan poison-class rates sum to {poison_budget} > 1 (they share \
                 one draw)"
            )));
        }
        if !self.overbid_factor.is_finite() || self.overbid_factor < 1.0 {
            return Err(FlError::InvalidConfig(format!(
                "adversary plan overbid_factor {} must be finite and >= 1",
                self.overbid_factor
            )));
        }
        if !self.underbid_factor.is_finite()
            || self.underbid_factor <= 0.0
            || self.underbid_factor > 1.0
        {
            return Err(FlError::InvalidConfig(format!(
                "adversary plan underbid_factor {} must be within (0, 1]",
                self.underbid_factor
            )));
        }
        if !self.misreport_factor.is_finite() || self.misreport_factor < 1.0 {
            return Err(FlError::InvalidConfig(format!(
                "adversary plan misreport_factor {} must be finite and >= 1",
                self.misreport_factor
            )));
        }
        if !self.scale_factor.is_finite() {
            return Err(FlError::InvalidConfig(format!(
                "adversary plan scale_factor {} must be finite",
                self.scale_factor
            )));
        }
        Ok(())
    }
}

/// How an adversarial node distorts its bid this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BidDistortion {
    /// Ask inflated by `overbid_factor` (extracting rent if it still wins).
    Overbid,
    /// Ask cut by `underbid_factor` (buying the win below cost).
    Underbid,
    /// Qualities inflated by `misreport_factor`, capped at 1.
    Misreport,
    /// The cartel line: boosted qualities *and* a cut-rate ask, every round.
    Cartel,
}

impl BidDistortion {
    /// Applies the distortion in place to one bid's quality row and ask.
    pub fn apply(self, plan: &AdversaryPlan, qualities: &mut [f64], ask: &mut f64) {
        match self {
            BidDistortion::Overbid => *ask *= plan.overbid_factor,
            BidDistortion::Underbid => *ask *= plan.underbid_factor,
            BidDistortion::Misreport => {
                for q in qualities.iter_mut() {
                    *q = (*q * plan.misreport_factor).min(1.0);
                }
            }
            BidDistortion::Cartel => {
                for q in qualities.iter_mut() {
                    *q = (*q * plan.misreport_factor).min(1.0);
                }
                *ask *= plan.underbid_factor;
            }
        }
    }
}

/// How an adversarial winner poisons its model update this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poison {
    /// Every parameter negated — the classic gradient-reversal attack.
    SignFlip,
    /// Every parameter multiplied by `scale_factor`.
    Scaled,
    /// A stale, all-zero update: the node takes the payment without training.
    FreeRider,
}

impl Poison {
    /// Applies the poison in place to one update's parameter vector.
    pub fn apply(self, plan: &AdversaryPlan, params: &mut [f64]) {
        match self {
            Poison::SignFlip => {
                for p in params.iter_mut() {
                    *p = -*p;
                }
            }
            Poison::Scaled => {
                for p in params.iter_mut() {
                    *p *= plan.scale_factor;
                }
            }
            Poison::FreeRider => {
                for p in params.iter_mut() {
                    *p = 0.0;
                }
            }
        }
    }
}

// Draw channels, disjoint from the fault channels (0xF1–0xF5): distinct words folded
// into the seed chain so each adversary decision draws an independent uniform.
const CH_MEMBER: u64 = 0xA1;
const CH_CARTEL: u64 = 0xA2;
const CH_BID: u64 = 0xA3;
const CH_POISON: u64 = 0xA5;

/// The deterministic adversary stream of one job: `derive_seed`-chained uniforms keyed by
/// `(plan seed ⊕ job seed, round, slot, channel)` — **no attempt key**, see the module
/// docs. Membership draws use round 0 regardless of the queried round, making a node's
/// honesty a stable fact of the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryClock {
    seed: u64,
}

impl AdversaryClock {
    /// Binds a plan to a job, mirroring [`crate::faults::FaultClock::new`].
    pub fn new(plan: &AdversaryPlan, job_seed: u64) -> Self {
        Self {
            seed: derive_seed(plan.seed, job_seed),
        }
    }

    /// Deterministic uniform draw in `[0, 1)` — the same mantissa construction as the
    /// fault clock, minus the attempt derivation.
    fn uniform(&self, round: u64, slot: u64, channel: u64) -> f64 {
        let h = derive_seed(
            derive_seed(derive_seed(self.seed, round), slot + 1),
            channel,
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether `node` is adversarial for this job (stable across rounds and retries).
    pub fn is_adversary(&self, plan: &AdversaryPlan, node: u64) -> bool {
        plan.is_active() && self.uniform(0, node, CH_MEMBER) < plan.adversary_rate
    }

    /// Whether `node` belongs to the colluding cartel (implies [`Self::is_adversary`]).
    pub fn in_cartel(&self, plan: &AdversaryPlan, node: u64) -> bool {
        self.is_adversary(plan, node) && self.uniform(0, node, CH_CARTEL) < plan.cartel_rate
    }

    /// The bid distortion (if any) `node` applies in `round`. Cartel members always bid
    /// the cartel line; independent adversaries draw one of the bid classes per round
    /// (and may bid honestly when the class rates leave slack).
    pub fn bid_distortion(
        &self,
        plan: &AdversaryPlan,
        round: u64,
        node: u64,
    ) -> Option<BidDistortion> {
        if !self.is_adversary(plan, node) {
            return None;
        }
        if self.in_cartel(plan, node) {
            return Some(BidDistortion::Cartel);
        }
        let u = self.uniform(round, node, CH_BID);
        if u < plan.overbid_rate {
            Some(BidDistortion::Overbid)
        } else if u < plan.overbid_rate + plan.underbid_rate {
            Some(BidDistortion::Underbid)
        } else if u < plan.overbid_rate + plan.underbid_rate + plan.misreport_rate {
            Some(BidDistortion::Misreport)
        } else {
            None
        }
    }

    /// The update poison (if any) `node` applies to its winning update in `round`.
    /// Cartel members always sign-flip (a coordinated attack concentrates its direction).
    pub fn update_poison(&self, plan: &AdversaryPlan, round: u64, node: u64) -> Option<Poison> {
        if !self.is_adversary(plan, node) {
            return None;
        }
        if self.in_cartel(plan, node) {
            return Some(Poison::SignFlip);
        }
        let u = self.uniform(round, node, CH_POISON);
        if u < plan.sign_flip_rate {
            Some(Poison::SignFlip)
        } else if u < plan.sign_flip_rate + plan.scaled_rate {
            Some(Poison::Scaled)
        } else if u < plan.sign_flip_rate + plan.scaled_rate + plan.free_rider_rate {
            Some(Poison::FreeRider)
        } else {
            None
        }
    }
}

/// Parameters of the reputation loop. Scores live in `[0, 1]`; every node starts at
/// `initial`, accepted updates earn `reward`, quarantined updates cost `penalty`, and a
/// node whose score falls below `exclusion_threshold` has its bids dropped from the book
/// before winner determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationSpec {
    /// Score every untracked node is presumed to have.
    pub initial: f64,
    /// Score earned per accepted (non-quarantined) update.
    pub reward: f64,
    /// Score lost per quarantined update.
    pub penalty: f64,
    /// Bids from nodes scoring strictly below this are excluded from selection.
    pub exclusion_threshold: f64,
}

impl ReputationSpec {
    /// The reference loop of the `adversary-soak` experiment: full initial trust, slow
    /// forgiveness (+0.05), fast distrust (−0.25), exclusion below 0.25 — three strikes.
    pub fn standard() -> Self {
        Self {
            initial: 1.0,
            reward: 0.05,
            penalty: 0.25,
            exclusion_threshold: 0.25,
        }
    }

    /// The harsh loop: one quarantine halves a node's influence, a second excludes it —
    /// two strikes. Suits small fleets where a repeat offender re-wins quickly.
    pub fn strict() -> Self {
        Self {
            initial: 1.0,
            reward: 0.05,
            penalty: 0.5,
            exclusion_threshold: 0.5,
        }
    }

    /// Validates every field to `[0, 1]` at construction.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FlError> {
        for (name, value) in [
            ("initial", self.initial),
            ("reward", self.reward),
            ("penalty", self.penalty),
            ("exclusion_threshold", self.exclusion_threshold),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FlError::InvalidConfig(format!(
                    "reputation spec {name} {value} must be within [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Per-node reputation, accumulated from aggregation verdicts. Sparse: only nodes whose
/// score has ever left `spec.initial` occupy memory, so a mostly-honest fleet tracks a
/// handful of entries regardless of population size.
#[derive(Debug, Clone, PartialEq)]
pub struct ReputationLedger {
    spec: ReputationSpec,
    scores: BTreeMap<u64, f64>,
}

impl ReputationLedger {
    /// An empty ledger under `spec` — every node at `spec.initial`.
    pub fn new(spec: ReputationSpec) -> Self {
        Self {
            spec,
            scores: BTreeMap::new(),
        }
    }

    /// The spec this ledger runs under.
    pub fn spec(&self) -> &ReputationSpec {
        &self.spec
    }

    /// Current score of `node` (the presumed `initial` when untracked).
    pub fn score(&self, node: u64) -> f64 {
        self.scores.get(&node).copied().unwrap_or(self.spec.initial)
    }

    /// Whether `node`'s bids are excluded from selection.
    pub fn excluded(&self, node: u64) -> bool {
        self.score(node) < self.spec.exclusion_threshold
    }

    /// Applies one round verdict for `node`: accepted updates earn `reward`, quarantined
    /// ones cost `penalty`, clamped to `[0, 1]`. A node resting at `initial` whose score
    /// would not move is not inserted, keeping the ledger sparse.
    pub fn record(&mut self, node: u64, accepted: bool) {
        let current = self.score(node);
        let next = if accepted {
            (current + self.spec.reward).min(1.0)
        } else {
            (current - self.spec.penalty).max(0.0)
        };
        if next != current || self.scores.contains_key(&node) {
            self.scores.insert(node, next);
        }
    }

    /// Number of nodes whose score has ever moved off `initial`.
    pub fn tracked(&self) -> usize {
        self.scores.len()
    }

    /// The tracked `(node, score)` pairs in node order — the checkpoint serialisation.
    pub fn entries(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.scores.iter().map(|(&node, &score)| (node, score))
    }

    /// Rebuilds a ledger from checkpointed entries (inverse of [`Self::entries`]).
    pub fn from_entries(
        spec: ReputationSpec,
        entries: impl IntoIterator<Item = (u64, f64)>,
    ) -> Self {
        Self {
            spec,
            scores: entries.into_iter().collect(),
        }
    }

    /// An immutable snapshot for the round's fill closures (which run on worker threads):
    /// the scores as of the round's start, under the same spec. Selection within one round
    /// sees one consistent reputation state however wide the pool is.
    pub fn snapshot(&self) -> ReputationFilter {
        ReputationFilter {
            spec: self.spec,
            scores: self.scores.clone(),
        }
    }
}

/// Frozen per-round view of a [`ReputationLedger`], applied to bids as they stream into
/// the book: suspect bids are down-weighted (every quality multiplied by the node's
/// score), excluded nodes are dropped. Nodes at full score pass through untouched —
/// bit-for-bit — so an all-honest fleet's auction is unchanged by the filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ReputationFilter {
    spec: ReputationSpec,
    scores: BTreeMap<u64, f64>,
}

impl ReputationFilter {
    /// Current score of `node` under the snapshot.
    pub fn score(&self, node: u64) -> f64 {
        self.scores.get(&node).copied().unwrap_or(self.spec.initial)
    }

    /// Applies the filter to one bid in place. Returns `false` when the bid must be
    /// dropped (node excluded). Scores at exactly 1 leave the bid untouched, so honest
    /// histories stay bit-identical.
    pub fn revise(&self, node: u64, qualities: &mut [f64], _ask: &mut f64) -> bool {
        let score = self.score(node);
        if score < self.spec.exclusion_threshold {
            return false;
        }
        if score < 1.0 {
            for q in qualities.iter_mut() {
                *q *= score;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_plan_is_inert() {
        let plan = AdversaryPlan::honest(99);
        plan.validate().unwrap();
        assert!(!plan.is_active());
        let clock = AdversaryClock::new(&plan, 1234);
        for node in 0..500 {
            assert!(!clock.is_adversary(&plan, node));
            assert!(!clock.in_cartel(&plan, node));
            assert_eq!(clock.bid_distortion(&plan, 3, node), None);
            assert_eq!(clock.update_poison(&plan, 3, node), None);
        }
    }

    #[test]
    fn membership_is_stable_and_hits_the_plan_rate() {
        let plan = AdversaryPlan::byzantine(42);
        plan.validate().unwrap();
        let clock = AdversaryClock::new(&plan, 7);
        let adversaries = (0..10_000u64)
            .filter(|&n| clock.is_adversary(&plan, n))
            .count();
        let rate = adversaries as f64 / 10_000.0;
        assert!(
            (rate - plan.adversary_rate).abs() < 0.02,
            "empirical adversary rate {rate} far from planned {}",
            plan.adversary_rate
        );
        // Same clock, same verdicts — and an equal clock built from equal inputs agrees.
        let again = AdversaryClock::new(&plan, 7);
        for node in 0..200 {
            assert_eq!(
                clock.is_adversary(&plan, node),
                again.is_adversary(&plan, node)
            );
            assert_eq!(
                clock.bid_distortion(&plan, 11, node),
                again.bid_distortion(&plan, 11, node)
            );
        }
        // Membership does not depend on the round queried.
        for node in 0..200 {
            let base = clock.is_adversary(&plan, node);
            assert_eq!(clock.update_poison(&plan, 1, node).is_some(), base);
            assert_eq!(clock.update_poison(&plan, 9, node).is_some(), base);
        }
    }

    #[test]
    fn cartel_members_collude_every_round() {
        let plan = AdversaryPlan::byzantine(42);
        let clock = AdversaryClock::new(&plan, 7);
        let cartel: Vec<u64> = (0..2_000).filter(|&n| clock.in_cartel(&plan, n)).collect();
        assert!(
            !cartel.is_empty(),
            "a 7.5% cartel should appear in 2000 nodes"
        );
        for &node in &cartel {
            assert!(clock.is_adversary(&plan, node));
            for round in 0..5 {
                assert_eq!(
                    clock.bid_distortion(&plan, round, node),
                    Some(BidDistortion::Cartel)
                );
                assert_eq!(
                    clock.update_poison(&plan, round, node),
                    Some(Poison::SignFlip)
                );
            }
        }
    }

    #[test]
    fn independent_adversaries_vary_their_lies_by_round() {
        let plan = AdversaryPlan::byzantine(42);
        let clock = AdversaryClock::new(&plan, 7);
        let loner = (0..5_000u64)
            .find(|&n| clock.is_adversary(&plan, n) && !clock.in_cartel(&plan, n))
            .expect("an independent adversary exists");
        let distortions: Vec<_> = (0..64)
            .map(|round| clock.bid_distortion(&plan, round, loner))
            .collect();
        assert!(
            distortions
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1,
            "64 rounds should show more than one bid behavior"
        );
        // Poison classes sum to 1 in the byzantine preset: every round poisons.
        for round in 0..64 {
            assert!(clock.update_poison(&plan, round, loner).is_some());
        }
    }

    #[test]
    fn distortions_and_poisons_apply_as_documented() {
        let plan = AdversaryPlan::byzantine(0);
        let mut q = [0.5, 0.9];
        let mut ask = 10.0;
        BidDistortion::Overbid.apply(&plan, &mut q, &mut ask);
        assert_eq!(ask, 15.0);
        BidDistortion::Underbid.apply(&plan, &mut q, &mut ask);
        assert_eq!(ask, 7.5);
        BidDistortion::Misreport.apply(&plan, &mut q, &mut ask);
        assert_eq!(q, [0.8, 1.0], "misreport caps at 1");
        let mut q = [0.5, 0.5];
        BidDistortion::Cartel.apply(&plan, &mut q, &mut ask);
        assert_eq!(q, [0.8, 0.8]);
        assert_eq!(ask, 3.75);

        let mut params = [1.0, -2.0, 0.5];
        Poison::SignFlip.apply(&plan, &mut params);
        assert_eq!(params, [-1.0, 2.0, -0.5]);
        Poison::Scaled.apply(&plan, &mut params);
        assert_eq!(params, [-25.0, 50.0, -12.5]);
        Poison::FreeRider.apply(&plan, &mut params);
        assert_eq!(params, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn plan_validation_rejects_out_of_range_rates_and_budgets() {
        type Mutation = Box<dyn Fn(&mut AdversaryPlan)>;
        let cases: Vec<(&str, Mutation)> = vec![
            ("adversary_rate", Box::new(|p| p.adversary_rate = 1.2)),
            ("cartel_rate", Box::new(|p| p.cartel_rate = -0.1)),
            ("sign_flip_rate", Box::new(|p| p.sign_flip_rate = f64::NAN)),
            (
                "bid-class budget",
                Box::new(|p| {
                    p.overbid_rate = 0.6;
                    p.underbid_rate = 0.6;
                }),
            ),
            (
                "poison budget",
                Box::new(|p| {
                    p.sign_flip_rate = 0.9;
                    p.scaled_rate = 0.2;
                }),
            ),
            ("overbid_factor", Box::new(|p| p.overbid_factor = 0.5)),
            ("underbid_factor", Box::new(|p| p.underbid_factor = 0.0)),
            (
                "misreport_factor",
                Box::new(|p| p.misreport_factor = f64::INFINITY),
            ),
            ("scale_factor", Box::new(|p| p.scale_factor = f64::NAN)),
        ];
        for (what, poison) in cases {
            let mut plan = AdversaryPlan::byzantine(1);
            // Reset the shared-draw families so single-field checks aren't masked.
            plan.overbid_rate = 0.1;
            plan.underbid_rate = 0.1;
            plan.misreport_rate = 0.1;
            plan.sign_flip_rate = 0.1;
            plan.scaled_rate = 0.1;
            plan.free_rider_rate = 0.1;
            poison(&mut plan);
            let err = plan
                .validate()
                .expect_err(&format!("{what} should be rejected"));
            assert!(matches!(err, FlError::InvalidConfig(_)), "{what}: {err}");
        }
        AdversaryPlan::honest(3).validate().unwrap();
        AdversaryPlan::byzantine(3).validate().unwrap();
    }

    #[test]
    fn ledger_rewards_penalises_and_stays_sparse() {
        let spec = ReputationSpec::standard();
        spec.validate().unwrap();
        let mut ledger = ReputationLedger::new(spec);
        assert_eq!(ledger.score(42), 1.0);
        assert!(!ledger.excluded(42));

        // Accepting a node already at full score does not allocate an entry.
        ledger.record(42, true);
        assert_eq!(ledger.tracked(), 0);

        // Three strikes: 1.0 → 0.75 → 0.5 → 0.25 (excluded only below the threshold),
        // then a fourth pushes it under.
        ledger.record(7, false);
        ledger.record(7, false);
        ledger.record(7, false);
        assert_eq!(ledger.score(7), 0.25);
        assert!(!ledger.excluded(7));
        ledger.record(7, false);
        assert_eq!(ledger.score(7), 0.0);
        assert!(ledger.excluded(7));
        assert_eq!(ledger.tracked(), 1);

        // Forgiveness is slow and clamps at 1.
        for _ in 0..40 {
            ledger.record(7, true);
        }
        assert_eq!(ledger.score(7), 1.0);
        assert!(!ledger.excluded(7));
        // The entry persists once tracked (history, not presumption).
        assert_eq!(ledger.tracked(), 1);
    }

    #[test]
    fn ledger_round_trips_through_entries() {
        let mut ledger = ReputationLedger::new(ReputationSpec::standard());
        ledger.record(3, false);
        ledger.record(9, false);
        ledger.record(9, false);
        let rebuilt =
            ReputationLedger::from_entries(*ledger.spec(), ledger.entries().collect::<Vec<_>>());
        assert_eq!(ledger, rebuilt);
    }

    #[test]
    fn filter_down_weights_and_excludes_but_passes_full_scores_untouched() {
        let mut ledger = ReputationLedger::new(ReputationSpec::standard());
        ledger.record(1, false); // 0.75: down-weighted
        ledger.record(2, false);
        ledger.record(2, false);
        ledger.record(2, false);
        ledger.record(2, false); // 0.0: excluded
        let filter = ledger.snapshot();

        let mut q = [0.5f64, 1.0];
        let mut ask = 2.0;
        assert!(filter.revise(0, &mut q, &mut ask));
        assert_eq!(q, [0.5, 1.0], "full score leaves the bid untouched");
        assert_eq!(ask, 2.0);

        assert!(filter.revise(1, &mut q, &mut ask));
        assert_eq!(q, [0.375, 0.75]);

        assert!(
            !filter.revise(2, &mut q, &mut ask),
            "zero score is excluded"
        );

        assert_eq!(filter.score(1), 0.75);
    }

    #[test]
    fn reputation_spec_validation_rejects_out_of_range_fields() {
        for poison in [
            |s: &mut ReputationSpec| s.initial = 1.5,
            |s: &mut ReputationSpec| s.reward = -0.1,
            |s: &mut ReputationSpec| s.penalty = f64::NAN,
            |s: &mut ReputationSpec| s.exclusion_threshold = 2.0,
        ] {
            let mut spec = ReputationSpec::standard();
            poison(&mut spec);
            assert!(matches!(spec.validate(), Err(FlError::InvalidConfig(_))));
        }
    }
}
