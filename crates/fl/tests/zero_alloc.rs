//! The zero-allocation guarantee of the training hot path, asserted at the level of a full
//! federated round.
//!
//! Runs only with the `alloc-count` feature, which compiles in fmore-ml's thread-local
//! matrix-allocation counter:
//!
//! ```bash
//! cargo test -p fmore-fl --features alloc-count
//! ```
//!
//! The rounds run on the inline engine so every matrix allocation lands on this test's
//! thread (the counter is thread-local precisely so concurrently running tests cannot
//! pollute it). Inline and pooled execution share the identical slot-state code path — the
//! determinism suite pins that their histories are bit-identical — so the inline assertion
//! covers the pooled round too.

#![cfg(feature = "alloc-count")]

use fmore_fl::config::FlConfig;
use fmore_fl::engine::RoundEngine;
use fmore_fl::selection::SelectionStrategy;
use fmore_fl::trainer::FederatedTrainer;
use fmore_ml::dataset::TaskKind;
use fmore_ml::matrix::alloc_count;

/// After the warm-up rounds have sized every slot arena, further rounds — selection, local
/// training across all winners, FedAvg, and the global evaluation — allocate no matrices.
#[test]
fn steady_state_round_is_matrix_allocation_free() {
    for strategy in [SelectionStrategy::random(), SelectionStrategy::fmore()] {
        let mut trainer = FederatedTrainer::with_engine(
            FlConfig::fast_test(TaskKind::MnistO),
            strategy.clone(),
            7,
            RoundEngine::inline(),
        )
        .expect("fast config is valid");
        // Warm-up: the first rounds size slot models, arenas, and parameter buffers (batch
        // shapes vary with the drawn subsets, so give every buffer a chance to reach its
        // steady-state capacity).
        for _ in 0..3 {
            trainer.run_round().expect("warm-up round runs");
        }
        alloc_count::reset();
        for _ in 0..3 {
            trainer.run_round().expect("steady-state round runs");
        }
        assert_eq!(
            alloc_count::count(),
            0,
            "{}: steady-state rounds must perform zero matrix allocations",
            strategy.name()
        );
    }
}

/// Clearing the slot state forces the warm-up allocations again — demonstrating the counter
/// actually observes this workload (the zero above is not vacuous).
#[test]
fn cleared_slots_pay_warmup_allocations_again() {
    let mut trainer = FederatedTrainer::with_engine(
        FlConfig::fast_test(TaskKind::MnistO),
        SelectionStrategy::random(),
        8,
        RoundEngine::inline(),
    )
    .expect("fast config is valid");
    for _ in 0..3 {
        trainer.run_round().expect("warm-up round runs");
    }
    trainer.clear_slot_state();
    alloc_count::reset();
    trainer.run_round().expect("post-clear round runs");
    assert!(
        alloc_count::count() > 0,
        "recreating slot state must be visible to the allocation counter"
    );
}
