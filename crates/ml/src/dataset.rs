//! Synthetic datasets standing in for MNIST, Fashion-MNIST, CIFAR-10, and the HuffPost news
//! corpus.
//!
//! The paper's evaluation does not depend on the pixel statistics of the real datasets; it
//! depends on (a) a 10-class classification task, (b) accuracy being an increasing, concave
//! function of the amount and category diversity of training data a selected client holds,
//! and (c) a difficulty ordering MNIST < Fashion-MNIST < CIFAR-10 ≈ HPNews that makes the gap
//! between selection strategies grow with task difficulty. The generators below preserve all
//! three properties (see DESIGN.md, "Substitutions"):
//!
//! * **image tasks** — each class has a random prototype "image"; samples are the prototype
//!   plus Gaussian noise, with difficulty controlled by the noise-to-signal ratio,
//! * **text task** — each class has a token distribution over a small vocabulary; a sample is
//!   a token sequence drawn from a mixture of its class distribution and a background
//!   distribution, one-hot encoded per timestep for the LSTM.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Which of the paper's four tasks a dataset emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// MNIST digits (easiest image task, "MNIST-O" in the paper).
    MnistO,
    /// Fashion-MNIST ("MNIST-F").
    MnistF,
    /// CIFAR-10 (hardest image task).
    Cifar10,
    /// HuffPost news-headline classification ("HPNews"), a sequence task.
    HpNews,
}

impl TaskKind {
    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::MnistO => "MNIST-O",
            TaskKind::MnistF => "MNIST-F",
            TaskKind::Cifar10 => "CIFAR-10",
            TaskKind::HpNews => "HPNews",
        }
    }

    /// Whether the task is a sequence (LSTM) task.
    pub fn is_sequence(&self) -> bool {
        matches!(self, TaskKind::HpNews)
    }
}

/// A labelled dataset with dense feature rows.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
    task: TaskKind,
}

impl Dataset {
    /// Wraps features and labels into a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the number of label entries differs from the number of feature rows or a
    /// label is out of range.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize, task: TaskKind) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "one label per feature row is required"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < num_classes"
        );
        Self {
            features,
            labels,
            num_classes,
            task,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Width of each feature row.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Which paper task the dataset emulates.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles a mini-batch `(features, labels)` for the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Matrix, Vec<usize>) {
        let mut x = Matrix::default();
        let mut y = Vec::new();
        self.batch_into(indices, &mut x, &mut y);
        (x, y)
    }

    /// Gathers a mini-batch into caller-owned buffers (the allocation-free form of
    /// [`Dataset::batch`] used by the scratch-arena training loop).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn batch_into(&self, indices: &[usize], x: &mut Matrix, y: &mut Vec<usize>) {
        self.features.batch_gather_into(indices, x);
        y.clear();
        y.extend(indices.iter().map(|&i| self.labels[i]));
    }

    /// Number of distinct classes present among the given sample indices (the "data
    /// category" resource `q2` of the paper's simulator).
    pub fn category_count(&self, indices: &[usize]) -> usize {
        let mut seen = vec![false; self.num_classes];
        for &i in indices {
            seen[self.labels[i]] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

/// Specification of a synthetic image-classification task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticImageSpec {
    /// Number of channels (1 for the MNIST-like tasks, 3 for CIFAR-like).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Noise standard deviation relative to the unit-norm class prototypes; larger values
    /// make the task harder.
    pub noise: f64,
    /// Which paper task this spec emulates.
    pub task: TaskKind,
    /// Seed for the class prototypes (fixed per task so train/test splits share prototypes).
    pub prototype_seed: u64,
}

impl SyntheticImageSpec {
    /// The MNIST-O stand-in: 8×8 single-channel images, low noise.
    pub fn mnist_like() -> Self {
        Self {
            channels: 1,
            height: 8,
            width: 8,
            num_classes: 10,
            noise: 0.6,
            task: TaskKind::MnistO,
            prototype_seed: 1001,
        }
    }

    /// The Fashion-MNIST stand-in: 8×8 single-channel images, medium noise.
    pub fn fashion_like() -> Self {
        Self {
            channels: 1,
            height: 8,
            width: 8,
            num_classes: 10,
            noise: 1.0,
            task: TaskKind::MnistF,
            prototype_seed: 1002,
        }
    }

    /// The CIFAR-10 stand-in: 8×8 three-channel images, high noise.
    pub fn cifar_like() -> Self {
        Self {
            channels: 3,
            height: 8,
            width: 8,
            num_classes: 10,
            noise: 1.6,
            task: TaskKind::Cifar10,
            prototype_seed: 1003,
        }
    }

    /// Flattened feature width.
    pub fn feature_dim(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Generates `n` samples with balanced class labels.
    pub fn generate(&self, n: usize, rng: &mut StdRng) -> Dataset {
        let dim = self.feature_dim();
        // Class prototypes are drawn from a dedicated RNG so every call (train set, test set,
        // different clients) sees the same class structure.
        let mut proto_rng = fmore_numerics::seeded_rng(self.prototype_seed);
        let prototypes: Vec<Vec<f64>> = (0..self.num_classes)
            .map(|_| (0..dim).map(|_| proto_rng.gen_range(-1.0..1.0)).collect())
            .collect();

        let mut features = Matrix::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..self.num_classes);
            labels.push(class);
            let row = features.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = prototypes[class][j] + self.noise * gaussian(rng);
            }
        }
        Dataset::new(features, labels, self.num_classes, self.task)
    }
}

/// Specification of the synthetic news-headline (sequence) task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTextSpec {
    /// Sequence length (tokens per headline).
    pub seq_len: usize,
    /// Vocabulary size; each timestep is a one-hot vector of this width.
    pub vocab: usize,
    /// Number of classes (news categories).
    pub num_classes: usize,
    /// Probability that a token is drawn from the class-specific distribution rather than the
    /// shared background distribution; smaller values make the task harder.
    pub signal: f64,
    /// Seed for the class token distributions.
    pub prototype_seed: u64,
}

impl SyntheticTextSpec {
    /// The HPNews stand-in: 12-token headlines over a 32-token vocabulary, 10 categories.
    pub fn hpnews_like() -> Self {
        Self {
            seq_len: 12,
            vocab: 32,
            num_classes: 10,
            signal: 0.45,
            prototype_seed: 2001,
        }
    }

    /// Flattened feature width (`seq_len · vocab`).
    pub fn feature_dim(&self) -> usize {
        self.seq_len * self.vocab
    }

    /// Generates `n` one-hot-encoded headline samples.
    pub fn generate(&self, n: usize, rng: &mut StdRng) -> Dataset {
        let mut proto_rng = fmore_numerics::seeded_rng(self.prototype_seed);
        // Each class prefers a handful of "topic" tokens.
        let topic_tokens: Vec<Vec<usize>> = (0..self.num_classes)
            .map(|_| (0..4).map(|_| proto_rng.gen_range(0..self.vocab)).collect())
            .collect();

        let mut features = Matrix::zeros(n, self.feature_dim());
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..self.num_classes);
            labels.push(class);
            let row = features.row_mut(i);
            for t in 0..self.seq_len {
                let token = if rng.gen::<f64>() < self.signal {
                    topic_tokens[class][rng.gen_range(0..topic_tokens[class].len())]
                } else {
                    rng.gen_range(0..self.vocab)
                };
                row[t * self.vocab + token] = 1.0;
            }
        }
        Dataset::new(features, labels, self.num_classes, TaskKind::HpNews)
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Builds the spec for an image task of the given kind.
///
/// # Panics
///
/// Panics if called with [`TaskKind::HpNews`]; use [`SyntheticTextSpec::hpnews_like`] instead.
pub fn image_spec_for(task: TaskKind) -> SyntheticImageSpec {
    match task {
        TaskKind::MnistO => SyntheticImageSpec::mnist_like(),
        TaskKind::MnistF => SyntheticImageSpec::fashion_like(),
        TaskKind::Cifar10 => SyntheticImageSpec::cifar_like(),
        TaskKind::HpNews => panic!("HPNews is a sequence task; use SyntheticTextSpec"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_numerics::seeded_rng;

    #[test]
    fn dataset_accessors_and_batching() {
        let mut rng = seeded_rng(1);
        let data = SyntheticImageSpec::mnist_like().generate(50, &mut rng);
        assert_eq!(data.len(), 50);
        assert!(!data.is_empty());
        assert_eq!(data.feature_dim(), 64);
        assert_eq!(data.num_classes(), 10);
        assert_eq!(data.task(), TaskKind::MnistO);
        assert_eq!(data.features().rows(), 50);
        assert_eq!(data.labels().len(), 50);
        let (x, y) = data.batch(&[0, 5, 7]);
        assert_eq!(x.rows(), 3);
        assert_eq!(y.len(), 3);
        assert!(data.category_count(&(0..50).collect::<Vec<_>>()) > 5);
    }

    #[test]
    #[should_panic(expected = "one label per feature row")]
    fn mismatched_labels_are_rejected() {
        let _ = Dataset::new(Matrix::zeros(3, 4), vec![0, 1], 2, TaskKind::MnistO);
    }

    #[test]
    #[should_panic(expected = "labels must be <")]
    fn out_of_range_label_is_rejected() {
        let _ = Dataset::new(Matrix::zeros(2, 4), vec![0, 5], 2, TaskKind::MnistO);
    }

    #[test]
    fn specs_match_paper_task_structure() {
        assert_eq!(SyntheticImageSpec::mnist_like().channels, 1);
        assert_eq!(SyntheticImageSpec::cifar_like().channels, 3);
        assert!(SyntheticImageSpec::mnist_like().noise < SyntheticImageSpec::fashion_like().noise);
        assert!(SyntheticImageSpec::fashion_like().noise < SyntheticImageSpec::cifar_like().noise);
        assert_eq!(SyntheticTextSpec::hpnews_like().num_classes, 10);
        assert!(TaskKind::HpNews.is_sequence());
        assert!(!TaskKind::Cifar10.is_sequence());
        assert_eq!(TaskKind::MnistF.name(), "MNIST-F");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticImageSpec::cifar_like().generate(20, &mut seeded_rng(3));
        let b = SyntheticImageSpec::cifar_like().generate(20, &mut seeded_rng(3));
        assert_eq!(a.features().data(), b.features().data());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn prototypes_are_shared_across_generations() {
        // Two independently generated sets of the same task must be classifiable by the same
        // model, i.e. same-class means should be closer than different-class means.
        let spec = SyntheticImageSpec::mnist_like();
        let train = spec.generate(400, &mut seeded_rng(10));
        let test = spec.generate(400, &mut seeded_rng(11));
        let class_mean = |d: &Dataset, class: usize| -> Vec<f64> {
            let idx: Vec<usize> = (0..d.len()).filter(|&i| d.labels()[i] == class).collect();
            let mut mean = vec![0.0; d.feature_dim()];
            for &i in &idx {
                for (m, v) in mean.iter_mut().zip(d.features().row(i)) {
                    *m += v;
                }
            }
            mean.iter().map(|m| m / idx.len().max(1) as f64).collect()
        };
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let same = dist(&class_mean(&train, 0), &class_mean(&test, 0));
        let different = dist(&class_mean(&train, 0), &class_mean(&test, 1));
        assert!(
            same < different,
            "class structure must persist across generations"
        );
    }

    #[test]
    fn text_samples_are_one_hot_per_timestep() {
        let spec = SyntheticTextSpec::hpnews_like();
        let data = spec.generate(10, &mut seeded_rng(5));
        assert_eq!(data.feature_dim(), spec.feature_dim());
        for i in 0..data.len() {
            let row = data.features().row(i);
            for t in 0..spec.seq_len {
                let ones: f64 = row[t * spec.vocab..(t + 1) * spec.vocab].iter().sum();
                assert!((ones - 1.0).abs() < 1e-12, "each timestep must be one-hot");
            }
        }
    }

    #[test]
    fn image_spec_lookup_covers_image_tasks() {
        assert_eq!(image_spec_for(TaskKind::MnistO).task, TaskKind::MnistO);
        assert_eq!(image_spec_for(TaskKind::Cifar10).channels, 3);
    }

    #[test]
    #[should_panic(expected = "sequence task")]
    fn image_spec_lookup_rejects_text() {
        let _ = image_spec_for(TaskKind::HpNews);
    }
}
