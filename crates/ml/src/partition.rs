//! Non-IID data partitioning across edge nodes.
//!
//! The paper follows McMahan et al.: the training data is distributed across edge nodes in a
//! non-IID fashion, and in the FMore simulator each node's auction resources are its **data
//! size** `q1` and its **data-category proportion** `q2` (number of distinct classes it holds
//! divided by the total number of classes). The partitioner therefore produces shards that
//! vary in both size and class coverage, so that FMore has genuinely better and worse nodes
//! to choose between.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::Rng;

/// The data shard held by one client (edge node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientShard {
    /// Indices into the global dataset this client owns.
    pub indices: Vec<usize>,
    /// Number of distinct classes present in the shard.
    pub categories: usize,
}

impl ClientShard {
    /// Shard size (the `q1` resource of the simulator).
    pub fn size(&self) -> usize {
        self.indices.len()
    }

    /// Category proportion `q2 ∈ (0, 1]`: distinct classes in the shard over total classes.
    pub fn category_proportion(&self, num_classes: usize) -> f64 {
        if num_classes == 0 {
            return 0.0;
        }
        self.categories as f64 / num_classes as f64
    }
}

/// Configuration for the non-IID partitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Number of clients to create.
    pub clients: usize,
    /// Minimum and maximum shard size per client.
    pub size_range: (usize, usize),
    /// Minimum and maximum number of distinct classes per client.
    pub category_range: (usize, usize),
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            clients: 100,
            size_range: (50, 500),
            category_range: (2, 10),
        }
    }
}

/// Splits the dataset IID: every client receives a uniformly random shard of a size drawn
/// from `size_range` (with replacement across clients, i.e. clients may share samples — the
/// standard simulator shortcut for large populations).
pub fn partition_iid(
    data: &Dataset,
    config: &PartitionConfig,
    rng: &mut StdRng,
) -> Vec<ClientShard> {
    assert!(config.clients > 0, "at least one client is required");
    let (lo, hi) = normalized_size_range(config.size_range, data.len());
    (0..config.clients)
        .map(|_| {
            let size = rng.gen_range(lo..=hi);
            let indices = fmore_numerics::rng::sample_indices(data.len(), size, rng);
            let categories = data.category_count(&indices);
            ClientShard {
                indices,
                categories,
            }
        })
        .collect()
}

/// Splits the dataset non-IID: each client first draws a target number of classes from
/// `category_range` and a target size from `size_range`, then samples only from those
/// classes. This reproduces the label-shard style heterogeneity of McMahan et al. while
/// giving every client well-defined `(data size, category proportion)` auction resources.
pub fn partition_non_iid(
    data: &Dataset,
    config: &PartitionConfig,
    rng: &mut StdRng,
) -> Vec<ClientShard> {
    assert!(config.clients > 0, "at least one client is required");
    assert!(!data.is_empty(), "cannot partition an empty dataset");
    let num_classes = data.num_classes();
    let (size_lo, size_hi) = normalized_size_range(config.size_range, data.len());
    let cat_lo = config.category_range.0.clamp(1, num_classes);
    let cat_hi = config.category_range.1.clamp(cat_lo, num_classes);

    // Pre-compute per-class index pools in one flat counting-sort layout (one buffer plus
    // per-class offsets) instead of `num_classes` separately allocated vectors. Within each
    // class the sample indices appear in ascending order, exactly as the per-class `push`
    // layout produced.
    let buckets = ClassBuckets::build(data.labels(), num_classes);

    (0..config.clients)
        .map(|_| {
            let n_categories = rng.gen_range(cat_lo..=cat_hi);
            let size = rng.gen_range(size_lo..=size_hi);
            // Choose which classes this client observes.
            let mut classes: Vec<usize> = (0..num_classes).collect();
            fmore_numerics::rng::shuffle(&mut classes, rng);
            let chosen: Vec<usize> = classes
                .into_iter()
                .filter(|&c| !buckets.class(c).is_empty())
                .take(n_categories)
                .collect();
            // Sample the shard from the chosen classes only.
            let mut indices = Vec::with_capacity(size);
            if !chosen.is_empty() {
                for _ in 0..size {
                    let class = chosen[rng.gen_range(0..chosen.len())];
                    let pool = buckets.class(class);
                    indices.push(pool[rng.gen_range(0..pool.len())]);
                }
            }
            let categories = data.category_count(&indices);
            ClientShard {
                indices,
                categories,
            }
        })
        .collect()
}

/// Per-class sample-index pools stored as one flat buffer plus offsets — two allocations
/// for the whole dataset instead of one `Vec` per class.
struct ClassBuckets {
    /// All sample indices, grouped by class; within a class, ascending.
    flat: Vec<usize>,
    /// `offsets[c]..offsets[c + 1]` is class `c`'s slice of `flat`.
    offsets: Vec<usize>,
}

impl ClassBuckets {
    fn build(labels: &[usize], num_classes: usize) -> Self {
        let mut offsets = vec![0usize; num_classes + 1];
        for &label in labels {
            offsets[label + 1] += 1;
        }
        for c in 0..num_classes {
            offsets[c + 1] += offsets[c];
        }
        let mut flat = vec![0usize; labels.len()];
        let mut cursor = offsets.clone();
        for (i, &label) in labels.iter().enumerate() {
            flat[cursor[label]] = i;
            cursor[label] += 1;
        }
        Self { flat, offsets }
    }

    fn class(&self, c: usize) -> &[usize] {
        &self.flat[self.offsets[c]..self.offsets[c + 1]]
    }
}

fn normalized_size_range(range: (usize, usize), dataset_len: usize) -> (usize, usize) {
    let lo = range.0.max(1).min(dataset_len.max(1));
    let hi = range.1.max(lo).min(dataset_len.max(1)).max(lo);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticImageSpec;
    use fmore_numerics::seeded_rng;

    fn dataset(n: usize, seed: u64) -> Dataset {
        SyntheticImageSpec::mnist_like().generate(n, &mut seeded_rng(seed))
    }

    #[test]
    fn non_iid_respects_size_and_category_targets() {
        let data = dataset(2000, 1);
        let config = PartitionConfig {
            clients: 50,
            size_range: (20, 200),
            category_range: (2, 6),
        };
        let mut rng = seeded_rng(2);
        let shards = partition_non_iid(&data, &config, &mut rng);
        assert_eq!(shards.len(), 50);
        for shard in &shards {
            assert!(
                (20..=200).contains(&shard.size()),
                "size {} out of range",
                shard.size()
            );
            assert!(
                (1..=6).contains(&shard.categories),
                "categories {} out of range",
                shard.categories
            );
            assert!(shard.indices.iter().all(|&i| i < data.len()));
            let prop = shard.category_proportion(data.num_classes());
            assert!(prop > 0.0 && prop <= 0.6 + 1e-12);
        }
        // Shards must actually differ in size (heterogeneity is the point).
        let sizes: std::collections::HashSet<usize> = shards.iter().map(|s| s.size()).collect();
        assert!(sizes.len() > 5);
    }

    #[test]
    fn non_iid_limits_each_client_to_its_classes() {
        let data = dataset(1000, 3);
        let config = PartitionConfig {
            clients: 20,
            size_range: (50, 50),
            category_range: (2, 2),
        };
        let mut rng = seeded_rng(4);
        let shards = partition_non_iid(&data, &config, &mut rng);
        for shard in &shards {
            // Every shard was asked to cover exactly 2 classes; because sampling is with
            // replacement from those classes the observed count is at most 2.
            assert!(shard.categories <= 2);
        }
    }

    #[test]
    fn iid_shards_cover_most_classes() {
        let data = dataset(2000, 5);
        let config = PartitionConfig {
            clients: 10,
            size_range: (200, 400),
            category_range: (1, 10),
        };
        let mut rng = seeded_rng(6);
        let shards = partition_iid(&data, &config, &mut rng);
        assert_eq!(shards.len(), 10);
        for shard in &shards {
            assert!(
                shard.categories >= 8,
                "an IID shard of 200+ samples should see most classes"
            );
            // IID sampling is without replacement inside a shard: indices are unique.
            let mut dedup = shard.indices.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), shard.indices.len());
        }
    }

    #[test]
    fn size_range_is_clamped_to_dataset() {
        let data = dataset(30, 7);
        let config = PartitionConfig {
            clients: 3,
            size_range: (100, 500),
            category_range: (1, 10),
        };
        let mut rng = seeded_rng(8);
        for shard in partition_iid(&data, &config, &mut rng) {
            assert!(shard.size() <= 30);
        }
        for shard in partition_non_iid(&data, &config, &mut rng) {
            assert!(shard.size() <= 30);
        }
    }

    #[test]
    fn partitioning_is_deterministic_per_seed() {
        let data = dataset(500, 9);
        let config = PartitionConfig::default();
        let a = partition_non_iid(&data, &config, &mut seeded_rng(10));
        let b = partition_non_iid(&data, &config, &mut seeded_rng(10));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_is_rejected() {
        let data = dataset(10, 11);
        let config = PartitionConfig {
            clients: 0,
            ..PartitionConfig::default()
        };
        let _ = partition_non_iid(&data, &config, &mut seeded_rng(12));
    }

    #[test]
    fn shard_helpers() {
        let shard = ClientShard {
            indices: vec![1, 2, 3],
            categories: 4,
        };
        assert_eq!(shard.size(), 3);
        assert!((shard.category_proportion(10) - 0.4).abs() < 1e-12);
        assert_eq!(shard.category_proportion(0), 0.0);
    }
}
