//! Evaluation metrics.

/// Classification accuracy: the fraction of predictions equal to the targets.
///
/// Returns `0.0` for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], targets: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / predictions.len() as f64
}

/// A confusion matrix for `classes` classes, stored as one flat `classes²` count buffer
/// (row-major by target) — a single allocation instead of one `Vec` per class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of samples with true class `target` predicted as `prediction`.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn get(&self, target: usize, prediction: usize) -> usize {
        assert!(
            target < self.classes && prediction < self.classes,
            "label out of range"
        );
        self.counts[target * self.classes + prediction]
    }

    /// The prediction counts for one true class.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn row(&self, target: usize) -> &[usize] {
        &self.counts[target * self.classes..(target + 1) * self.classes]
    }
}

/// Confusion matrix counting `(target, prediction)` pairs for `num_classes` classes.
///
/// # Panics
///
/// Panics if the slices have different lengths or any label is out of range.
pub fn confusion_matrix(
    predictions: &[usize],
    targets: &[usize],
    num_classes: usize,
) -> ConfusionMatrix {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    let mut counts = vec![0usize; num_classes * num_classes];
    for (&p, &t) in predictions.iter().zip(targets) {
        assert!(p < num_classes && t < num_classes, "label out of range");
        counts[t * num_classes + p] += 1;
    }
    ConfusionMatrix {
        classes: num_classes,
        counts,
    }
}

/// Per-class recall computed from a confusion matrix; classes with no samples get recall 0.
pub fn per_class_recall(confusion: &ConfusionMatrix) -> Vec<f64> {
    (0..confusion.classes())
        .map(|class| {
            let row = confusion.row(class);
            let total: usize = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                row[class] as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
        assert_eq!(accuracy(&[5, 5], &[5, 5]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts_by_target_then_prediction() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m.classes(), 3);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(1, 1), 1);
        assert_eq!(m.get(2, 1), 1);
        assert_eq!(m.get(2, 2), 1);
        assert_eq!(m.get(0, 1), 0);
        assert_eq!(m.row(2), &[0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_matrix_accessor_rejects_bad_labels() {
        let m = confusion_matrix(&[0], &[0], 2);
        let _ = m.get(0, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_matrix_rejects_bad_labels() {
        let _ = confusion_matrix(&[0, 4], &[0, 1], 3);
    }

    #[test]
    fn recall_handles_empty_classes() {
        let m = confusion_matrix(&[0, 0, 1], &[0, 0, 1], 3);
        let recall = per_class_recall(&m);
        assert_eq!(recall[0], 1.0);
        assert_eq!(recall[1], 1.0);
        assert_eq!(recall[2], 0.0);
    }
}
