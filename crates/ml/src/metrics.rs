//! Evaluation metrics.

/// Classification accuracy: the fraction of predictions equal to the targets.
///
/// Returns `0.0` for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], targets: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix `counts[target][prediction]` for `num_classes` classes.
///
/// # Panics
///
/// Panics if the slices have different lengths or any label is out of range.
pub fn confusion_matrix(
    predictions: &[usize],
    targets: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    let mut counts = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &t) in predictions.iter().zip(targets) {
        assert!(p < num_classes && t < num_classes, "label out of range");
        counts[t][p] += 1;
    }
    counts
}

/// Per-class recall computed from a confusion matrix; classes with no samples get recall 0.
pub fn per_class_recall(confusion: &[Vec<usize>]) -> Vec<f64> {
    confusion
        .iter()
        .enumerate()
        .map(|(class, row)| {
            let total: usize = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                row[class] as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
        assert_eq!(accuracy(&[5, 5], &[5, 5]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts_by_target_then_prediction() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_matrix_rejects_bad_labels() {
        let _ = confusion_matrix(&[0, 4], &[0, 1], 3);
    }

    #[test]
    fn recall_handles_empty_classes() {
        let m = confusion_matrix(&[0, 0, 1], &[0, 0, 1], 3);
        let recall = per_class_recall(&m);
        assert_eq!(recall[0], 1.0);
        assert_eq!(recall[1], 1.0);
        assert_eq!(recall[2], 0.0);
    }
}
