//! A minimal dense row-major matrix used by the neural-network layers.
//!
//! The simulation only needs small matrices (thousands of elements), so a straightforward
//! `Vec<f64>`-backed implementation with cache-friendly row-major loops is sufficient and
//! keeps the crate free of external linear-algebra dependencies.
//!
//! # In-place kernels
//!
//! The training hot path runs thousands of small matrix products per federated round, so
//! every operation that a layer's forward/backward pass needs exists in an **`_into` form**
//! that writes into a caller-owned output matrix instead of allocating a fresh one:
//!
//! * [`Matrix::matmul_into`] — `out = self · other`, cache-blocked over the shared dimension,
//! * [`Matrix::matmul_transpose_a_into`] — `out = selfᵀ · other` without materialising the
//!   transpose (the dense/LSTM weight-gradient product),
//! * [`Matrix::matmul_transpose_b_into`] — `out = self · otherᵀ` without materialising the
//!   transpose (the dense/LSTM input-gradient product),
//! * [`Matrix::map_inplace`], [`Matrix::add_row_inplace`], [`Matrix::sum_rows_into`],
//!   [`Matrix::batch_gather_into`] — the element-wise / broadcast / reduction / batch-extract
//!   counterparts.
//!
//! Output matrices are reshaped with [`Matrix::resize`], which reuses the existing buffer
//! capacity: after a warm-up pass at the largest shape, the `_into` kernels perform **zero
//! allocations**. Every `_into` kernel accumulates in exactly the same per-element order as
//! its allocating counterpart, so the two forms are bit-identical — the allocating methods
//! are thin wrappers over the `_into` forms, and the property suite pins the equivalence.

use rand::Rng;
use std::fmt;

/// Thread-local accounting of `Matrix` buffer allocations, used to assert that the training
/// hot path is allocation-free in steady state.
///
/// Only matrix-buffer events on the **current thread** are counted: fresh buffer creation
/// ([`Matrix::zeros`], [`Matrix::from_vec`], clones) and capacity growth inside
/// [`Matrix::resize`]. Compiled in only for tests and the `alloc-count` feature, so release
/// builds carry no bookkeeping.
#[cfg(any(test, feature = "alloc-count"))]
pub mod alloc_count {
    use std::cell::Cell;

    thread_local! {
        static MATRIX_ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// Resets the current thread's allocation counter to zero.
    pub fn reset() {
        MATRIX_ALLOCS.with(|c| c.set(0));
    }

    /// Number of matrix-buffer allocations on the current thread since the last
    /// [`reset`].
    pub fn count() -> u64 {
        MATRIX_ALLOCS.with(|c| c.get())
    }

    pub(super) fn note() {
        MATRIX_ALLOCS.with(|c| c.set(c.get() + 1));
    }
}

/// Records one matrix-buffer allocation (no-op unless the counter is compiled in).
#[inline]
fn note_alloc(len: usize) {
    #[cfg(any(test, feature = "alloc-count"))]
    if len > 0 {
        alloc_count::note();
    }
    #[cfg(not(any(test, feature = "alloc-count")))]
    let _ = len;
}

/// Block size (in rows of the right-hand operand) for the cache-blocked matmul family: a
/// 64 × 64 `f64` panel is 32 KiB, sized to stay resident in a typical L1d cache while every
/// left-hand row streams against it.
const MATMUL_BLOCK: usize = 64;

// ---------------------------------------------------------------------------
// Kernel cores.
//
// The matmul family shares two loop-nest cores operating on raw row-major slices. Each core
// accumulates every output element in strict ascending shared-dimension order, so the
// result is bit-identical to the historical scalar kernels for finite operands (the old
// kernels skipped `a == 0.0` terms; those terms are all `±0.0`, and adding `±0.0` never
// changes a finite accumulator that started at `+0.0` — IEEE-754 round-to-nearest sums
// never produce `−0.0`).
//
// On x86-64 the cores are additionally compiled with AVX enabled and selected at runtime.
// This only widens the auto-vectorised lanes across *independent* output elements — no
// per-element reassociation — so the AVX and scalar paths produce identical bits and
// results stay reproducible across machines with and without AVX.
// ---------------------------------------------------------------------------

/// `out[i][j] += Σ_k a[i][k] · b[k][j]` for `a: (m, kd)`, `b: (kd, n)`, `out: (m, n)`.
/// `out` must be zero-initialised by the caller. Panel-blocked over `k` with a four-wide
/// register block: each output value is loaded once, updated by four consecutive `k` terms
/// in order, and stored once.
#[inline(always)]
fn matmul_core(m: usize, kd: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    for kb in (0..kd).step_by(MATMUL_BLOCK) {
        let kend = (kb + MATMUL_BLOCK).min(kd);
        for i in 0..m {
            let a_row = &a[i * kd..(i + 1) * kd];
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut k = kb;
            while k + 4 <= kend {
                let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
                let panel = &b[k * n..(k + 4) * n];
                let (b0, rest) = panel.split_at(n);
                let (b1, rest) = rest.split_at(n);
                let (b2, b3) = rest.split_at(n);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += a0 * b0[j];
                    acc += a1 * b1[j];
                    acc += a2 * b2[j];
                    acc += a3 * b3[j];
                    *o = acc;
                }
                k += 4;
            }
            while k < kend {
                let a_k = a_row[k];
                let b_row = &b[k * n..(k + 1) * n];
                for (o, bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_k * bv;
                }
                k += 1;
            }
        }
    }
}

/// `out[i][j] += Σ_k a[k][i] · b[k][j]` for `a: (rows, m)`, `b: (rows, n)`, `out: (m, n)`
/// — the `aᵀ · b` product without materialising the transpose. `out` must be
/// zero-initialised by the caller.
#[inline(always)]
fn matmul_ta_core(rows: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    let mut k = 0;
    while k + 4 <= rows {
        let a_panel = &a[k * m..(k + 4) * m];
        let (a0, rest) = a_panel.split_at(m);
        let (a1, rest) = rest.split_at(m);
        let (a2, a3) = rest.split_at(m);
        let b_panel = &b[k * n..(k + 4) * n];
        let (b0, rest) = b_panel.split_at(n);
        let (b1, rest) = rest.split_at(n);
        let (b2, b3) = rest.split_at(n);
        for i in 0..m {
            let (c0, c1, c2, c3) = (a0[i], a1[i], a2[i], a3[i]);
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc = *o;
                acc += c0 * b0[j];
                acc += c1 * b1[j];
                acc += c2 * b2[j];
                acc += c3 * b3[j];
                *o = acc;
            }
        }
        k += 4;
    }
    while k < rows {
        let a_row = &a[k * m..(k + 1) * m];
        let b_row = &b[k * n..(k + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
        k += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn matmul_core_avx(m: usize, kd: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    matmul_core(m, kd, n, a, b, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn matmul_ta_core_avx(
    rows: usize,
    m: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    matmul_ta_core(rows, m, n, a, b, out);
}

fn run_matmul_core(m: usize, kd: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if fmore_numerics::simd::avx_enabled() {
        // SAFETY: the gate only answers true after the runtime AVX feature check.
        unsafe { matmul_core_avx(m, kd, n, a, b, out) };
        return;
    }
    matmul_core(m, kd, n, a, b, out);
}

fn run_matmul_ta_core(rows: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if fmore_numerics::simd::avx_enabled() {
        // SAFETY: the gate only answers true after the runtime AVX feature check.
        unsafe { matmul_ta_core_avx(rows, m, n, a, b, out) };
        return;
    }
    matmul_ta_core(rows, m, n, a, b, out);
}

std::thread_local! {
    /// Per-thread scratch for [`Matrix::matmul_transpose_b_into`]'s operand re-pack; sized
    /// once per thread and reused, so steady-state backward passes stay allocation-free.
    static TRANSPOSE_SCRATCH: std::cell::RefCell<Matrix> =
        std::cell::RefCell::new(Matrix::default());
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        note_alloc(self.data.len());
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Reuses the existing buffer when its capacity suffices.
        self.copy_from(source);
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        note_alloc(rows * cols);
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        note_alloc(data.len());
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scale: f64,
        rng: &mut R,
    ) -> Self {
        let mut out = Self::zeros(rows, cols);
        for v in out.data.iter_mut() {
            *v = rng.gen_range(-scale..=scale);
        }
        out
    }

    /// He-style initialisation for a layer with `fan_in` inputs: uniform on
    /// `±sqrt(6 / fan_in)`.
    pub fn he_init<R: Rng + ?Sized>(rows: usize, cols: usize, fan_in: usize, rng: &mut R) -> Self {
        let scale = (6.0 / fan_in.max(1) as f64).sqrt();
        Self::random_uniform(rows, cols, scale, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reshapes the matrix to `rows × cols`, reusing the existing buffer.
    ///
    /// The contents after the call are unspecified (a mix of stale values and zeros); every
    /// `_into` kernel overwrites or zero-fills as needed. No allocation happens unless the
    /// new element count exceeds the buffer's current capacity, so scratch matrices reach a
    /// steady state after one pass at their largest shape.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        let needed = rows * cols;
        if needed > self.data.capacity() {
            note_alloc(needed);
        }
        self.data.resize(needed, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Makes `self` an element-wise copy of `src`, reusing the existing buffer.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a matrix by stacking the given rows of `self` (used to assemble mini-batches).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::default();
        self.batch_gather_into(indices, &mut out);
        out
    }

    /// Stacks the given rows of `self` into `out` (the allocation-free form of
    /// [`Matrix::select_rows`] used to assemble mini-batches from a scratch arena).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn batch_gather_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `out = self · other`, written into a caller-owned matrix.
    ///
    /// The loop nest is blocked twice: a panel of [`MATMUL_BLOCK`] rows of `other` stays in
    /// cache while every row of `self` streams against it, and within a panel the shared
    /// dimension is register-blocked four-wide — each output value is loaded once, updated
    /// by four consecutive `k` terms in a register, and stored once. Per output element the
    /// partial products still accumulate in strict ascending `k` order, so for finite
    /// operands the result is bit-identical to the historical skip-zero scalar kernel (the
    /// skipped terms were all `±0.0`, and adding `±0.0` never changes a finite accumulator
    /// that started at `+0.0` — IEEE-754 round-to-nearest sums never produce `−0.0`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        out.resize(self.rows, other.cols);
        out.fill(0.0);
        run_matmul_core(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Product with the left operand transposed: `out = selfᵀ · other`, without ever
    /// materialising `selfᵀ`.
    ///
    /// This is the weight-gradient product of the backward pass (`∇W = xᵀ · ∂L/∂y`). The
    /// loop nest walks both operands row-by-row (contiguously), register-blocking the
    /// shared dimension four-wide, and accumulates each output element in strict ascending
    /// shared-dimension order — bit-identical to `self.transpose().matmul(other)` for
    /// finite operands (see [`Matrix::matmul_into`] on why dropping the historical
    /// zero-skip is a bitwise no-op).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_transpose_a_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a dimension mismatch"
        );
        out.resize(self.cols, other.cols);
        out.fill(0.0);
        run_matmul_ta_core(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Product with the right operand transposed: `out = self · otherᵀ`, without the
    /// allocation of a `transpose()` call.
    ///
    /// This is the input-gradient product of the backward pass (`∂L/∂x = ∂L/∂y · Wᵀ`).
    /// Row-major `A · Bᵀ` admits no loop order that is both contiguous and axpy-shaped, and
    /// a strict-order dot product cannot be vectorised, so the kernel re-packs `otherᵀ`
    /// into a per-thread scratch buffer (reused across calls — no steady-state allocation)
    /// and runs the fast matmul core over it. By construction the result is bit-identical
    /// to `self.matmul(&other.transpose())`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b dimension mismatch"
        );
        TRANSPOSE_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            other.transpose_into(&mut scratch);
            self.matmul_into(&scratch, out);
        });
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::default();
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-owned matrix (the allocation-free form of
    /// [`Matrix::transpose`]).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize(self.cols, self.rows);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }

    /// Element-wise subtraction `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub shape mismatch"
        );
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
        out
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Applies `f` to every element in place (the allocation-free form of [`Matrix::map`]).
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scales every element by `factor` in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds `other * factor` into `self` in place (`self += factor · other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_in_place(&mut self, other: &Matrix, factor: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
    }

    /// Adds a row vector (1 × cols) to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_inplace(bias);
        out
    }

    /// Adds a row vector (1 × cols) to every row in place (the allocation-free form of
    /// [`Matrix::add_row_broadcast`]).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_inplace(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.data[i * self.cols + j] += bias.data[j];
            }
        }
    }

    /// Sums over rows, producing a `1 × cols` row vector (used for bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::default();
        self.sum_rows_into(&mut out);
        out
    }

    /// Sums over rows into a caller-owned `1 × cols` row vector (the allocation-free form of
    /// [`Matrix::sum_rows`]).
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.resize(1, self.cols);
        out.fill(0.0);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.get(i, j);
            }
        }
    }

    /// Mean of all elements; `0.0` for empty matrices.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows.min(6) {
            for j in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_numerics::seeded_rng;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        let z = Matrix::zeros(2, 2);
        assert_eq!(z.data(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_with_identity_is_identity() {
        let a = Matrix::from_vec(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_into_reuses_and_reshapes_the_output() {
        let mut rng = seeded_rng(20);
        let a = Matrix::random_uniform(7, 5, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 9, 1.0, &mut rng);
        // Start from a stale, wrongly-shaped output buffer.
        let mut out = Matrix::from_vec(2, 2, vec![9.0; 4]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Re-run with different shapes into the same buffer.
        let c = Matrix::random_uniform(3, 7, 1.0, &mut rng);
        c.matmul_into(&a, &mut out);
        assert_eq!(out, c.matmul(&a));
    }

    #[test]
    fn matmul_blocking_crosses_block_boundaries() {
        // Shared dimension larger than one block exercises the k-panel loop.
        let k = MATMUL_BLOCK + 17;
        let mut rng = seeded_rng(21);
        let a = Matrix::random_uniform(3, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, 4, 1.0, &mut rng);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        // Reference: plain per-element dot products in ascending k order.
        for i in 0..3 {
            for j in 0..4 {
                let mut acc = 0.0;
                for kk in 0..k {
                    let v = a.get(i, kk);
                    if v == 0.0 {
                        continue;
                    }
                    acc += v * b.get(kk, j);
                }
                assert_eq!(out.get(i, j), acc);
            }
        }
    }

    #[test]
    fn transpose_kernels_match_allocating_composition() {
        let mut rng = seeded_rng(22);
        // Include exact zeros so the zero-skip path is exercised.
        let a = Matrix::random_uniform(6, 4, 1.0, &mut rng).map(|v| if v < 0.0 { 0.0 } else { v });
        let b = Matrix::random_uniform(6, 5, 1.0, &mut rng);
        let mut out = Matrix::default();
        a.matmul_transpose_a_into(&b, &mut out);
        assert_eq!(out, a.transpose().matmul(&b));

        let c = Matrix::random_uniform(3, 4, 1.0, &mut rng);
        let d = Matrix::random_uniform(7, 4, 1.0, &mut rng);
        c.matmul_transpose_b_into(&d, &mut out);
        assert_eq!(out, c.matmul(&d.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul_transpose_a dimension mismatch")]
    fn transpose_a_kernel_rejects_bad_shapes() {
        let mut out = Matrix::default();
        Matrix::zeros(2, 3).matmul_transpose_a_into(&Matrix::zeros(3, 2), &mut out);
    }

    #[test]
    #[should_panic(expected = "matmul_transpose_b dimension mismatch")]
    fn transpose_b_kernel_rejects_bad_shapes() {
        let mut out = Matrix::default();
        Matrix::zeros(2, 3).matmul_transpose_b_into(&Matrix::zeros(3, 2), &mut out);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0, 9.0]);
        let mut c = a.clone();
        c.scale_in_place(2.0);
        assert_eq!(c.data(), &[2.0, 4.0, 6.0]);
        let mut d = a.clone();
        d.add_scaled_in_place(&b, 0.5);
        assert_eq!(d.data(), &[3.0, 4.5, 6.0]);
        let mut e = a.clone();
        e.map_inplace(|x| x + 1.0);
        assert_eq!(e.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let bias = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        let mut y = x.clone();
        y.add_row_inplace(&bias);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
        let mut sums = Matrix::default();
        x.sum_rows_into(&mut sums);
        assert_eq!(sums.data(), &[4.0, 6.0]);
        assert!((x.mean() - 2.5).abs() < 1e-12);
        assert!((x.norm() - 30.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn select_rows_builds_minibatches() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let batch = x.select_rows(&[2, 0]);
        assert_eq!(batch.rows(), 2);
        assert_eq!(batch.row(0), &[5.0, 6.0]);
        assert_eq!(batch.row(1), &[1.0, 2.0]);
        // The gather form reuses a caller buffer.
        let mut buf = Matrix::default();
        x.batch_gather_into(&[1, 1, 0], &mut buf);
        assert_eq!(buf.rows(), 3);
        assert_eq!(buf.row(0), &[3.0, 4.0]);
        assert_eq!(buf.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn resize_and_copy_reuse_capacity() {
        let mut m = Matrix::zeros(4, 4);
        alloc_count::reset();
        m.resize(2, 3);
        m.fill(7.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.data(), &[7.0; 6]);
        m.resize(4, 4); // back within the original capacity
        let src = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        m.copy_from(&src);
        assert_eq!(m.data(), &[1.0, 2.0]);
        // None of the reshapes above exceeded the original 16-element capacity, and
        // `from_vec` of `src` is the only fresh buffer.
        assert_eq!(alloc_count::count(), 1);
        // Growing past capacity is counted.
        m.resize(10, 10);
        assert_eq!(alloc_count::count(), 2);
    }

    #[test]
    fn alloc_counter_sees_steady_state_kernels() {
        let mut rng = seeded_rng(23);
        let a = Matrix::random_uniform(8, 8, 1.0, &mut rng);
        let b = Matrix::random_uniform(8, 8, 1.0, &mut rng);
        let mut out = Matrix::default();
        // Warm up every kernel (including the transpose-b re-pack scratch).
        a.matmul_into(&b, &mut out);
        a.matmul_transpose_a_into(&b, &mut out);
        a.matmul_transpose_b_into(&b, &mut out);
        alloc_count::reset();
        for _ in 0..10 {
            a.matmul_into(&b, &mut out);
            a.matmul_transpose_a_into(&b, &mut out);
            a.matmul_transpose_b_into(&b, &mut out);
        }
        assert_eq!(
            alloc_count::count(),
            0,
            "warmed-up kernels must not allocate"
        );
    }

    #[test]
    fn random_initialisers_are_bounded_and_seeded() {
        let mut rng = seeded_rng(1);
        let m = Matrix::random_uniform(4, 4, 0.5, &mut rng);
        assert!(m.data().iter().all(|v| v.abs() <= 0.5));
        let he = Matrix::he_init(4, 4, 16, &mut seeded_rng(2));
        let bound = (6.0_f64 / 16.0).sqrt();
        assert!(he.data().iter().all(|v| v.abs() <= bound + 1e-12));
        // Same seed, same matrix.
        let a = Matrix::random_uniform(3, 3, 1.0, &mut seeded_rng(9));
        let b = Matrix::random_uniform(3, 3, 1.0, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(2, 2);
        assert!(m.to_string().contains("Matrix 2x2"));
    }
}
