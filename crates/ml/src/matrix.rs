//! A minimal dense row-major matrix used by the neural-network layers.
//!
//! The simulation only needs small matrices (thousands of elements), so a straightforward
//! `Vec<f64>`-backed implementation with cache-friendly row-major loops is sufficient and
//! keeps the crate free of external linear-algebra dependencies.

use rand::Rng;
use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scale: f64,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// He-style initialisation for a layer with `fan_in` inputs: uniform on
    /// `±sqrt(6 / fan_in)`.
    pub fn he_init<R: Rng + ?Sized>(rows: usize, cols: usize, fan_in: usize, rng: &mut R) -> Self {
        let scale = (6.0 / fan_in.max(1) as f64).sqrt();
        Self::random_uniform(rows, cols, scale, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a matrix by stacking the given rows of `self` (used to assemble mini-batches).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise subtraction `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every element by `factor` in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds `other * factor` into `self` in place (`self += factor · other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_in_place(&mut self, other: &Matrix, factor: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
    }

    /// Adds a row vector (1 × cols) to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] += bias.data[j];
            }
        }
        out
    }

    /// Sums over rows, producing a `1 × cols` row vector (used for bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.get(i, j);
            }
        }
        out
    }

    /// Mean of all elements; `0.0` for empty matrices.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows.min(6) {
            for j in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_numerics::seeded_rng;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        let z = Matrix::zeros(2, 2);
        assert_eq!(z.data(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_with_identity_is_identity() {
        let a = Matrix::from_vec(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0, 9.0]);
        let mut c = a.clone();
        c.scale_in_place(2.0);
        assert_eq!(c.data(), &[2.0, 4.0, 6.0]);
        let mut d = a.clone();
        d.add_scaled_in_place(&b, 0.5);
        assert_eq!(d.data(), &[3.0, 4.5, 6.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let bias = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
        assert!((x.mean() - 2.5).abs() < 1e-12);
        assert!((x.norm() - 30.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn select_rows_builds_minibatches() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let batch = x.select_rows(&[2, 0]);
        assert_eq!(batch.rows(), 2);
        assert_eq!(batch.row(0), &[5.0, 6.0]);
        assert_eq!(batch.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn random_initialisers_are_bounded_and_seeded() {
        let mut rng = seeded_rng(1);
        let m = Matrix::random_uniform(4, 4, 0.5, &mut rng);
        assert!(m.data().iter().all(|v| v.abs() <= 0.5));
        let he = Matrix::he_init(4, 4, 16, &mut seeded_rng(2));
        let bound = (6.0_f64 / 16.0).sqrt();
        assert!(he.data().iter().all(|v| v.abs() <= bound + 1e-12));
        // Same seed, same matrix.
        let a = Matrix::random_uniform(3, 3, 1.0, &mut seeded_rng(9));
        let b = Matrix::random_uniform(3, 3, 1.0, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(2, 2);
        assert!(m.to_string().contains("Matrix 2x2"));
    }
}
