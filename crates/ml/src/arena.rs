//! Reusable scratch buffers for the training hot path.
//!
//! One federated round runs `K clients × E epochs × B batches` of forward/backward work, and
//! before this module every batch allocated its activations, gradients, and batch copies
//! afresh. A [`ScratchArena`] owns those buffers instead: the model writes layer outputs
//! into per-layer activation matrices, ping-pongs gradients between two buffers, and gathers
//! mini-batches into a reusable input matrix. Buffers are sized on first use (and whenever a
//! larger batch shows up) and then reused for the life of the arena — steady-state training
//! performs **zero matrix allocations**, which the alloc-counter tests pin.
//!
//! Ownership convention: the arena belongs to the *driver* of the training loop, not the
//! model. The federated round engine keeps one arena per worker-pool slot
//! (`fmore_fl::engine::SlotState`) so parallel clients never contend for scratch memory and
//! nothing is reallocated between rounds; single-shot callers can pass a fresh
//! `ScratchArena::default()` and get the exact same results (the arena never influences
//! numerics, only where intermediates live).

use crate::matrix::Matrix;

/// Reusable buffers for one training/evaluation stream.
///
/// The fields are deliberately simple matrices/vectors rather than anything layer-aware:
/// [`crate::model::Sequential`] resizes them as it goes, so one arena serves any
/// architecture (and can be handed from an MLP to a CNN mid-experiment — the buffers just
/// re-grow once).
#[derive(Debug, Clone, Default)]
pub struct ScratchArena {
    /// `activations[0]` is the gathered input batch; `activations[i + 1]` holds the output
    /// of layer `i`.
    pub(crate) activations: Vec<Matrix>,
    /// Gradient ping buffer (also receives the loss gradient).
    pub(crate) grad_a: Matrix,
    /// Gradient pong buffer.
    pub(crate) grad_b: Matrix,
    /// Labels of the gathered batch.
    pub(crate) labels: Vec<usize>,
    /// Shuffled sample order of the running epoch.
    pub(crate) order: Vec<usize>,
}

impl ScratchArena {
    /// Creates an empty arena; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the shuffled sample order prepared by
    /// [`crate::model::Sequential::shuffle_epoch_in`] — what a caller splitting the epoch
    /// into [`crate::model::Sequential::train_batches_in`] ranges tiles over.
    pub fn epoch_len(&self) -> usize {
        self.order.len()
    }

    /// Ensures the activation chain can hold `layers + 1` matrices (input plus one output
    /// per layer). Existing buffers are kept; missing ones start empty and are sized by the
    /// first forward pass.
    pub(crate) fn ensure_layers(&mut self, layers: usize) {
        if self.activations.len() < layers + 1 {
            self.activations.resize_with(layers + 1, Matrix::default);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_grows_its_activation_chain_once() {
        let mut arena = ScratchArena::new();
        arena.ensure_layers(3);
        assert_eq!(arena.activations.len(), 4);
        // Asking for fewer layers keeps the longer chain (buffers are reused, never shrunk).
        arena.ensure_layers(2);
        assert_eq!(arena.activations.len(), 4);
        arena.ensure_layers(5);
        assert_eq!(arena.activations.len(), 6);
    }
}
