//! Softmax cross-entropy loss.

use crate::matrix::Matrix;

/// Numerically stable row-wise softmax.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum.max(1e-300);
        }
    }
    out
}

/// Mean softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad` has the same shape as `logits` and already includes
/// the `1/batch` factor, so it can be fed straight into the backward pass.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per logit row is required"
    );
    let probs = softmax(logits);
    let batch = logits.rows() as f64;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < logits.cols(),
            "label {label} out of range for {} classes",
            logits.cols()
        );
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    grad.scale_in_place(1.0 / batch);
    (loss / batch, grad)
}

/// Row-wise argmax: the predicted class for every sample.
pub fn predictions(logits: &Matrix) -> Vec<usize> {
    (0..logits.rows())
        .map(|r| {
            logits
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, 1001.0]);
        let p = softmax(&logits);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!((p.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_vec(1, 3, vec![20.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Matrix::zeros(4, 10);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0_f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_vec(2, 3, vec![0.2, -0.1, 0.5, 1.0, 0.3, -0.7]);
        let labels = [2, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-6;
        for idx in 0..logits.data().len() {
            let mut plus = logits.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[idx] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-6,
                "grad mismatch at {idx}: {numeric} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn predictions_take_row_argmax() {
        let logits = Matrix::from_vec(3, 3, vec![1.0, 5.0, 2.0, 9.0, 0.0, 1.0, 0.0, 0.1, 0.2]);
        assert_eq!(predictions(&logits), vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "one label per logit row")]
    fn mismatched_labels_are_rejected() {
        let logits = Matrix::zeros(2, 3);
        let _ = softmax_cross_entropy(&logits, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_is_rejected() {
        let logits = Matrix::zeros(1, 3);
        let _ = softmax_cross_entropy(&logits, &[7]);
    }
}
