//! Softmax cross-entropy loss.

use crate::matrix::Matrix;

/// Numerically stable row-wise softmax.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_inplace(&mut out);
    out
}

/// Row-wise softmax applied in place.
fn softmax_inplace(out: &mut Matrix) {
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum.max(1e-300);
        }
    }
}

/// Mean softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad` has the same shape as `logits` and already includes
/// the `1/batch` factor, so it can be fed straight into the backward pass.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    let mut grad = Matrix::default();
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// Allocation-free form of [`softmax_cross_entropy`]: writes the logit gradient into `grad`
/// (reshaped to match `logits`, reusing its buffer) and returns the mean loss.
///
/// The probabilities are computed directly inside `grad`, so the hot path needs no
/// intermediate matrix at all; results are bit-identical to the allocating form.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy_into(logits: &Matrix, labels: &[usize], grad: &mut Matrix) -> f64 {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per logit row is required"
    );
    grad.copy_from(logits);
    softmax_inplace(grad);
    let batch = logits.rows() as f64;
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < logits.cols(),
            "label {label} out of range for {} classes",
            logits.cols()
        );
        let p = grad.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    grad.scale_in_place(1.0 / batch);
    loss / batch
}

/// Index of a row's maximum element; among equal maxima the **last** index wins (matching
/// `Iterator::max_by`), and an empty row yields `0`.
///
/// # Panics
///
/// Panics on a NaN entry — a NaN logit means training diverged, and silently picking an
/// index would fabricate accuracy numbers (the historical `partial_cmp().unwrap()` path
/// panicked here too).
pub(crate) fn row_argmax(row: &[f64]) -> usize {
    let mut best = 0;
    let mut best_value = f64::NEG_INFINITY;
    for (j, &v) in row.iter().enumerate() {
        assert!(!v.is_nan(), "NaN logit at column {j} — training diverged");
        if v >= best_value {
            best_value = v;
            best = j;
        }
    }
    best
}

/// Row-wise argmax: the predicted class for every sample.
pub fn predictions(logits: &Matrix) -> Vec<usize> {
    (0..logits.rows())
        .map(|r| row_argmax(logits.row(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, 1001.0]);
        let p = softmax(&logits);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!((p.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_vec(1, 3, vec![20.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Matrix::zeros(4, 10);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0_f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn into_form_matches_allocating_form_and_reuses_buffers() {
        let logits = Matrix::from_vec(2, 3, vec![0.2, -0.1, 0.5, 1.0, 0.3, -0.7]);
        let labels = [2, 0];
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        // Start from a stale, wrongly-shaped buffer.
        let mut buf = Matrix::from_vec(1, 1, vec![42.0]);
        let loss_into = softmax_cross_entropy_into(&logits, &labels, &mut buf);
        assert_eq!(loss.to_bits(), loss_into.to_bits());
        assert_eq!(grad, buf);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_vec(2, 3, vec![0.2, -0.1, 0.5, 1.0, 0.3, -0.7]);
        let labels = [2, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-6;
        for idx in 0..logits.data().len() {
            let mut plus = logits.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[idx] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-6,
                "grad mismatch at {idx}: {numeric} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn predictions_take_row_argmax() {
        let logits = Matrix::from_vec(3, 3, vec![1.0, 5.0, 2.0, 9.0, 0.0, 1.0, 0.0, 0.1, 0.2]);
        assert_eq!(predictions(&logits), vec![1, 0, 2]);
        // Ties resolve to the last maximal index, matching `Iterator::max_by`.
        let tied = Matrix::from_vec(1, 3, vec![4.0, 4.0, 1.0]);
        assert_eq!(predictions(&tied), vec![1]);
    }

    #[test]
    #[should_panic(expected = "one label per logit row")]
    fn mismatched_labels_are_rejected() {
        let logits = Matrix::zeros(2, 3);
        let _ = softmax_cross_entropy(&logits, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_is_rejected() {
        let logits = Matrix::zeros(1, 3);
        let _ = softmax_cross_entropy(&logits, &[7]);
    }
}
