//! Ready-made model builders mirroring the paper's architectures.
//!
//! The paper trains (footnotes 1 and 2 of Section V-A):
//!
//! * an 8-layer CNN for MNIST-O / MNIST-F: conv → conv → max-pool → dropout → flatten →
//!   dense 128 → dropout → dense 10 → softmax,
//! * an 11-layer CNN for CIFAR-10: conv → dropout → max-pool → conv → dropout → max-pool →
//!   flatten → dropout → dense 1024 → dropout → dense 10 → softmax,
//! * an LSTM classifier for the HuffPost headlines.
//!
//! The builders below reproduce those layer sequences, scaled down to the synthetic 8×8
//! image tasks and the 32-token vocabulary so that federated experiments with 100 clients
//! finish in seconds rather than hours. A plain MLP and a logistic-regression model are
//! included as cheap baselines for tests and quick experiments.

use crate::dataset::{SyntheticImageSpec, SyntheticTextSpec, TaskKind};
use crate::layers::{Activation, Conv2d, Dense, Dropout, ImageShape, Layer, Lstm, MaxPool2d};
use crate::model::Sequential;
use rand::rngs::StdRng;

/// The CNN used for the MNIST-O and MNIST-F stand-ins (paper footnote 1, scaled).
pub fn cnn_mnist(spec: &SyntheticImageSpec, rng: &mut StdRng) -> Sequential {
    let input = ImageShape::new(spec.channels, spec.height, spec.width);
    let conv1 = Conv2d::new(input, 8, 3, rng);
    let shape1 = conv1.output_shape();
    let conv2 = Conv2d::new(shape1, 16, 3, rng);
    let shape2 = conv2.output_shape();
    let pool = MaxPool2d::new(shape2);
    let pooled = pool.output_shape();
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(conv1),
        Box::new(Activation::relu()),
        Box::new(conv2),
        Box::new(Activation::relu()),
        Box::new(pool),
        Box::new(Dropout::new(0.25)),
        Box::new(Dense::new(pooled.flat_len(), 64, rng)),
        Box::new(Activation::relu()),
        Box::new(Dropout::new(0.25)),
        Box::new(Dense::new(64, spec.num_classes, rng)),
    ];
    Sequential::new(layers)
}

/// The CNN used for the CIFAR-10 stand-in (paper footnote 2, scaled).
pub fn cnn_cifar(spec: &SyntheticImageSpec, rng: &mut StdRng) -> Sequential {
    let input = ImageShape::new(spec.channels, spec.height, spec.width);
    let conv1 = Conv2d::new(input, 16, 3, rng);
    let shape1 = conv1.output_shape();
    let pool1 = MaxPool2d::new(shape1);
    let pooled1 = pool1.output_shape();
    let conv2 = Conv2d::new(pooled1, 32, 2, rng);
    let shape2 = conv2.output_shape();
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(conv1),
        Box::new(Activation::relu()),
        Box::new(Dropout::new(0.2)),
        Box::new(pool1),
        Box::new(conv2),
        Box::new(Activation::relu()),
        Box::new(Dropout::new(0.2)),
        Box::new(Dense::new(shape2.flat_len(), 128, rng)),
        Box::new(Activation::relu()),
        Box::new(Dropout::new(0.2)),
        Box::new(Dense::new(128, spec.num_classes, rng)),
    ];
    Sequential::new(layers)
}

/// The LSTM classifier used for the HPNews stand-in.
pub fn lstm_text(spec: &SyntheticTextSpec, rng: &mut StdRng) -> Sequential {
    let lstm = Lstm::new(spec.seq_len, spec.vocab, 32, rng);
    let hidden = lstm.hidden_dim();
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(lstm),
        Box::new(Dense::new(hidden, spec.num_classes, rng)),
    ];
    Sequential::new(layers)
}

/// A two-layer MLP baseline over flat features.
pub fn mlp_classifier(input_dim: usize, num_classes: usize, rng: &mut StdRng) -> Sequential {
    Sequential::new(vec![
        Box::new(Dense::new(input_dim, 32, rng)),
        Box::new(Activation::relu()),
        Box::new(Dense::new(32, num_classes, rng)),
    ])
}

/// A logistic-regression (single dense layer) baseline, the cheapest trainable model; used by
/// tests and by the fast configurations of the experiment harness.
pub fn logistic_regression(input_dim: usize, num_classes: usize, rng: &mut StdRng) -> Sequential {
    Sequential::new(vec![Box::new(Dense::new(input_dim, num_classes, rng))])
}

/// Builds the paper's model for a task, matching Section V-A's model/dataset pairing
/// (CNN for the image tasks, LSTM for HPNews).
pub fn model_for_task(task: TaskKind, rng: &mut StdRng) -> Sequential {
    match task {
        TaskKind::MnistO => cnn_mnist(&SyntheticImageSpec::mnist_like(), rng),
        TaskKind::MnistF => cnn_mnist(&SyntheticImageSpec::fashion_like(), rng),
        TaskKind::Cifar10 => cnn_cifar(&SyntheticImageSpec::cifar_like(), rng),
        TaskKind::HpNews => lstm_text(&SyntheticTextSpec::hpnews_like(), rng),
    }
}

/// Builds a cheap (MLP / logistic) surrogate model for a task with the same input/output
/// dimensions, used where experiment wall-clock matters more than architecture fidelity.
pub fn fast_model_for_task(task: TaskKind, rng: &mut StdRng) -> Sequential {
    match task {
        TaskKind::MnistO | TaskKind::MnistF | TaskKind::Cifar10 => {
            let spec = crate::dataset::image_spec_for(task);
            mlp_classifier(spec.feature_dim(), spec.num_classes, rng)
        }
        TaskKind::HpNews => {
            let spec = SyntheticTextSpec::hpnews_like();
            mlp_classifier(spec.feature_dim(), spec.num_classes, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use fmore_numerics::seeded_rng;

    #[test]
    fn cnn_mnist_has_expected_structure() {
        let mut rng = seeded_rng(1);
        let model = cnn_mnist(&SyntheticImageSpec::mnist_like(), &mut rng);
        let names = model.layer_names();
        assert_eq!(names[0], "conv2d");
        assert!(names.contains(&"maxpool2d"));
        assert!(names.contains(&"dropout"));
        assert_eq!(*names.last().unwrap(), "dense");
        assert!(model.num_parameters() > 1000);
    }

    #[test]
    fn cnn_cifar_handles_three_channels() {
        let mut rng = seeded_rng(2);
        let spec = SyntheticImageSpec::cifar_like();
        let mut model = cnn_cifar(&spec, &mut rng);
        let data = spec.generate(8, &mut rng);
        let logits = model.forward(data.features(), false);
        assert_eq!(logits.rows(), 8);
        assert_eq!(logits.cols(), 10);
    }

    #[test]
    fn lstm_text_produces_class_logits() {
        let mut rng = seeded_rng(3);
        let spec = SyntheticTextSpec::hpnews_like();
        let mut model = lstm_text(&spec, &mut rng);
        let data = spec.generate(4, &mut rng);
        let logits = model.forward(data.features(), false);
        assert_eq!(logits.cols(), spec.num_classes);
        assert_eq!(model.layer_names(), vec!["lstm", "dense"]);
    }

    #[test]
    fn task_dispatch_matches_paper_pairing() {
        let mut rng = seeded_rng(4);
        assert!(model_for_task(TaskKind::MnistO, &mut rng)
            .layer_names()
            .contains(&"conv2d"));
        assert!(model_for_task(TaskKind::HpNews, &mut rng)
            .layer_names()
            .contains(&"lstm"));
        // Fast surrogates are small MLPs.
        let fast = fast_model_for_task(TaskKind::Cifar10, &mut rng);
        assert_eq!(fast.layer_names(), vec!["dense", "relu", "dense"]);
        let fast_text = fast_model_for_task(TaskKind::HpNews, &mut rng);
        assert_eq!(fast_text.layer_names(), vec!["dense", "relu", "dense"]);
    }

    #[test]
    fn all_models_train_one_step_without_panicking() {
        let mut rng = seeded_rng(5);
        for task in [TaskKind::MnistO, TaskKind::Cifar10] {
            let spec = crate::dataset::image_spec_for(task);
            let data = spec.generate(16, &mut rng);
            let mut model = model_for_task(task, &mut rng);
            let loss = model.train_epoch(&data, &(0..16).collect::<Vec<_>>(), 0.05, 8, &mut rng);
            assert!(loss.is_finite() && loss > 0.0);
        }
        let spec = SyntheticTextSpec::hpnews_like();
        let data = spec.generate(8, &mut rng);
        let mut model = model_for_task(TaskKind::HpNews, &mut rng);
        let loss = model.train_epoch(&data, &(0..8).collect::<Vec<_>>(), 0.05, 4, &mut rng);
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn logistic_regression_is_single_layer() {
        let mut rng = seeded_rng(6);
        let model = logistic_regression(10, 3, &mut rng);
        assert_eq!(model.layer_names(), vec!["dense"]);
        assert_eq!(model.num_parameters(), 10 * 3 + 3);
    }
}
