//! The trainable model abstraction and the [`Sequential`] container.
//!
//! Federated learning only needs three operations from a model: export its parameters as a
//! flat vector (so the aggregator can average them, Eq. 3), import averaged parameters, and
//! perform local SGD epochs on a data shard (Eq. 2). The [`Model`] trait captures exactly
//! that, and [`Sequential`] implements it for a stack of [`Layer`]s trained with softmax
//! cross-entropy.

use crate::dataset::Dataset;
use crate::layers::Layer;
use crate::loss::{predictions, softmax_cross_entropy};
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Accuracy and loss of a model on a data shard.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Evaluation {
    /// Mean softmax cross-entropy loss.
    pub loss: f64,
    /// Fraction of correctly classified samples in `[0, 1]`.
    pub accuracy: f64,
}

/// A trainable classification model.
pub trait Model: Send + Sync {
    /// Exports all trainable parameters as one flat vector (stable order).
    fn parameters(&self) -> Vec<f64>;

    /// Imports parameters previously produced by [`Model::parameters`] (or an average of
    /// several such vectors).
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length.
    fn set_parameters(&mut self, params: &[f64]);

    /// Total number of trainable parameters.
    fn num_parameters(&self) -> usize;

    /// Runs one epoch of mini-batch SGD (Eq. 2, `w ← w − η ∇F_i(w)`) over the given sample
    /// indices of `data`. Returns the mean training loss over the epoch.
    fn train_epoch(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        learning_rate: f64,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f64;

    /// Evaluates loss and accuracy over the given sample indices of `data`.
    fn evaluate(&self, data: &Dataset, indices: &[usize]) -> Evaluation;

    /// Clones the model (architecture and parameters) into a boxed trait object.
    fn clone_model(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// A feed-forward stack of layers trained with softmax cross-entropy.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Scratch RNG for stochastic layers (dropout); reseeded deterministically per model.
    rng: StdRng,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("parameters", &self.num_parameters())
            .finish()
    }
}

impl Sequential {
    /// Creates a model from an ordered stack of layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(
            !layers.is_empty(),
            "a Sequential model needs at least one layer"
        );
        Self {
            layers,
            rng: fmore_numerics::seeded_rng(0xF00D),
        }
    }

    /// Layer names in order, useful for summaries and tests.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs the forward pass and returns the logits for a feature batch.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut out = x.clone();
        for layer in &mut self.layers {
            out = layer.forward(&out, training, &mut self.rng);
        }
        out
    }

    fn backward_and_step(&mut self, grad_logits: &Matrix, lr: f64) {
        let mut grad = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        for layer in &mut self.layers {
            layer.apply_gradients(lr);
        }
    }
}

impl Model for Sequential {
    fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter vector length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&params[offset..]);
        }
        debug_assert_eq!(offset, params.len());
    }

    fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn train_epoch(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        learning_rate: f64,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let batch_size = batch_size.max(1);
        let mut order = indices.to_vec();
        fmore_numerics::rng::shuffle(&mut order, rng);
        let mut total_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let (x, y) = data.batch(chunk);
            let logits = self.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            self.backward_and_step(&grad, learning_rate);
            total_loss += loss;
            batches += 1;
        }
        total_loss / batches as f64
    }

    fn evaluate(&self, data: &Dataset, indices: &[usize]) -> Evaluation {
        if indices.is_empty() {
            return Evaluation::default();
        }
        // Evaluation must not mutate the model; run on a scratch clone so layer caches and the
        // dropout RNG stay untouched.
        let mut scratch = self.clone();
        let mut total_loss = 0.0;
        let mut correct = 0usize;
        let mut count = 0usize;
        for chunk in indices.chunks(256) {
            let (x, y) = data.batch(chunk);
            let logits = scratch.forward(&x, false);
            let (loss, _) = softmax_cross_entropy(&logits, &y);
            total_loss += loss * chunk.len() as f64;
            let preds = predictions(&logits);
            correct += preds.iter().zip(&y).filter(|(p, t)| p == t).count();
            count += chunk.len();
        }
        Evaluation {
            loss: total_loss / count as f64,
            accuracy: correct as f64 / count as f64,
        }
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticImageSpec;
    use crate::layers::{Activation, Dense};
    use fmore_numerics::seeded_rng;

    fn tiny_mlp(input: usize, classes: usize, seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Box::new(Dense::new(input, 16, &mut rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(16, classes, &mut rng)),
        ])
    }

    #[test]
    fn parameter_roundtrip_and_count() {
        let model = tiny_mlp(8, 4, 1);
        let params = model.parameters();
        assert_eq!(params.len(), model.num_parameters());
        assert_eq!(params.len(), 8 * 16 + 16 + 16 * 4 + 4);
        let mut other = tiny_mlp(8, 4, 2);
        assert_ne!(other.parameters(), params);
        other.set_parameters(&params);
        assert_eq!(other.parameters(), params);
        assert_eq!(model.layer_names(), vec!["dense", "relu", "dense"]);
        assert!(format!("{model:?}").contains("dense"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_parameter_length_is_rejected() {
        let mut model = tiny_mlp(8, 4, 1);
        model.set_parameters(&[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_is_rejected() {
        let _ = Sequential::new(vec![]);
    }

    #[test]
    fn training_improves_accuracy_on_easy_task() {
        let mut rng = seeded_rng(3);
        let data = SyntheticImageSpec::mnist_like().generate(300, &mut rng);
        let mut model = tiny_mlp(data.feature_dim(), data.num_classes(), 4);
        let all: Vec<usize> = (0..data.len()).collect();
        let before = model.evaluate(&data, &all);
        let mut last_loss = f64::INFINITY;
        for _ in 0..8 {
            last_loss = model.train_epoch(&data, &all, 0.1, 32, &mut rng);
        }
        let after = model.evaluate(&data, &all);
        assert!(
            after.accuracy > before.accuracy + 0.2,
            "{:?} -> {:?}",
            before,
            after
        );
        assert!(after.loss < before.loss);
        assert!(last_loss < 2.0);
    }

    #[test]
    fn evaluate_does_not_change_parameters() {
        let mut rng = seeded_rng(5);
        let data = SyntheticImageSpec::mnist_like().generate(50, &mut rng);
        let model = tiny_mlp(data.feature_dim(), 10, 6);
        let before = model.parameters();
        let _ = model.evaluate(&data, &(0..data.len()).collect::<Vec<_>>());
        assert_eq!(model.parameters(), before);
    }

    #[test]
    fn empty_index_sets_are_handled() {
        let mut rng = seeded_rng(6);
        let data = SyntheticImageSpec::mnist_like().generate(10, &mut rng);
        let mut model = tiny_mlp(data.feature_dim(), 10, 7);
        assert_eq!(model.train_epoch(&data, &[], 0.1, 8, &mut rng), 0.0);
        let eval = model.evaluate(&data, &[]);
        assert_eq!(eval, Evaluation::default());
    }

    #[test]
    fn cloned_model_diverges_after_independent_training() {
        let mut rng = seeded_rng(8);
        let data = SyntheticImageSpec::mnist_like().generate(60, &mut rng);
        let model = tiny_mlp(data.feature_dim(), 10, 9);
        let mut clone = model.clone_model();
        assert_eq!(clone.parameters(), model.parameters());
        clone.train_epoch(
            &data,
            &(0..data.len()).collect::<Vec<_>>(),
            0.1,
            16,
            &mut rng,
        );
        assert_ne!(clone.parameters(), model.parameters());
    }
}
