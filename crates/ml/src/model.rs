//! The trainable model abstraction and the [`Sequential`] container.
//!
//! Federated learning only needs three operations from a model: export its parameters as a
//! flat vector (so the aggregator can average them, Eq. 3), import averaged parameters, and
//! perform local SGD epochs on a data shard (Eq. 2). The [`Model`] trait captures exactly
//! that, and [`Sequential`] implements it for a stack of [`Layer`]s trained with softmax
//! cross-entropy.
//!
//! # The allocation-free hot path
//!
//! [`Sequential::train_epoch_in`] and [`Sequential::evaluate_in`] run against a caller-owned
//! [`ScratchArena`]: mini-batches are gathered into the arena's input buffer, each layer
//! writes into its per-layer activation matrix, and gradients ping-pong between two reusable
//! buffers. After one pass at the largest batch shape the whole loop performs zero matrix
//! allocations (pinned by the alloc-counter tests), and the results are bit-identical to the
//! allocating [`Model::train_epoch`] / [`Model::evaluate`], which delegate to the arena
//! forms with a throwaway arena.

use crate::arena::ScratchArena;
use crate::dataset::Dataset;
use crate::layers::Layer;
use crate::loss::{row_argmax, softmax_cross_entropy_into};
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Seed of the scratch RNG driving stochastic layers (dropout). Fixed so that a freshly
/// constructed model, a clone of an untrained model, and a slot-reused model after
/// [`Sequential::reset_scratch_rng`] all see the identical stream.
const SCRATCH_RNG_SEED: u64 = 0xF00D;

/// Accuracy and loss of a model on a data shard.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Evaluation {
    /// Mean softmax cross-entropy loss.
    pub loss: f64,
    /// Fraction of correctly classified samples in `[0, 1]`.
    pub accuracy: f64,
}

/// A trainable classification model.
pub trait Model: Send + Sync {
    /// Exports all trainable parameters as one flat vector (stable order).
    fn parameters(&self) -> Vec<f64>;

    /// Writes all trainable parameters into `out` (cleared first), reusing its capacity —
    /// the allocation-free form of [`Model::parameters`].
    fn parameters_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.parameters());
    }

    /// Imports parameters previously produced by [`Model::parameters`] (or an average of
    /// several such vectors).
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length.
    fn set_parameters(&mut self, params: &[f64]);

    /// Copies a borrowed parameter view into the model in place — the zero-copy counterpart
    /// of [`Model::set_parameters`] used by the federated round engine (the two are
    /// synonyms; this name documents that no buffer changes hands).
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length.
    fn apply_parameters(&mut self, params: &[f64]) {
        self.set_parameters(params);
    }

    /// Total number of trainable parameters.
    fn num_parameters(&self) -> usize;

    /// Runs one epoch of mini-batch SGD (Eq. 2, `w ← w − η ∇F_i(w)`) over the given sample
    /// indices of `data`. Returns the mean training loss over the epoch.
    fn train_epoch(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        learning_rate: f64,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f64;

    /// Evaluates loss and accuracy over the given sample indices of `data`.
    fn evaluate(&self, data: &Dataset, indices: &[usize]) -> Evaluation;

    /// Clones the model (architecture and parameters) into a boxed trait object.
    fn clone_model(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// A feed-forward stack of layers trained with softmax cross-entropy.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Scratch RNG for stochastic layers (dropout); reseeded deterministically per model.
    rng: StdRng,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("parameters", &self.num_parameters())
            .finish()
    }
}

impl Sequential {
    /// Creates a model from an ordered stack of layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(
            !layers.is_empty(),
            "a Sequential model needs at least one layer"
        );
        Self {
            layers,
            rng: fmore_numerics::seeded_rng(SCRATCH_RNG_SEED),
        }
    }

    /// Layer names in order, useful for summaries and tests.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Reseeds the scratch RNG driving stochastic layers back to its construction state.
    ///
    /// A worker slot that reuses one model instance across rounds calls this before every
    /// round so its dropout stream matches what a fresh clone of the (never-trained) global
    /// model would see — keeping slot reuse bit-identical to the clone-per-round path.
    pub fn reset_scratch_rng(&mut self) {
        self.rng = fmore_numerics::seeded_rng(SCRATCH_RNG_SEED);
    }

    /// Runs the forward pass and returns the logits for a feature batch.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut out = x.clone();
        for layer in &mut self.layers {
            out = layer.forward(&out, training, &mut self.rng);
        }
        out
    }

    /// Runs the forward pass over the batch already gathered into `arena.activations[0]`,
    /// writing each layer's output into its arena slot. The logits end up in the last
    /// activation buffer.
    fn forward_arena(&mut self, arena: &mut ScratchArena, training: bool) {
        arena.ensure_layers(self.layers.len());
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (inputs, outputs) = arena.activations.split_at_mut(i + 1);
            layer.forward_into(&inputs[i], &mut outputs[0], training, &mut self.rng);
        }
    }

    /// Runs one epoch of mini-batch SGD against a caller-owned scratch arena — the
    /// allocation-free form of [`Model::train_epoch`], bit-identical to it.
    ///
    /// The arena only decides where intermediates live; after a warm-up pass at the largest
    /// batch shape the epoch performs zero matrix allocations.
    ///
    /// Internally this is [`Sequential::shuffle_epoch_in`] followed by one
    /// [`Sequential::train_batches_in`] call covering the whole shuffled order; callers that
    /// need finer work units (the per-batch training fan-out) invoke the two halves
    /// themselves and stay bit-identical as long as the batch ranges tile `0..order.len()`
    /// contiguously at multiples of `batch_size`.
    pub fn train_epoch_in(
        &mut self,
        arena: &mut ScratchArena,
        data: &Dataset,
        indices: &[usize],
        learning_rate: f64,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        self.shuffle_epoch_in(arena, indices, rng);
        let n = arena.order.len();
        let (total_loss, batches) =
            self.train_batches_in(arena, data, 0..n, learning_rate, batch_size);
        total_loss / batches as f64
    }

    /// The shuffle half of one epoch: rewrites `arena.order` with a freshly shuffled copy of
    /// `indices` and sizes the arena's layer buffers. Consumes RNG exactly as
    /// [`Sequential::train_epoch_in`] does — in particular, nothing at all when `indices` is
    /// empty (`arena.order` is just cleared), matching the epoch's early return.
    pub fn shuffle_epoch_in(
        &mut self,
        arena: &mut ScratchArena,
        indices: &[usize],
        rng: &mut StdRng,
    ) {
        arena.order.clear();
        if indices.is_empty() {
            return;
        }
        arena.order.extend_from_slice(indices);
        fmore_numerics::rng::shuffle(&mut arena.order, rng);
        arena.ensure_layers(self.layers.len());
    }

    /// The SGD half of one epoch: trains the mini-batches covering `range` of the shuffled
    /// `arena.order` (as prepared by [`Sequential::shuffle_epoch_in`]) and returns the sum
    /// of their losses together with the batch count.
    ///
    /// Batch boundaries are anchored at `range.start`, so splitting an epoch into several
    /// calls is bit-identical to one whole-epoch call exactly when every `range.start` is a
    /// multiple of `batch_size` and the ranges tile `0..order.len()` in order — the contract
    /// the per-batch training fan-out upholds. The range is clamped to `order.len()`.
    pub fn train_batches_in(
        &mut self,
        arena: &mut ScratchArena,
        data: &Dataset,
        range: std::ops::Range<usize>,
        learning_rate: f64,
        batch_size: usize,
    ) -> (f64, usize) {
        let batch_size = batch_size.max(1);
        let limit = range.end.min(arena.order.len());
        let mut total_loss = 0.0;
        let mut batches = 0;
        let mut start = range.start;
        while start < limit {
            let end = (start + batch_size).min(limit);
            // Gather the mini-batch into the arena (the chunk is copied out of `order`
            // borrow-free by splitting the borrow below).
            {
                let ScratchArena {
                    activations,
                    labels,
                    order,
                    ..
                } = arena;
                data.batch_into(&order[start..end], &mut activations[0], labels);
            }
            self.forward_arena(arena, true);
            let logits = &arena.activations[self.layers.len()];
            let loss = softmax_cross_entropy_into(logits, &arena.labels, &mut arena.grad_a);
            // Backward: ping-pong the gradient between the two arena buffers.
            for layer in self.layers.iter_mut().rev() {
                layer.backward_into(&arena.grad_a, &mut arena.grad_b);
                std::mem::swap(&mut arena.grad_a, &mut arena.grad_b);
            }
            for layer in &mut self.layers {
                layer.apply_gradients(learning_rate);
            }
            total_loss += loss;
            batches += 1;
            start = end;
        }
        (total_loss, batches)
    }

    /// Evaluates loss and accuracy against a caller-owned scratch arena — the
    /// allocation-free form of [`Model::evaluate`], bit-identical to it.
    ///
    /// Takes `&mut self` because layer caches (scratch state, not parameters) are written
    /// during the forward pass; parameters and the dropout RNG are untouched.
    pub fn evaluate_in(
        &mut self,
        arena: &mut ScratchArena,
        data: &Dataset,
        indices: &[usize],
    ) -> Evaluation {
        if indices.is_empty() {
            return Evaluation::default();
        }
        arena.ensure_layers(self.layers.len());
        let mut total_loss = 0.0;
        let mut correct = 0usize;
        let mut count = 0usize;
        for chunk in indices.chunks(256) {
            {
                let ScratchArena {
                    activations,
                    labels,
                    ..
                } = arena;
                data.batch_into(chunk, &mut activations[0], labels);
            }
            self.forward_arena(arena, false);
            let logits = &arena.activations[self.layers.len()];
            let loss = softmax_cross_entropy_into(logits, &arena.labels, &mut arena.grad_a);
            total_loss += loss * chunk.len() as f64;
            for (r, &label) in arena.labels.iter().enumerate() {
                if row_argmax(logits.row(r)) == label {
                    correct += 1;
                }
            }
            count += chunk.len();
        }
        Evaluation {
            loss: total_loss / count as f64,
            accuracy: correct as f64 / count as f64,
        }
    }
}

impl Model for Sequential {
    fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        self.parameters_into(&mut out);
        out
    }

    fn parameters_into(&self, out: &mut Vec<f64>) {
        out.clear();
        for layer in &self.layers {
            layer.write_params(out);
        }
    }

    fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter vector length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&params[offset..]);
        }
        debug_assert_eq!(offset, params.len());
    }

    fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn train_epoch(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        learning_rate: f64,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f64 {
        let mut arena = ScratchArena::default();
        self.train_epoch_in(&mut arena, data, indices, learning_rate, batch_size, rng)
    }

    fn evaluate(&self, data: &Dataset, indices: &[usize]) -> Evaluation {
        // Evaluation must not mutate the model; run on a scratch clone so layer caches stay
        // untouched for callers holding `&self`.
        let mut scratch = self.clone();
        let mut arena = ScratchArena::default();
        scratch.evaluate_in(&mut arena, data, indices)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticImageSpec;
    use crate::layers::{Activation, Dense};
    use fmore_numerics::seeded_rng;

    fn tiny_mlp(input: usize, classes: usize, seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Box::new(Dense::new(input, 16, &mut rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(16, classes, &mut rng)),
        ])
    }

    #[test]
    fn parameter_roundtrip_and_count() {
        let model = tiny_mlp(8, 4, 1);
        let params = model.parameters();
        assert_eq!(params.len(), model.num_parameters());
        assert_eq!(params.len(), 8 * 16 + 16 + 16 * 4 + 4);
        let mut other = tiny_mlp(8, 4, 2);
        assert_ne!(other.parameters(), params);
        other.set_parameters(&params);
        assert_eq!(other.parameters(), params);
        assert_eq!(model.layer_names(), vec!["dense", "relu", "dense"]);
        assert!(format!("{model:?}").contains("dense"));
        // The borrowed-view forms agree with the owning forms.
        let mut buf = vec![42.0; 3];
        model.parameters_into(&mut buf);
        assert_eq!(buf, params);
        let mut third = tiny_mlp(8, 4, 3);
        third.apply_parameters(&buf);
        assert_eq!(third.parameters(), params);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_parameter_length_is_rejected() {
        let mut model = tiny_mlp(8, 4, 1);
        model.set_parameters(&[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_is_rejected() {
        let _ = Sequential::new(vec![]);
    }

    #[test]
    fn training_improves_accuracy_on_easy_task() {
        let mut rng = seeded_rng(3);
        let data = SyntheticImageSpec::mnist_like().generate(300, &mut rng);
        let mut model = tiny_mlp(data.feature_dim(), data.num_classes(), 4);
        let all: Vec<usize> = (0..data.len()).collect();
        let before = model.evaluate(&data, &all);
        let mut last_loss = f64::INFINITY;
        for _ in 0..8 {
            last_loss = model.train_epoch(&data, &all, 0.1, 32, &mut rng);
        }
        let after = model.evaluate(&data, &all);
        assert!(
            after.accuracy > before.accuracy + 0.2,
            "{:?} -> {:?}",
            before,
            after
        );
        assert!(after.loss < before.loss);
        assert!(last_loss < 2.0);
    }

    #[test]
    fn arena_and_allocating_paths_agree_bit_for_bit() {
        let mut data_rng = seeded_rng(30);
        let data = SyntheticImageSpec::mnist_like().generate(120, &mut data_rng);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut a = tiny_mlp(data.feature_dim(), data.num_classes(), 31);
        let mut b = a.clone();
        let mut arena = ScratchArena::new();
        let mut rng_a = seeded_rng(32);
        let mut rng_b = seeded_rng(32);
        for _ in 0..3 {
            let la = a.train_epoch(&data, &all, 0.1, 17, &mut rng_a);
            let lb = b.train_epoch_in(&mut arena, &data, &all, 0.1, 17, &mut rng_b);
            assert_eq!(la.to_bits(), lb.to_bits());
            assert_eq!(a.parameters(), b.parameters());
        }
        let ea = a.evaluate(&data, &all);
        let eb = b.evaluate_in(&mut arena, &data, &all);
        assert_eq!(ea, eb);
    }

    #[test]
    fn split_batch_ranges_match_the_whole_epoch_bit_for_bit() {
        use crate::layers::Dropout;
        let mut data_rng = seeded_rng(40);
        let data = SyntheticImageSpec::mnist_like().generate(130, &mut data_rng);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut build_rng = seeded_rng(41);
        let build = |rng: &mut StdRng| {
            // A dropout layer makes the scratch RNG order-sensitive, so any divergence in
            // batch sequencing shows up in the parameters.
            Sequential::new(vec![
                Box::new(Dense::new(64, 12, rng)) as Box<dyn Layer>,
                Box::new(Dropout::new(0.3)),
                Box::new(Dense::new(12, 10, rng)),
            ])
        };
        let mut whole = build(&mut build_rng);
        let mut split = whole.clone();
        let mut arena_w = ScratchArena::new();
        let mut arena_s = ScratchArena::new();
        let mut rng_w = seeded_rng(42);
        let mut rng_s = seeded_rng(42);
        let batch = 17;
        for _ in 0..2 {
            let loss_w = whole.train_epoch_in(&mut arena_w, &data, &all, 0.1, batch, &mut rng_w);
            // Split twin: shuffle once, then train one batch-aligned range at a time.
            split.shuffle_epoch_in(&mut arena_s, &all, &mut rng_s);
            let n = arena_s.order.len();
            let (mut loss_s, mut batches) = (0.0, 0);
            let mut lo = 0;
            while lo < n {
                let hi = (lo + batch).min(n);
                let (sum, count) = split.train_batches_in(&mut arena_s, &data, lo..hi, 0.1, batch);
                loss_s += sum;
                batches += count;
                lo = hi;
            }
            assert_eq!(loss_w.to_bits(), (loss_s / batches as f64).to_bits());
            assert_eq!(whole.parameters(), split.parameters());
        }
        // Empty indices: the shuffle half consumes no RNG, matching the epoch early-return.
        let before = fmore_numerics::seeded_rng(43);
        let mut rng_probe = before.clone();
        split.shuffle_epoch_in(&mut arena_s, &[], &mut rng_probe);
        assert!(arena_s.order.is_empty());
        let mut a = rng_probe;
        let mut b = before;
        assert_eq!(rand::Rng::gen::<u64>(&mut a), rand::Rng::gen::<u64>(&mut b));
    }

    #[test]
    fn steady_state_epoch_is_allocation_free() {
        let mut rng = seeded_rng(33);
        let data = SyntheticImageSpec::mnist_like().generate(200, &mut rng);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut model = tiny_mlp(data.feature_dim(), data.num_classes(), 34);
        let mut arena = ScratchArena::new();
        // Warm-up epoch sizes every buffer (including the smaller trailing batch).
        model.train_epoch_in(&mut arena, &data, &all, 0.1, 32, &mut rng);
        model.evaluate_in(&mut arena, &data, &all);
        crate::matrix::alloc_count::reset();
        for _ in 0..3 {
            model.train_epoch_in(&mut arena, &data, &all, 0.1, 32, &mut rng);
        }
        let eval = model.evaluate_in(&mut arena, &data, &all);
        assert_eq!(
            crate::matrix::alloc_count::count(),
            0,
            "steady-state training and evaluation must perform zero matrix allocations"
        );
        assert!(eval.accuracy > 0.0);
    }

    #[test]
    fn scratch_rng_reset_restores_the_construction_stream() {
        use crate::layers::Dropout;
        let mut rng = seeded_rng(35);
        let mut data_rng = seeded_rng(36);
        let data = SyntheticImageSpec::mnist_like().generate(40, &mut data_rng);
        let all: Vec<usize> = (0..data.len()).collect();
        let build = |rng: &mut StdRng| {
            Sequential::new(vec![
                Box::new(Dense::new(64, 16, rng)) as Box<dyn Layer>,
                Box::new(Dropout::new(0.5)),
                Box::new(Dense::new(16, 10, rng)),
            ])
        };
        let template = build(&mut rng);
        // Path A: fresh clone per round (the pre-refactor behaviour).
        let mut cloned = template.clone();
        cloned.train_epoch(&data, &all, 0.1, 16, &mut seeded_rng(37));
        // Path B: reused instance, trained once already, then reset.
        let mut reused = template.clone();
        reused.train_epoch(&data, &all, 0.1, 16, &mut seeded_rng(99));
        reused.set_parameters(&template.parameters());
        reused.reset_scratch_rng();
        reused.train_epoch(&data, &all, 0.1, 16, &mut seeded_rng(37));
        assert_eq!(cloned.parameters(), reused.parameters());
    }

    #[test]
    fn evaluate_does_not_change_parameters() {
        let mut rng = seeded_rng(5);
        let data = SyntheticImageSpec::mnist_like().generate(50, &mut rng);
        let model = tiny_mlp(data.feature_dim(), 10, 6);
        let before = model.parameters();
        let _ = model.evaluate(&data, &(0..data.len()).collect::<Vec<_>>());
        assert_eq!(model.parameters(), before);
    }

    #[test]
    fn empty_index_sets_are_handled() {
        let mut rng = seeded_rng(6);
        let data = SyntheticImageSpec::mnist_like().generate(10, &mut rng);
        let mut model = tiny_mlp(data.feature_dim(), 10, 7);
        assert_eq!(model.train_epoch(&data, &[], 0.1, 8, &mut rng), 0.0);
        let eval = model.evaluate(&data, &[]);
        assert_eq!(eval, Evaluation::default());
        let mut arena = ScratchArena::new();
        assert_eq!(
            model.train_epoch_in(&mut arena, &data, &[], 0.1, 8, &mut rng),
            0.0
        );
        assert_eq!(
            model.evaluate_in(&mut arena, &data, &[]),
            Evaluation::default()
        );
    }

    #[test]
    fn cloned_model_diverges_after_independent_training() {
        let mut rng = seeded_rng(8);
        let data = SyntheticImageSpec::mnist_like().generate(60, &mut rng);
        let model = tiny_mlp(data.feature_dim(), 10, 9);
        let mut clone = model.clone_model();
        assert_eq!(clone.parameters(), model.parameters());
        clone.train_epoch(
            &data,
            &(0..data.len()).collect::<Vec<_>>(),
            0.1,
            16,
            &mut rng,
        );
        assert_ne!(clone.parameters(), model.parameters());
    }
}
