//! From-scratch machine-learning substrate for the FMore reproduction.
//!
//! The paper evaluates FMore with a TensorFlow-based simulator on four datasets (MNIST,
//! Fashion-MNIST, CIFAR-10, HuffPost news headlines) and two model families (CNNs and an
//! LSTM). Mature deep-learning frameworks are not available as offline Rust crates, so this
//! crate implements the required substrate directly:
//!
//! * a small dense [`matrix`] kernel,
//! * neural-network [`layers`] (dense, ReLU/tanh/sigmoid, dropout, 2-D convolution, max
//!   pooling, LSTM) with forward and backward passes,
//! * a [`model::Sequential`] container trained by mini-batch SGD with softmax cross-entropy
//!   ([`loss`]),
//! * ready-made [`models`] mirroring the paper's CNN-for-MNIST, CNN-for-CIFAR and
//!   LSTM-for-news architectures (scaled to the synthetic datasets),
//! * synthetic [`dataset`]s that stand in for the four real datasets while preserving the
//!   properties FMore's evaluation depends on (10 classes, per-class structure, a difficulty
//!   ordering, and data volume/diversity driving accuracy),
//! * the non-IID label-shard [`partition`]er used to distribute data across edge nodes, and
//! * evaluation [`metrics`].
//!
//! # Example
//!
//! ```
//! use fmore_ml::dataset::SyntheticImageSpec;
//! use fmore_ml::models;
//! use fmore_ml::model::Model;
//! use fmore_numerics::seeded_rng;
//!
//! let mut rng = seeded_rng(7);
//! let data = SyntheticImageSpec::mnist_like().generate(200, &mut rng);
//! let mut model = models::mlp_classifier(data.feature_dim(), 10, &mut rng);
//! let all: Vec<usize> = (0..data.len()).collect();
//! for _ in 0..3 {
//!     model.train_epoch(&data, &all, 0.1, 32, &mut rng);
//! }
//! let eval = model.evaluate(&data, &all);
//! assert!(eval.accuracy > 0.2, "better than chance after a little training");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod dataset;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod models;
pub mod partition;

pub use arena::ScratchArena;
pub use dataset::{Dataset, SyntheticImageSpec, SyntheticTextSpec, TaskKind};
pub use matrix::Matrix;
pub use model::{Evaluation, Model, Sequential};
pub use partition::{partition_iid, partition_non_iid, ClientShard, PartitionConfig};
