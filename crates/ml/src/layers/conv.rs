//! 2-D convolution and max-pooling layers.
//!
//! Inputs are mini-batches of flattened image volumes: each row of the input matrix holds a
//! `channels × height × width` volume in channel-major order, as described by [`ImageShape`].

use super::Layer;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// The spatial interpretation of a flattened feature row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageShape {
    /// Number of channels.
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
}

impl ImageShape {
    /// Creates an image shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Length of the flattened feature vector.
    pub fn flat_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.height + y) * self.width + x
    }
}

/// A 2-D convolution with `filters` output channels, square `kernel`, stride 1 and valid
/// padding.
#[derive(Debug, Clone)]
pub struct Conv2d {
    input_shape: ImageShape,
    filters: usize,
    kernel: usize,
    /// `(filters, channels·kernel·kernel)`.
    weights: Matrix,
    /// `(1, filters)`.
    bias: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    cached_input: Option<Matrix>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is larger than the input or `filters == 0`.
    pub fn new(input_shape: ImageShape, filters: usize, kernel: usize, rng: &mut StdRng) -> Self {
        assert!(filters > 0, "Conv2d needs at least one filter");
        assert!(
            kernel >= 1 && kernel <= input_shape.height && kernel <= input_shape.width,
            "kernel {kernel} does not fit into {input_shape:?}"
        );
        let fan_in = input_shape.channels * kernel * kernel;
        Self {
            input_shape,
            filters,
            kernel,
            weights: Matrix::he_init(filters, fan_in, fan_in, rng),
            bias: Matrix::zeros(1, filters),
            grad_w: Matrix::zeros(filters, fan_in),
            grad_b: Matrix::zeros(1, filters),
            cached_input: None,
        }
    }

    /// Shape of the produced feature volume.
    pub fn output_shape(&self) -> ImageShape {
        ImageShape::new(
            self.filters,
            self.input_shape.height - self.kernel + 1,
            self.input_shape.width - self.kernel + 1,
        )
    }
}

impl Layer for Conv2d {
    fn forward_into(
        &mut self,
        input: &Matrix,
        out: &mut Matrix,
        _training: bool,
        _rng: &mut StdRng,
    ) {
        assert_eq!(
            input.cols(),
            self.input_shape.flat_len(),
            "Conv2d input width mismatch"
        );
        let mut cache = self.cached_input.take().unwrap_or_default();
        cache.copy_from(input);
        self.cached_input = Some(cache);
        let out_shape = self.output_shape();
        let (oh, ow) = (out_shape.height, out_shape.width);
        // Every output element is written below, so stale contents need no zero-fill.
        out.resize(input.rows(), out_shape.flat_len());
        let k = self.kernel;
        let in_shape = self.input_shape;
        for b in 0..input.rows() {
            let row = input.row(b);
            for f in 0..self.filters {
                let w_row = self.weights.row(f);
                let bias = self.bias.data()[f];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        let mut widx = 0;
                        for c in 0..in_shape.channels {
                            for ky in 0..k {
                                for kx in 0..k {
                                    acc += w_row[widx] * row[in_shape.index(c, oy + ky, ox + kx)];
                                    widx += 1;
                                }
                            }
                        }
                        out.set(b, out_shape.index(f, oy, ox), acc);
                    }
                }
            }
        }
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Conv2d layer");
        let out_shape = self.output_shape();
        let (oh, ow) = (out_shape.height, out_shape.width);
        let k = self.kernel;
        let in_shape = self.input_shape;
        grad_input.resize(input.rows(), in_shape.flat_len());
        grad_input.fill(0.0);
        for b in 0..input.rows() {
            let in_row = input.row(b);
            let go_row = grad_output.row(b);
            for f in 0..self.filters {
                let w_row_start = f * self.weights.cols();
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go_row[out_shape.index(f, oy, ox)];
                        if g == 0.0 {
                            continue;
                        }
                        self.grad_b.data_mut()[f] += g;
                        let mut widx = 0;
                        for c in 0..in_shape.channels {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let in_idx = in_shape.index(c, oy + ky, ox + kx);
                                    self.grad_w.data_mut()[w_row_start + widx] +=
                                        g * in_row[in_idx];
                                    grad_input.data_mut()[b * in_shape.flat_len() + in_idx] +=
                                        g * self.weights.data()[w_row_start + widx];
                                    widx += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn param_count(&self) -> usize {
        self.weights.data().len() + self.bias.data().len()
    }

    fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.weights.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f64]) -> usize {
        let w_len = self.weights.data().len();
        let b_len = self.bias.data().len();
        self.weights.data_mut().copy_from_slice(&src[..w_len]);
        self.bias
            .data_mut()
            .copy_from_slice(&src[w_len..w_len + b_len]);
        w_len + b_len
    }

    fn apply_gradients(&mut self, lr: f64) {
        self.weights.add_scaled_in_place(&self.grad_w, -lr);
        self.bias.add_scaled_in_place(&self.grad_b, -lr);
        self.grad_w.scale_in_place(0.0);
        self.grad_b.scale_in_place(0.0);
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// 2×2 max pooling with stride 2 (trailing odd rows/columns are dropped).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    input_shape: ImageShape,
    /// Argmax input index for every output element of the last forward pass.
    cached_argmax: Option<Vec<usize>>,
    cached_batch: usize,
}

impl MaxPool2d {
    /// Creates a 2×2 max-pooling layer over volumes of the given shape.
    pub fn new(input_shape: ImageShape) -> Self {
        Self {
            input_shape,
            cached_argmax: None,
            cached_batch: 0,
        }
    }

    /// Shape of the pooled feature volume.
    pub fn output_shape(&self) -> ImageShape {
        ImageShape::new(
            self.input_shape.channels,
            self.input_shape.height / 2,
            self.input_shape.width / 2,
        )
    }
}

impl Layer for MaxPool2d {
    fn forward_into(
        &mut self,
        input: &Matrix,
        out: &mut Matrix,
        _training: bool,
        _rng: &mut StdRng,
    ) {
        assert_eq!(
            input.cols(),
            self.input_shape.flat_len(),
            "MaxPool2d input width mismatch"
        );
        let out_shape = self.output_shape();
        // Every output element and argmax slot is written below.
        out.resize(input.rows(), out_shape.flat_len());
        let mut argmax = self.cached_argmax.take().unwrap_or_default();
        argmax.resize(input.rows() * out_shape.flat_len(), 0);
        let in_shape = self.input_shape;
        for b in 0..input.rows() {
            let row = input.row(b);
            for c in 0..in_shape.channels {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = in_shape.index(c, oy * 2 + dy, ox * 2 + dx);
                                if row[idx] > best {
                                    best = row[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = out_shape.index(c, oy, ox);
                        out.set(b, out_idx, best);
                        argmax[b * out_shape.flat_len() + out_idx] = best_idx;
                    }
                }
            }
        }
        self.cached_argmax = Some(argmax);
        self.cached_batch = input.rows();
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let argmax = self
            .cached_argmax
            .as_ref()
            .expect("backward called before forward on MaxPool2d layer");
        let out_flat = self.output_shape().flat_len();
        grad_input.resize(self.cached_batch, self.input_shape.flat_len());
        grad_input.fill(0.0);
        for b in 0..self.cached_batch {
            for o in 0..out_flat {
                let in_idx = argmax[b * out_flat + o];
                grad_input.data_mut()[b * self.input_shape.flat_len() + in_idx] +=
                    grad_output.get(b, o);
            }
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self {
            input_shape: self.input_shape,
            cached_argmax: None,
            cached_batch: 0,
        })
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use fmore_numerics::seeded_rng;

    #[test]
    fn image_shape_indexing() {
        let s = ImageShape::new(2, 3, 4);
        assert_eq!(s.flat_len(), 24);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.index(1, 2, 3), 23);
    }

    #[test]
    fn conv_identity_kernel_reproduces_input_patch() {
        let mut rng = seeded_rng(1);
        let shape = ImageShape::new(1, 3, 3);
        let mut conv = Conv2d::new(shape, 1, 1, &mut rng);
        // 1×1 kernel with weight 1, bias 0: output == input.
        assert_eq!(conv.read_params(&[1.0, 0.0]), 2);
        let x = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f64).collect());
        let y = conv.forward(&x, true, &mut rng);
        assert_eq!(y.data(), x.data());
        assert_eq!(conv.output_shape(), shape);
    }

    #[test]
    fn conv_known_kernel_computes_expected_sums() {
        let mut rng = seeded_rng(2);
        let shape = ImageShape::new(1, 3, 3);
        let mut conv = Conv2d::new(shape, 1, 2, &mut rng);
        // All-ones 2x2 kernel, bias 0: each output is the sum of a 2x2 patch.
        assert_eq!(conv.read_params(&[1.0, 1.0, 1.0, 1.0, 0.0]), 5);
        let x = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f64).collect());
        let y = conv.forward(&x, true, &mut rng);
        // Patches: [1,2,4,5]=12, [2,3,5,6]=16, [4,5,7,8]=24, [5,6,8,9]=28.
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
        assert_eq!(conv.output_shape(), ImageShape::new(1, 2, 2));
    }

    #[test]
    fn conv_input_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(3);
        let shape = ImageShape::new(2, 4, 4);
        let mut conv = Conv2d::new(shape, 3, 3, &mut rng);
        let x = Matrix::random_uniform(2, shape.flat_len(), 1.0, &mut rng);
        check_input_gradient(&mut conv, &x, 1e-4);
    }

    #[test]
    fn conv_param_roundtrip_and_update() {
        let mut rng = seeded_rng(4);
        let shape = ImageShape::new(1, 4, 4);
        let mut conv = Conv2d::new(shape, 2, 3, &mut rng);
        let mut params = Vec::new();
        conv.write_params(&mut params);
        assert_eq!(params.len(), conv.param_count());
        // Gradient step changes the parameters.
        let x = Matrix::random_uniform(1, shape.flat_len(), 1.0, &mut rng);
        let y = conv.forward(&x, true, &mut rng);
        conv.backward(&y.map(|_| 1.0));
        conv.apply_gradients(0.1);
        let mut after = Vec::new();
        conv.write_params(&mut after);
        assert_ne!(params, after);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn conv_rejects_oversized_kernel() {
        let mut rng = seeded_rng(5);
        let _ = Conv2d::new(ImageShape::new(1, 2, 2), 1, 3, &mut rng);
    }

    #[test]
    fn maxpool_selects_maxima_and_routes_gradients() {
        let mut rng = seeded_rng(6);
        let shape = ImageShape::new(1, 4, 4);
        let mut pool = MaxPool2d::new(shape);
        #[rustfmt::skip]
        let x = Matrix::from_vec(1, 16, vec![
            1.0, 2.0, 3.0, 4.0,
            5.0, 6.0, 7.0, 8.0,
            9.0, 10.0, 11.0, 12.0,
            13.0, 14.0, 15.0, 16.0,
        ]);
        let y = pool.forward(&x, true, &mut rng);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(pool.output_shape(), ImageShape::new(1, 2, 2));
        let grad = pool.backward(&Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        // Gradient lands exactly on the argmax positions.
        let mut expected = vec![0.0; 16];
        expected[5] = 1.0;
        expected[7] = 2.0;
        expected[13] = 3.0;
        expected[15] = 4.0;
        assert_eq!(grad.data(), expected.as_slice());
    }

    #[test]
    fn maxpool_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(7);
        let shape = ImageShape::new(2, 4, 4);
        let mut pool = MaxPool2d::new(shape);
        let x = Matrix::random_uniform(2, shape.flat_len(), 1.0, &mut rng);
        check_input_gradient(&mut pool, &x, 1e-4);
    }
}
