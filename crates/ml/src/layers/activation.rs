//! Element-wise activation layers (ReLU, tanh, sigmoid).

use super::Layer;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Which activation function an [`Activation`] layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^(−x))`.
    Sigmoid,
}

impl ActivationKind {
    fn apply(self, x: f64) -> f64 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            ActivationKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Sigmoid => y * (1.0 - y),
        }
    }
}

/// An element-wise activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    cached_output: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cached_output: None,
        }
    }

    /// Shorthand for a ReLU layer.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Shorthand for a tanh layer.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// Shorthand for a sigmoid layer.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }
}

impl Layer for Activation {
    fn forward_into(
        &mut self,
        input: &Matrix,
        out: &mut Matrix,
        _training: bool,
        _rng: &mut StdRng,
    ) {
        out.resize(input.rows(), input.cols());
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            *o = self.kind.apply(x);
        }
        let mut cache = self.cached_output.take().unwrap_or_default();
        cache.copy_from(out);
        self.cached_output = Some(cache);
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward on Activation layer");
        assert_eq!(
            (grad_output.rows(), grad_output.cols()),
            (out.rows(), out.cols()),
            "activation gradient shape mismatch"
        );
        grad_input.resize(grad_output.rows(), grad_output.cols());
        for ((gi, &go), &y) in grad_input
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(out.data())
        {
            *gi = go * self.kind.derivative_from_output(y);
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "relu",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Sigmoid => "sigmoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use fmore_numerics::seeded_rng;

    #[test]
    fn relu_clamps_negatives() {
        let mut rng = seeded_rng(1);
        let mut layer = Activation::relu();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = layer.forward(&x, true, &mut rng);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        assert_eq!(layer.name(), "relu");
        assert_eq!(layer.param_count(), 0);
    }

    #[test]
    fn sigmoid_and_tanh_ranges() {
        let mut rng = seeded_rng(1);
        let x = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let s = Activation::sigmoid().forward(&x, true, &mut rng);
        assert!(s.data()[0] < 0.01 && (s.data()[1] - 0.5).abs() < 1e-12 && s.data()[2] > 0.99);
        let t = Activation::tanh().forward(&x, true, &mut rng);
        assert!(t.data()[0] < -0.99 && t.data()[1].abs() < 1e-12 && t.data()[2] > 0.99);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // ReLU is checked away from the kink at zero.
        let x = Matrix::from_vec(1, 4, vec![-0.9, -0.3, 0.4, 1.2]);
        check_input_gradient(&mut Activation::relu(), &x, 1e-4);
        check_input_gradient(&mut Activation::tanh(), &x, 1e-4);
        check_input_gradient(&mut Activation::sigmoid(), &x, 1e-4);
    }

    #[test]
    fn clone_preserves_kind() {
        let layer = Activation::tanh();
        let cloned = layer.clone_layer();
        assert_eq!(cloned.name(), "tanh");
    }
}
