//! Inverted dropout.

use super::Layer;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Inverted dropout: during training each unit is zeroed with probability `rate` and the
/// survivors are scaled by `1 / (1 − rate)`; at evaluation time the layer is the identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f64,
    /// Reusable mask buffer; only meaningful while `mask_active` is set.
    mask: Matrix,
    /// Whether the last forward pass applied the mask (i.e. ran in training mode).
    mask_active: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `rate`, clamped into `[0, 0.95]`.
    pub fn new(rate: f64) -> Self {
        Self {
            rate: rate.clamp(0.0, 0.95),
            mask: Matrix::default(),
            mask_active: false,
        }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix, training: bool, rng: &mut StdRng) {
        if !training || self.rate == 0.0 {
            self.mask_active = false;
            out.copy_from(input);
            return;
        }
        let keep = 1.0 - self.rate;
        self.mask.resize(input.rows(), input.cols());
        for v in self.mask.data_mut() {
            *v = if rng.gen::<f64>() < keep {
                1.0 / keep
            } else {
                0.0
            };
        }
        self.mask_active = true;
        out.resize(input.rows(), input.cols());
        for ((o, &x), &m) in out
            .data_mut()
            .iter_mut()
            .zip(input.data())
            .zip(self.mask.data())
        {
            *o = x * m;
        }
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        if self.mask_active {
            assert_eq!(
                (grad_output.rows(), grad_output.cols()),
                (self.mask.rows(), self.mask.cols()),
                "dropout gradient shape mismatch"
            );
            grad_input.resize(grad_output.rows(), grad_output.cols());
            for ((gi, &go), &m) in grad_input
                .data_mut()
                .iter_mut()
                .zip(grad_output.data())
                .zip(self.mask.data())
            {
                *gi = go * m;
            }
        } else {
            grad_input.copy_from(grad_output);
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Self {
            rate: self.rate,
            mask: Matrix::default(),
            mask_active: false,
        })
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_numerics::seeded_rng;

    #[test]
    fn evaluation_mode_is_identity() {
        let mut rng = seeded_rng(1);
        let mut layer = Dropout::new(0.5);
        let x = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let y = layer.forward(&x, false, &mut rng);
        assert_eq!(y, x);
        // Backward without a mask is also the identity.
        let g = Matrix::from_vec(2, 3, vec![2.0; 6]);
        assert_eq!(layer.backward(&g), g);
    }

    #[test]
    fn training_mode_zeroes_and_rescales() {
        let mut rng = seeded_rng(2);
        let mut layer = Dropout::new(0.5);
        let x = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let y = layer.forward(&x, true, &mut rng);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y
            .data()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-12)
            .count();
        assert_eq!(zeros + kept, 1000);
        assert!(
            (400..600).contains(&zeros),
            "roughly half should be dropped, got {zeros}"
        );
        // Expected value is preserved by the inverted scaling.
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut rng = seeded_rng(3);
        let mut layer = Dropout::new(0.4);
        let x = Matrix::from_vec(1, 50, vec![1.0; 50]);
        let y = layer.forward(&x, true, &mut rng);
        let grad = layer.backward(&Matrix::from_vec(1, 50, vec![1.0; 50]));
        // Gradient is zero exactly where the output was dropped.
        for (o, g) in y.data().iter().zip(grad.data()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn rate_is_clamped_and_zero_rate_is_identity() {
        assert_eq!(Dropout::new(1.5).rate(), 0.95);
        assert_eq!(Dropout::new(-0.2).rate(), 0.0);
        let mut rng = seeded_rng(4);
        let mut layer = Dropout::new(0.0);
        let x = Matrix::from_vec(1, 5, vec![3.0; 5]);
        assert_eq!(layer.forward(&x, true, &mut rng), x);
        assert_eq!(layer.name(), "dropout");
    }
}
