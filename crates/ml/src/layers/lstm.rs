//! A single-layer LSTM that consumes a flattened sequence and emits the last hidden state.
//!
//! The paper's news-headline classifier is an LSTM followed by a dense softmax layer. Here
//! the input row is a flattened sequence `x_1 … x_T` (each `x_t` of width `input_dim`), the
//! layer runs the standard LSTM recurrence and outputs `h_T`, which downstream dense layers
//! turn into class logits. The backward pass is full back-propagation through time.

use super::Layer;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Single-layer LSTM over flattened sequences.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    seq_len: usize,
    /// `(input_dim, 4·hidden)` — gate order `[i, f, g, o]`.
    w_x: Matrix,
    /// `(hidden, 4·hidden)`.
    w_h: Matrix,
    /// `(1, 4·hidden)`.
    bias: Matrix,
    grad_wx: Matrix,
    grad_wh: Matrix,
    grad_b: Matrix,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    /// Per-timestep input slices `(batch, input_dim)`.
    xs: Vec<Matrix>,
    /// Hidden states `h_0 … h_T` (index 0 is the initial zero state).
    hs: Vec<Matrix>,
    /// Cell states `c_0 … c_T`.
    cs: Vec<Matrix>,
    /// Gate activations per timestep: `(i, f, g, o)`.
    gates: Vec<(Matrix, Matrix, Matrix, Matrix)>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Lstm {
    /// Creates an LSTM layer for sequences of `seq_len` steps, each of width `input_dim`,
    /// with `hidden_dim` hidden units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(seq_len: usize, input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        assert!(
            seq_len > 0 && input_dim > 0 && hidden_dim > 0,
            "LSTM dimensions must be positive"
        );
        Self {
            input_dim,
            hidden_dim,
            seq_len,
            w_x: Matrix::he_init(input_dim, 4 * hidden_dim, input_dim, rng),
            w_h: Matrix::he_init(hidden_dim, 4 * hidden_dim, hidden_dim, rng),
            bias: Matrix::zeros(1, 4 * hidden_dim),
            grad_wx: Matrix::zeros(input_dim, 4 * hidden_dim),
            grad_wh: Matrix::zeros(hidden_dim, 4 * hidden_dim),
            grad_b: Matrix::zeros(1, 4 * hidden_dim),
            cache: None,
        }
    }

    /// Hidden-state width (the layer's output dimension).
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Expected flattened input width `seq_len · input_dim`.
    pub fn input_width(&self) -> usize {
        self.seq_len * self.input_dim
    }

    fn slice_timestep(&self, input: &Matrix, t: usize) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), self.input_dim);
        for b in 0..input.rows() {
            let row = input.row(b);
            out.row_mut(b)
                .copy_from_slice(&row[t * self.input_dim..(t + 1) * self.input_dim]);
        }
        out
    }

    /// Splits a `(batch, 4H)` pre-activation into activated gates `(i, f, g, o)`.
    fn activate_gates(&self, z: &Matrix) -> (Matrix, Matrix, Matrix, Matrix) {
        let h = self.hidden_dim;
        let batch = z.rows();
        let mut i = Matrix::zeros(batch, h);
        let mut f = Matrix::zeros(batch, h);
        let mut g = Matrix::zeros(batch, h);
        let mut o = Matrix::zeros(batch, h);
        for b in 0..batch {
            let row = z.row(b);
            for j in 0..h {
                i.set(b, j, sigmoid(row[j]));
                f.set(b, j, sigmoid(row[h + j]));
                g.set(b, j, row[2 * h + j].tanh());
                o.set(b, j, sigmoid(row[3 * h + j]));
            }
        }
        (i, f, g, o)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Matrix, _training: bool, _rng: &mut StdRng) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_width(),
            "LSTM input width mismatch"
        );
        let batch = input.rows();
        let mut hs = vec![Matrix::zeros(batch, self.hidden_dim)];
        let mut cs = vec![Matrix::zeros(batch, self.hidden_dim)];
        let mut xs = Vec::with_capacity(self.seq_len);
        let mut gates = Vec::with_capacity(self.seq_len);

        for t in 0..self.seq_len {
            let x_t = self.slice_timestep(input, t);
            let z = x_t
                .matmul(&self.w_x)
                .add(&hs[t].matmul(&self.w_h))
                .add_row_broadcast(&self.bias);
            let (i, f, g, o) = self.activate_gates(&z);
            let c_t = f.hadamard(&cs[t]).add(&i.hadamard(&g));
            let h_t = o.hadamard(&c_t.map(f64::tanh));
            xs.push(x_t);
            gates.push((i, f, g, o));
            cs.push(c_t);
            hs.push(h_t);
        }
        let out = hs.last().unwrap().clone();
        self.cache = Some(Cache { xs, hs, cs, gates });
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self
            .cache
            .as_ref()
            .expect("backward called before forward on LSTM layer");
        let batch = grad_output.rows();
        let h_dim = self.hidden_dim;
        let mut grad_input = Matrix::zeros(batch, self.input_width());
        let mut dh = grad_output.clone();
        let mut dc = Matrix::zeros(batch, h_dim);

        for t in (0..self.seq_len).rev() {
            let (i, f, g, o) = &cache.gates[t];
            let c_t = &cache.cs[t + 1];
            let c_prev = &cache.cs[t];
            let h_prev = &cache.hs[t];
            let x_t = &cache.xs[t];

            let tanh_c = c_t.map(f64::tanh);
            let d_o = dh.hadamard(&tanh_c);
            let dct = dc.add(&dh.hadamard(o).hadamard(&tanh_c.map(|y| 1.0 - y * y)));
            let d_i = dct.hadamard(g);
            let d_g = dct.hadamard(i);
            let d_f = dct.hadamard(c_prev);

            // Pre-activation gradients.
            let dz_i = d_i.hadamard(&i.map(|y| y * (1.0 - y)));
            let dz_f = d_f.hadamard(&f.map(|y| y * (1.0 - y)));
            let dz_g = d_g.hadamard(&g.map(|y| 1.0 - y * y));
            let dz_o = d_o.hadamard(&o.map(|y| y * (1.0 - y)));

            // Assemble (batch, 4H).
            let mut dz = Matrix::zeros(batch, 4 * h_dim);
            for b in 0..batch {
                for j in 0..h_dim {
                    dz.set(b, j, dz_i.get(b, j));
                    dz.set(b, h_dim + j, dz_f.get(b, j));
                    dz.set(b, 2 * h_dim + j, dz_g.get(b, j));
                    dz.set(b, 3 * h_dim + j, dz_o.get(b, j));
                }
            }

            self.grad_wx = self.grad_wx.add(&x_t.transpose().matmul(&dz));
            self.grad_wh = self.grad_wh.add(&h_prev.transpose().matmul(&dz));
            self.grad_b = self.grad_b.add(&dz.sum_rows());

            let dx = dz.matmul(&self.w_x.transpose());
            for b in 0..batch {
                let dst = &mut grad_input.row_mut(b)[t * self.input_dim..(t + 1) * self.input_dim];
                for (d, s) in dst.iter_mut().zip(dx.row(b)) {
                    *d += s;
                }
            }
            dh = dz.matmul(&self.w_h.transpose());
            dc = dct.hadamard(f);
        }
        grad_input
    }

    fn param_count(&self) -> usize {
        self.w_x.data().len() + self.w_h.data().len() + self.bias.data().len()
    }

    fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.w_x.data());
        out.extend_from_slice(self.w_h.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f64]) -> usize {
        let (a, b, c) = (
            self.w_x.data().len(),
            self.w_h.data().len(),
            self.bias.data().len(),
        );
        self.w_x.data_mut().copy_from_slice(&src[..a]);
        self.w_h.data_mut().copy_from_slice(&src[a..a + b]);
        self.bias.data_mut().copy_from_slice(&src[a + b..a + b + c]);
        a + b + c
    }

    fn apply_gradients(&mut self, lr: f64) {
        self.w_x.add_scaled_in_place(&self.grad_wx, -lr);
        self.w_h.add_scaled_in_place(&self.grad_wh, -lr);
        self.bias.add_scaled_in_place(&self.grad_b, -lr);
        self.grad_wx.scale_in_place(0.0);
        self.grad_wh.scale_in_place(0.0);
        self.grad_b.scale_in_place(0.0);
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use fmore_numerics::seeded_rng;

    #[test]
    fn forward_shapes_and_accessors() {
        let mut rng = seeded_rng(1);
        let mut lstm = Lstm::new(5, 3, 4, &mut rng);
        assert_eq!(lstm.input_width(), 15);
        assert_eq!(lstm.hidden_dim(), 4);
        assert_eq!(lstm.name(), "lstm");
        let x = Matrix::random_uniform(2, 15, 1.0, &mut rng);
        let h = lstm.forward(&x, true, &mut rng);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 4);
        // Hidden state stays in (-1, 1) because it is o ⊙ tanh(c).
        assert!(h.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_weights_give_zero_output() {
        let mut rng = seeded_rng(2);
        let mut lstm = Lstm::new(3, 2, 2, &mut rng);
        let zeros = vec![0.0; lstm.param_count()];
        lstm.read_params(&zeros);
        let x = Matrix::random_uniform(1, 6, 1.0, &mut rng);
        let h = lstm.forward(&x, true, &mut rng);
        // With all weights and biases at zero, i = f = o = 0.5, g = 0, so c stays 0 and h = 0.
        assert!(h.data().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(3);
        let mut lstm = Lstm::new(3, 2, 3, &mut rng);
        let x = Matrix::random_uniform(2, 6, 0.8, &mut rng);
        check_input_gradient(&mut lstm, &x, 1e-3);
    }

    #[test]
    fn parameter_roundtrip() {
        let mut rng = seeded_rng(4);
        let lstm = Lstm::new(4, 3, 5, &mut rng);
        let mut params = Vec::new();
        lstm.write_params(&mut params);
        assert_eq!(params.len(), lstm.param_count());
        let mut other = Lstm::new(4, 3, 5, &mut rng);
        assert_eq!(other.read_params(&params), params.len());
        let mut back = Vec::new();
        other.write_params(&mut back);
        assert_eq!(params, back);
    }

    #[test]
    fn training_step_moves_parameters_and_reduces_loss() {
        // Learn to output a large positive first hidden unit for a fixed input.
        let mut rng = seeded_rng(5);
        let mut lstm = Lstm::new(2, 2, 2, &mut rng);
        let x = Matrix::from_vec(1, 4, vec![0.5, -0.3, 0.8, 0.1]);
        let loss = |h: &Matrix| (1.0 - h.get(0, 0)).powi(2);
        let mut rng2 = seeded_rng(6);
        let h0 = lstm.forward(&x, true, &mut rng2);
        let initial = loss(&h0);
        for _ in 0..200 {
            let h = lstm.forward(&x, true, &mut rng2);
            let mut grad = Matrix::zeros(1, 2);
            grad.set(0, 0, -2.0 * (1.0 - h.get(0, 0)));
            lstm.backward(&grad);
            lstm.apply_gradients(0.1);
        }
        let h_final = lstm.forward(&x, true, &mut rng2);
        assert!(
            loss(&h_final) < initial * 0.5,
            "loss should at least halve: {} -> {}",
            initial,
            loss(&h_final)
        );
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_is_rejected() {
        let mut rng = seeded_rng(7);
        let _ = Lstm::new(0, 2, 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_is_rejected() {
        let mut rng = seeded_rng(8);
        let mut lstm = Lstm::new(2, 2, 2, &mut rng);
        let x = Matrix::zeros(1, 5);
        let _ = lstm.forward(&x, true, &mut rng);
    }
}
