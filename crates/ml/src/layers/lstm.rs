//! A single-layer LSTM that consumes a flattened sequence and emits the last hidden state.
//!
//! The paper's news-headline classifier is an LSTM followed by a dense softmax layer. Here
//! the input row is a flattened sequence `x_1 … x_T` (each `x_t` of width `input_dim`), the
//! layer runs the standard LSTM recurrence and outputs `h_T`, which downstream dense layers
//! turn into class logits. The backward pass is full back-propagation through time.
//!
//! All per-timestep state (input slices, hidden/cell states, gate activations) and every
//! intermediate of the recurrence live in reusable buffers owned by the layer, so repeated
//! forward/backward passes allocate nothing once the largest batch size has been seen. The
//! fused element-wise loops evaluate exactly the same expression trees as the original
//! `map`/`hadamard`/`add` compositions, keeping results bit-identical.

use super::Layer;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Single-layer LSTM over flattened sequences.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    seq_len: usize,
    /// `(input_dim, 4·hidden)` — gate order `[i, f, g, o]`.
    w_x: Matrix,
    /// `(hidden, 4·hidden)`.
    w_h: Matrix,
    /// `(1, 4·hidden)`.
    bias: Matrix,
    grad_wx: Matrix,
    grad_wh: Matrix,
    grad_b: Matrix,
    cache: Option<Cache>,
    scratch: Scratch,
}

/// Per-timestep state kept for back-propagation through time; buffers are reused across
/// forward passes.
#[derive(Debug, Clone, Default)]
struct Cache {
    /// Per-timestep input slices `(batch, input_dim)`.
    xs: Vec<Matrix>,
    /// Hidden states `h_0 … h_T` (index 0 is the initial zero state).
    hs: Vec<Matrix>,
    /// Cell states `c_0 … c_T`.
    cs: Vec<Matrix>,
    /// Gate activations per timestep: `(i, f, g, o)`.
    gates: Vec<(Matrix, Matrix, Matrix, Matrix)>,
}

impl Cache {
    fn ensure(&mut self, seq_len: usize) {
        if self.xs.len() < seq_len {
            self.xs.resize_with(seq_len, Matrix::default);
            self.gates.resize_with(seq_len, Default::default);
            self.hs.resize_with(seq_len + 1, Matrix::default);
            self.cs.resize_with(seq_len + 1, Matrix::default);
        }
    }
}

/// Reusable intermediates of the recurrence (pre-activations, running gradients, product
/// buffers); one set per layer instance.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Pre-activation `(batch, 4H)` in forward; gate gradient `dz` in backward.
    z: Matrix,
    /// `h_prev · w_h` forward partial.
    zh: Matrix,
    /// Running hidden-state gradient.
    dh: Matrix,
    /// Next iteration's hidden-state gradient (swapped with `dh`).
    dh_next: Matrix,
    /// Running cell-state gradient.
    dc: Matrix,
    /// Cell gradient through the tanh gate.
    dct: Matrix,
    /// Timestep input gradient `dz · w_xᵀ`.
    dx: Matrix,
    /// Weight-gradient product buffer.
    prod: Matrix,
    /// Bias-gradient row buffer.
    bsum: Matrix,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Lstm {
    /// Creates an LSTM layer for sequences of `seq_len` steps, each of width `input_dim`,
    /// with `hidden_dim` hidden units.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(seq_len: usize, input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        assert!(
            seq_len > 0 && input_dim > 0 && hidden_dim > 0,
            "LSTM dimensions must be positive"
        );
        Self {
            input_dim,
            hidden_dim,
            seq_len,
            w_x: Matrix::he_init(input_dim, 4 * hidden_dim, input_dim, rng),
            w_h: Matrix::he_init(hidden_dim, 4 * hidden_dim, hidden_dim, rng),
            bias: Matrix::zeros(1, 4 * hidden_dim),
            grad_wx: Matrix::zeros(input_dim, 4 * hidden_dim),
            grad_wh: Matrix::zeros(hidden_dim, 4 * hidden_dim),
            grad_b: Matrix::zeros(1, 4 * hidden_dim),
            cache: None,
            scratch: Scratch::default(),
        }
    }

    /// Hidden-state width (the layer's output dimension).
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Expected flattened input width `seq_len · input_dim`.
    pub fn input_width(&self) -> usize {
        self.seq_len * self.input_dim
    }
}

impl Layer for Lstm {
    fn forward_into(
        &mut self,
        input: &Matrix,
        out: &mut Matrix,
        _training: bool,
        _rng: &mut StdRng,
    ) {
        assert_eq!(
            input.cols(),
            self.input_width(),
            "LSTM input width mismatch"
        );
        let batch = input.rows();
        let h_dim = self.hidden_dim;
        let mut cache = self.cache.take().unwrap_or_default();
        cache.ensure(self.seq_len);
        // Initial hidden/cell state is zero.
        cache.hs[0].resize(batch, h_dim);
        cache.hs[0].fill(0.0);
        cache.cs[0].resize(batch, h_dim);
        cache.cs[0].fill(0.0);

        for t in 0..self.seq_len {
            // Slice timestep t of the flattened input into the reusable x_t buffer.
            let x_t = &mut cache.xs[t];
            x_t.resize(batch, self.input_dim);
            for b in 0..batch {
                x_t.row_mut(b)
                    .copy_from_slice(&input.row(b)[t * self.input_dim..(t + 1) * self.input_dim]);
            }

            // Pre-activation z = x_t·w_x + h_prev·w_h + bias.
            let z = &mut self.scratch.z;
            cache.xs[t].matmul_into(&self.w_x, z);
            cache.hs[t].matmul_into(&self.w_h, &mut self.scratch.zh);
            for (a, &b) in z.data_mut().iter_mut().zip(self.scratch.zh.data()) {
                *a += b;
            }
            z.add_row_inplace(&self.bias);

            // Gate activations, order [i, f, g, o].
            let (gi, gf, gg, go) = &mut cache.gates[t];
            gi.resize(batch, h_dim);
            gf.resize(batch, h_dim);
            gg.resize(batch, h_dim);
            go.resize(batch, h_dim);
            for b in 0..batch {
                let row = z.row(b);
                for j in 0..h_dim {
                    gi.set(b, j, sigmoid(row[j]));
                    gf.set(b, j, sigmoid(row[h_dim + j]));
                    gg.set(b, j, row[2 * h_dim + j].tanh());
                    go.set(b, j, sigmoid(row[3 * h_dim + j]));
                }
            }

            // c_t = f ⊙ c_prev + i ⊙ g and h_t = o ⊙ tanh(c_t).
            let (c_head, c_tail) = cache.cs.split_at_mut(t + 1);
            let c_prev = &c_head[t];
            let c_t = &mut c_tail[0];
            c_t.resize(batch, h_dim);
            let h_t = &mut cache.hs[t + 1];
            h_t.resize(batch, h_dim);
            for ((((((c, &cp), &i), &f), &g), &o), h) in c_t
                .data_mut()
                .iter_mut()
                .zip(c_prev.data())
                .zip(gi.data())
                .zip(gf.data())
                .zip(gg.data())
                .zip(go.data())
                .zip(h_t.data_mut())
            {
                *c = f * cp + i * g;
                *h = o * c.tanh();
            }
        }
        out.copy_from(&cache.hs[self.seq_len]);
        self.cache = Some(cache);
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let cache = self
            .cache
            .as_ref()
            .expect("backward called before forward on LSTM layer");
        let batch = grad_output.rows();
        let h_dim = self.hidden_dim;
        let scratch = &mut self.scratch;
        grad_input.resize(batch, self.seq_len * self.input_dim);
        grad_input.fill(0.0);
        scratch.dh.copy_from(grad_output);
        scratch.dc.resize(batch, h_dim);
        scratch.dc.fill(0.0);

        for t in (0..self.seq_len).rev() {
            let (gi, gf, gg, go) = &cache.gates[t];
            let c_t = &cache.cs[t + 1];
            let c_prev = &cache.cs[t];
            let h_prev = &cache.hs[t];
            let x_t = &cache.xs[t];

            // Gate-gradient assembly, fused: for every (b, j) compute the cell gradient
            // dct = dc + (dh ⊙ o) ⊙ (1 − tanh(c)²) and the four pre-activation gradients
            //   dz_i = (dct ⊙ g) ⊙ i(1−i)      dz_f = (dct ⊙ c_prev) ⊙ f(1−f)
            //   dz_g = (dct ⊙ i) ⊙ (1−g²)      dz_o = (dh ⊙ tanh c) ⊙ o(1−o)
            // — the exact expression trees of the original map/hadamard composition.
            let dz = &mut scratch.z;
            dz.resize(batch, 4 * h_dim);
            scratch.dct.resize(batch, h_dim);
            for b in 0..batch {
                let dh_row = scratch.dh.row(b);
                let dc_row = scratch.dc.row(b);
                let i_row = gi.row(b);
                let f_row = gf.row(b);
                let g_row = gg.row(b);
                let o_row = go.row(b);
                let ct_row = c_t.row(b);
                let cp_row = c_prev.row(b);
                for j in 0..h_dim {
                    let tanh_c = ct_row[j].tanh();
                    let dct = dc_row[j] + (dh_row[j] * o_row[j]) * (1.0 - tanh_c * tanh_c);
                    scratch.dct.set(b, j, dct);
                    let dz_row = dz.row_mut(b);
                    dz_row[j] = (dct * g_row[j]) * (i_row[j] * (1.0 - i_row[j]));
                    dz_row[h_dim + j] = (dct * cp_row[j]) * (f_row[j] * (1.0 - f_row[j]));
                    dz_row[2 * h_dim + j] = (dct * i_row[j]) * (1.0 - g_row[j] * g_row[j]);
                    dz_row[3 * h_dim + j] = (dh_row[j] * tanh_c) * (o_row[j] * (1.0 - o_row[j]));
                }
            }

            // Parameter gradients accumulate across timesteps; the products are formed in
            // their own buffer first so the accumulation order matches the original
            // `grad += product` composition.
            x_t.matmul_transpose_a_into(dz, &mut scratch.prod);
            self.grad_wx.add_scaled_in_place(&scratch.prod, 1.0);
            h_prev.matmul_transpose_a_into(dz, &mut scratch.prod);
            self.grad_wh.add_scaled_in_place(&scratch.prod, 1.0);
            dz.sum_rows_into(&mut scratch.bsum);
            self.grad_b.add_scaled_in_place(&scratch.bsum, 1.0);

            // Input gradient of this timestep, scattered into the flattened layout.
            dz.matmul_transpose_b_into(&self.w_x, &mut scratch.dx);
            for b in 0..batch {
                let dst = &mut grad_input.row_mut(b)[t * self.input_dim..(t + 1) * self.input_dim];
                for (d, s) in dst.iter_mut().zip(scratch.dx.row(b)) {
                    *d += s;
                }
            }

            // Recurrent gradients for timestep t − 1.
            dz.matmul_transpose_b_into(&self.w_h, &mut scratch.dh_next);
            std::mem::swap(&mut scratch.dh, &mut scratch.dh_next);
            for ((dc, &dct), &f) in scratch
                .dc
                .data_mut()
                .iter_mut()
                .zip(scratch.dct.data())
                .zip(gf.data())
            {
                *dc = dct * f;
            }
        }
    }

    fn param_count(&self) -> usize {
        self.w_x.data().len() + self.w_h.data().len() + self.bias.data().len()
    }

    fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.w_x.data());
        out.extend_from_slice(self.w_h.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f64]) -> usize {
        let (a, b, c) = (
            self.w_x.data().len(),
            self.w_h.data().len(),
            self.bias.data().len(),
        );
        self.w_x.data_mut().copy_from_slice(&src[..a]);
        self.w_h.data_mut().copy_from_slice(&src[a..a + b]);
        self.bias.data_mut().copy_from_slice(&src[a + b..a + b + c]);
        a + b + c
    }

    fn apply_gradients(&mut self, lr: f64) {
        self.w_x.add_scaled_in_place(&self.grad_wx, -lr);
        self.w_h.add_scaled_in_place(&self.grad_wh, -lr);
        self.bias.add_scaled_in_place(&self.grad_b, -lr);
        self.grad_wx.scale_in_place(0.0);
        self.grad_wh.scale_in_place(0.0);
        self.grad_b.scale_in_place(0.0);
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use fmore_numerics::seeded_rng;

    #[test]
    fn forward_shapes_and_accessors() {
        let mut rng = seeded_rng(1);
        let mut lstm = Lstm::new(5, 3, 4, &mut rng);
        assert_eq!(lstm.input_width(), 15);
        assert_eq!(lstm.hidden_dim(), 4);
        assert_eq!(lstm.name(), "lstm");
        let x = Matrix::random_uniform(2, 15, 1.0, &mut rng);
        let h = lstm.forward(&x, true, &mut rng);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 4);
        // Hidden state stays in (-1, 1) because it is o ⊙ tanh(c).
        assert!(h.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_weights_give_zero_output() {
        let mut rng = seeded_rng(2);
        let mut lstm = Lstm::new(3, 2, 2, &mut rng);
        let zeros = vec![0.0; lstm.param_count()];
        lstm.read_params(&zeros);
        let x = Matrix::random_uniform(1, 6, 1.0, &mut rng);
        let h = lstm.forward(&x, true, &mut rng);
        // With all weights and biases at zero, i = f = o = 0.5, g = 0, so c stays 0 and h = 0.
        assert!(h.data().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(3);
        let mut lstm = Lstm::new(3, 2, 3, &mut rng);
        let x = Matrix::random_uniform(2, 6, 0.8, &mut rng);
        check_input_gradient(&mut lstm, &x, 1e-3);
    }

    #[test]
    fn parameter_roundtrip() {
        let mut rng = seeded_rng(4);
        let lstm = Lstm::new(4, 3, 5, &mut rng);
        let mut params = Vec::new();
        lstm.write_params(&mut params);
        assert_eq!(params.len(), lstm.param_count());
        let mut other = Lstm::new(4, 3, 5, &mut rng);
        assert_eq!(other.read_params(&params), params.len());
        let mut back = Vec::new();
        other.write_params(&mut back);
        assert_eq!(params, back);
    }

    #[test]
    fn training_step_moves_parameters_and_reduces_loss() {
        // Learn to output a large positive first hidden unit for a fixed input.
        let mut rng = seeded_rng(5);
        let mut lstm = Lstm::new(2, 2, 2, &mut rng);
        let x = Matrix::from_vec(1, 4, vec![0.5, -0.3, 0.8, 0.1]);
        let loss = |h: &Matrix| (1.0 - h.get(0, 0)).powi(2);
        let mut rng2 = seeded_rng(6);
        let h0 = lstm.forward(&x, true, &mut rng2);
        let initial = loss(&h0);
        for _ in 0..200 {
            let h = lstm.forward(&x, true, &mut rng2);
            let mut grad = Matrix::zeros(1, 2);
            grad.set(0, 0, -2.0 * (1.0 - h.get(0, 0)));
            lstm.backward(&grad);
            lstm.apply_gradients(0.1);
        }
        let h_final = lstm.forward(&x, true, &mut rng2);
        assert!(
            loss(&h_final) < initial * 0.5,
            "loss should at least halve: {} -> {}",
            initial,
            loss(&h_final)
        );
    }

    #[test]
    fn repeated_passes_reuse_buffers_without_allocating() {
        let mut rng = seeded_rng(9);
        let mut lstm = Lstm::new(4, 3, 5, &mut rng);
        let x = Matrix::random_uniform(3, 12, 1.0, &mut rng);
        let mut out = Matrix::default();
        let mut grad = Matrix::default();
        // Warm up all internal buffers at this batch size.
        lstm.forward_into(&x, &mut out, true, &mut rng);
        let ones = out.map(|_| 1.0);
        lstm.backward_into(&ones, &mut grad);
        let first_out = out.clone();
        let first_grad = grad.clone();
        lstm.apply_gradients(0.0); // lr 0: parameters unchanged, gradients cleared
        crate::matrix::alloc_count::reset();
        lstm.forward_into(&x, &mut out, true, &mut rng);
        lstm.backward_into(&ones, &mut grad);
        assert_eq!(
            crate::matrix::alloc_count::count(),
            0,
            "steady-state LSTM passes must not allocate"
        );
        assert_eq!(out, first_out);
        assert_eq!(grad, first_grad);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_is_rejected() {
        let mut rng = seeded_rng(7);
        let _ = Lstm::new(0, 2, 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_is_rejected() {
        let mut rng = seeded_rng(8);
        let mut lstm = Lstm::new(2, 2, 2, &mut rng);
        let x = Matrix::zeros(1, 5);
        let _ = lstm.forward(&x, true, &mut rng);
    }
}
