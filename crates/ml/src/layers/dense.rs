//! Fully-connected layer.

use super::Layer;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// A fully-connected (affine) layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer mapping `in_features` to `out_features`, He-initialised.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            weights: Matrix::he_init(in_features, out_features, in_features, rng),
            bias: Matrix::zeros(1, out_features),
            grad_w: Matrix::zeros(in_features, out_features),
            grad_b: Matrix::zeros(1, out_features),
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_features(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_features(&self) -> usize {
        self.weights.cols()
    }
}

impl Layer for Dense {
    fn forward_into(
        &mut self,
        input: &Matrix,
        out: &mut Matrix,
        _training: bool,
        _rng: &mut StdRng,
    ) {
        // Reuse the cache buffer from the previous batch instead of cloning the input.
        let mut cache = self.cached_input.take().unwrap_or_default();
        cache.copy_from(input);
        self.cached_input = Some(cache);
        input.matmul_into(&self.weights, out);
        out.add_row_inplace(&self.bias);
    }

    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Dense layer");
        input.matmul_transpose_a_into(grad_output, &mut self.grad_w);
        grad_output.sum_rows_into(&mut self.grad_b);
        grad_output.matmul_transpose_b_into(&self.weights, grad_input);
    }

    fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.cols()
    }

    fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.weights.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f64]) -> usize {
        let w_len = self.weights.data().len();
        let b_len = self.bias.data().len();
        self.weights.data_mut().copy_from_slice(&src[..w_len]);
        self.bias
            .data_mut()
            .copy_from_slice(&src[w_len..w_len + b_len]);
        w_len + b_len
    }

    fn apply_gradients(&mut self, lr: f64) {
        self.weights.add_scaled_in_place(&self.grad_w, -lr);
        self.bias.add_scaled_in_place(&self.grad_b, -lr);
        self.grad_w.scale_in_place(0.0);
        self.grad_b.scale_in_place(0.0);
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use fmore_numerics::seeded_rng;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = seeded_rng(1);
        let mut layer = Dense::new(2, 3, &mut rng);
        // Overwrite parameters with known values.
        let params = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, /*bias*/ 0.5, -0.5, 1.0];
        assert_eq!(layer.read_params(&params), 9);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x, true, &mut rng);
        assert_eq!(y.data(), &[5.5, 6.5, 10.0]);
        assert_eq!(layer.in_features(), 2);
        assert_eq!(layer.out_features(), 3);
        assert_eq!(layer.name(), "dense");
    }

    #[test]
    fn write_read_roundtrip() {
        let mut rng = seeded_rng(2);
        let layer = Dense::new(4, 5, &mut rng);
        let mut out = Vec::new();
        layer.write_params(&mut out);
        assert_eq!(out.len(), layer.param_count());
        let mut other = Dense::new(4, 5, &mut rng);
        assert_eq!(other.read_params(&out), out.len());
        let mut roundtrip = Vec::new();
        other.write_params(&mut roundtrip);
        assert_eq!(out, roundtrip);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(3);
        let mut layer = Dense::new(3, 4, &mut rng);
        let x = Matrix::random_uniform(2, 3, 1.0, &mut rng);
        check_input_gradient(&mut layer, &x, 1e-5);
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // One-parameter regression style check: minimise ||y||² by gradient descent.
        let mut rng = seeded_rng(4);
        let mut layer = Dense::new(2, 1, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.5, -1.0, 0.25, 0.75, -0.5, 0.1, 0.9]);
        let loss_of = |layer: &mut Dense, rng: &mut StdRng| -> f64 {
            let y = layer.forward(&x, true, rng);
            y.data().iter().map(|v| v * v).sum::<f64>()
        };
        let before = loss_of(&mut layer, &mut rng);
        for _ in 0..50 {
            let y = layer.forward(&x, true, &mut rng);
            let grad = y.map(|v| 2.0 * v);
            layer.backward(&grad);
            layer.apply_gradients(0.05);
        }
        let after = loss_of(&mut layer, &mut rng);
        assert!(
            after < before * 0.1,
            "loss should shrink: before {before} after {after}"
        );
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = seeded_rng(5);
        let mut layer = Dense::new(2, 2, &mut rng);
        let g = Matrix::zeros(1, 2);
        let _ = layer.backward(&g);
    }
}
