//! Neural-network layers with forward and backward passes.
//!
//! All layers operate on mini-batches stored as [`Matrix`] values of shape
//! `(batch, features)`. Convolutional and pooling layers interpret the feature axis as a
//! flattened `channels × height × width` volume described by an [`ImageShape`].

mod activation;
mod conv;
mod dense;
mod dropout;
mod lstm;

pub use activation::{Activation, ActivationKind};
pub use conv::{Conv2d, ImageShape, MaxPool2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use lstm::Lstm;

use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// A differentiable layer.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. [`Layer::forward_into`] consumes a mini-batch, writes the output into a caller-owned
///    matrix, and caches whatever it needs for the backward pass;
/// 2. [`Layer::backward_into`] consumes `∂L/∂output`, accumulates parameter gradients
///    internally, and writes `∂L/∂input` into a caller-owned matrix;
/// 3. [`Layer::apply_gradients`] performs one SGD step (`w ← w − lr · ∇w`) and clears the
///    accumulated gradients.
///
/// The `_into` forms are the hot path: output and gradient matrices live in a
/// [`crate::arena::ScratchArena`] (or any caller buffer) and are reshaped in place, so
/// steady-state training allocates nothing. Internal caches (saved inputs, dropout masks,
/// LSTM state) are likewise reused across calls. The allocating [`Layer::forward`] /
/// [`Layer::backward`] wrappers delegate to the `_into` forms — one code path, bit-identical
/// results.
///
/// Parameters can be exported and imported as flat `f64` slices so the federated-learning
/// crate can average models across clients (FedAvg, Eq. 3 of the paper).
pub trait Layer: Send + Sync {
    /// Forward pass over a `(batch, in_features)` matrix, written into `out` (reshaped as
    /// needed; must not alias `input`). `training` enables stochastic behaviour such as
    /// dropout.
    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix, training: bool, rng: &mut StdRng);

    /// Backward pass: receives `∂L/∂output`, writes `∂L/∂input` into `grad_input` (reshaped
    /// as needed; must not alias `grad_output`).
    fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix);

    /// Allocating convenience wrapper over [`Layer::forward_into`].
    fn forward(&mut self, input: &Matrix, training: bool, rng: &mut StdRng) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out, training, rng);
        out
    }

    /// Allocating convenience wrapper over [`Layer::backward_into`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Appends the layer's parameters to `out` in a stable order.
    fn write_params(&self, _out: &mut Vec<f64>) {}

    /// Reads the layer's parameters back from `src`, returning how many values were consumed.
    fn read_params(&mut self, _src: &[f64]) -> usize {
        0
    }

    /// Applies one SGD step with learning rate `lr` and clears accumulated gradients.
    fn apply_gradients(&mut self, _lr: f64) {}

    /// Clones the layer into a boxed trait object (parameters included, caches excluded).
    fn clone_layer(&self) -> Box<dyn Layer>;

    /// Short layer name used in model summaries.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_layer()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use fmore_numerics::seeded_rng;

    /// Finite-difference gradient check for a layer: perturbs each input entry and compares
    /// the numerical gradient of `sum(output)` with the analytic gradient returned by
    /// `backward(ones)`.
    pub fn check_input_gradient<L: Layer>(layer: &mut L, input: &Matrix, tolerance: f64) {
        let mut rng = seeded_rng(0);
        let out = layer.forward(input, false, &mut rng);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let analytic = layer.backward(&ones);
        let eps = 1e-5;
        for idx in 0..input.data().len() {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let mut rng_p = seeded_rng(0);
            let f_plus: f64 = layer.forward(&plus, false, &mut rng_p).data().iter().sum();
            let mut rng_m = seeded_rng(0);
            let f_minus: f64 = layer.forward(&minus, false, &mut rng_m).data().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let got = analytic.data()[idx];
            assert!(
                (numeric - got).abs() < tolerance * numeric.abs().max(1.0),
                "gradient mismatch at {idx}: numeric {numeric} vs analytic {got}"
            );
        }
    }
}
