//! Figure 9: the impact of the total node count `N`.
//!
//! * Fig. 9a — rounds needed to reach given accuracy targets for `N = 50` vs `N = 100`
//!   (more nodes → more data diversity and better winners → fewer rounds).
//! * Fig. 9b — the mean winner payment and mean winner score as `N` grows (more competition
//!   → lower payments, higher scores; Theorem 2).

use crate::series::{Series, Table};
use fmore_auction::{
    Auction, CobbDouglas, EquilibriumSolver, LinearCost, NodeId, PricingRule, Quality,
    ScoringRule, SelectionRule, SubmittedBid,
};
use fmore_fl::config::FlConfig;
use fmore_fl::selection::SelectionStrategy;
use fmore_fl::trainer::FederatedTrainer;
use fmore_fl::FlError;
use fmore_ml::dataset::TaskKind;
use fmore_numerics::{seeded_rng, Distribution1D, UniformDist};

/// Result of the auction-side sweep over `N` (Fig. 9b) or `K` (Fig. 10b).
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionSweepPoint {
    /// The swept parameter value (`N` or `K`).
    pub value: usize,
    /// Mean payment per winner.
    pub mean_payment: f64,
    /// Mean score per winner.
    pub mean_score: f64,
}

/// The reproduction of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfN {
    /// For each accuracy target: rounds needed at `N = n_small` and `N = n_large`
    /// (`None` if the target was never reached within the round budget).
    pub rounds_to_accuracy: Vec<(f64, Option<usize>, Option<usize>)>,
    /// The small and large population sizes compared in Fig. 9a.
    pub populations: (usize, usize),
    /// Payment / score as a function of `N` (Fig. 9b).
    pub sweep: Vec<AuctionSweepPoint>,
}

impl ImpactOfN {
    /// The payment-vs-N series.
    pub fn payment_series(&self) -> Series {
        Series::new(
            "mean winner payment",
            self.sweep.iter().map(|p| p.value as f64).collect(),
            self.sweep.iter().map(|p| p.mean_payment).collect(),
        )
    }

    /// The score-vs-N series.
    pub fn score_series(&self) -> Series {
        Series::new(
            "mean winner score",
            self.sweep.iter().map(|p| p.value as f64).collect(),
            self.sweep.iter().map(|p| p.mean_score).collect(),
        )
    }

    /// Markdown table combining both panels.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Impact of N (Fig. 9)",
            &["accuracy target", "rounds (N small)", "rounds (N large)"],
        );
        for (target, small, large) in &self.rounds_to_accuracy {
            let fmt = |v: &Option<usize>| v.map_or("not reached".to_string(), |r| r.to_string());
            t.push_row(&[format!("{:.0}%", target * 100.0), fmt(small), fmt(large)]);
        }
        t
    }
}

/// Runs the pure auction game once for a population of `n` nodes and `k` winners and returns
/// `(mean winner payment, mean winner score)` averaged over `trials` independent games.
///
/// Every node's capacity is drawn uniformly (data size and category proportion in `[0.3, 1]`)
/// and its θ from `[0.1, 1]`, matching the simulator's heterogeneity.
///
/// # Errors
///
/// Propagates auction-construction failures.
pub fn auction_game_statistics(
    n: usize,
    k: usize,
    trials: usize,
    seed: u64,
) -> Result<(f64, f64), fmore_auction::AuctionError> {
    let scoring = CobbDouglas::with_scale(25.0, vec![1.0, 1.0])?;
    let cost = LinearCost::new(vec![2.0, 1.0])?;
    let theta = UniformDist::new(0.1, 1.0)?;
    let solver = EquilibriumSolver::builder()
        .scoring(scoring.clone())
        .cost(cost)
        .theta(theta)
        .bounds(vec![(0.0, 1.0), (0.0, 1.0)])
        .population(n)
        .winners(k)
        .grid_size(96)
        .build()?;
    let auction =
        Auction::new(ScoringRule::new(scoring), k, SelectionRule::TopK, PricingRule::FirstPrice);
    let mut rng = seeded_rng(seed);
    let mut payments = Vec::new();
    let mut scores = Vec::new();
    for _ in 0..trials.max(1) {
        let mut bids = Vec::with_capacity(n);
        for i in 0..n {
            use rand::Rng;
            let t = theta.sample(&mut rng);
            let capacity = [rng.gen_range(0.3..=1.0), rng.gen_range(0.3..=1.0)];
            let (ideal, _) = solver.quality_choice(t);
            let declared: Vec<f64> =
                ideal.iter().zip(capacity.iter()).map(|(w, h)| w.min(*h)).collect();
            let ask = solver.payment_for(t)?;
            bids.push(SubmittedBid::new(NodeId(i as u64), Quality::new(declared), ask));
        }
        let outcome = auction.run(bids, &mut rng)?;
        payments.push(outcome.mean_winner_payment());
        scores.push(outcome.mean_winner_score());
    }
    Ok((fmore_numerics::stats::mean(&payments), fmore_numerics::stats::mean(&scores)))
}

/// Configuration for the Fig. 9 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfNConfig {
    /// The two populations compared in Fig. 9a.
    pub populations: (usize, usize),
    /// Accuracy targets of Fig. 9a.
    pub accuracy_targets: Vec<f64>,
    /// Round budget for the training runs.
    pub rounds: usize,
    /// Base FL configuration (clients/partition are overridden per population).
    pub fl: FlConfig,
    /// Values of `N` swept in Fig. 9b.
    pub sweep_values: Vec<usize>,
    /// Winner count `K` used in the sweep.
    pub k: usize,
    /// Auction games averaged per sweep point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl ImpactOfNConfig {
    /// Quick configuration for tests.
    pub fn quick() -> Self {
        Self {
            populations: (8, 16),
            accuracy_targets: vec![0.5, 0.7],
            rounds: 4,
            fl: FlConfig::fast_test(TaskKind::MnistO),
            sweep_values: vec![20, 40, 80],
            k: 5,
            trials: 2,
            seed: 7,
        }
    }

    /// The paper's configuration: `N ∈ {50, 100}` for Fig. 9a, `N ∈ {50 … 200}` for Fig. 9b,
    /// `K = 20`.
    pub fn paper() -> Self {
        let mut fl = FlConfig::paper_simulation(TaskKind::MnistF);
        fl.model = fmore_fl::config::ModelChoice::FastSurrogate;
        fl.train_samples = 8_000;
        fl.test_samples = 1_000;
        Self {
            populations: (50, 100),
            accuracy_targets: vec![0.70, 0.80, 0.82, 0.84, 0.86],
            rounds: 20,
            fl,
            sweep_values: vec![50, 80, 110, 140, 170, 200],
            k: 20,
            trials: 5,
            seed: 7,
        }
    }
}

fn config_with_population(base: &FlConfig, n: usize) -> FlConfig {
    let mut fl = base.clone();
    fl.clients = n;
    fl.partition.clients = n;
    if fl.winners_per_round > n {
        fl.winners_per_round = n;
    }
    fl
}

/// Reproduces Fig. 9.
///
/// # Errors
///
/// Propagates trainer and auction errors.
pub fn run(config: &ImpactOfNConfig) -> Result<ImpactOfN, FlError> {
    let (n_small, n_large) = config.populations;
    let mut histories = Vec::new();
    for n in [n_small, n_large] {
        let fl = config_with_population(&config.fl, n);
        let mut trainer = FederatedTrainer::new(fl, SelectionStrategy::fmore(), config.seed)?;
        histories.push(trainer.run(config.rounds)?);
    }
    let rounds_to_accuracy = config
        .accuracy_targets
        .iter()
        .map(|&target| {
            (target, histories[0].rounds_to_accuracy(target), histories[1].rounds_to_accuracy(target))
        })
        .collect();

    let mut sweep = Vec::new();
    for &n in &config.sweep_values {
        let k = config.k.min(n);
        let (mean_payment, mean_score) =
            auction_game_statistics(n, k, config.trials, config.seed + n as u64)?;
        sweep.push(AuctionSweepPoint { value: n, mean_payment, mean_score });
    }
    Ok(ImpactOfN { rounds_to_accuracy, populations: config.populations, sweep })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_payment_falling_and_score_rising_with_n() {
        // Theorem 2 / Fig. 9b: more competition lowers payments and raises winner scores.
        let small = auction_game_statistics(20, 5, 4, 1).unwrap();
        let large = auction_game_statistics(80, 5, 4, 1).unwrap();
        assert!(
            large.0 <= small.0 + 0.05,
            "mean payment should not rise with N: {small:?} -> {large:?}"
        );
        assert!(
            large.1 >= small.1 - 0.05,
            "mean score should not fall with N: {small:?} -> {large:?}"
        );
    }

    #[test]
    fn quick_run_produces_both_panels() {
        let result = run(&ImpactOfNConfig::quick()).unwrap();
        assert_eq!(result.rounds_to_accuracy.len(), 2);
        assert_eq!(result.sweep.len(), 3);
        assert_eq!(result.payment_series().len(), 3);
        assert_eq!(result.score_series().len(), 3);
        let md = result.to_table().to_markdown();
        assert!(md.contains("Impact of N"));
        assert!(md.contains('%'));
    }

    #[test]
    fn paper_config_matches_figure_axes() {
        let c = ImpactOfNConfig::paper();
        assert_eq!(c.populations, (50, 100));
        assert_eq!(c.sweep_values.first(), Some(&50));
        assert_eq!(c.sweep_values.last(), Some(&200));
        assert_eq!(c.k, 20);
    }
}
