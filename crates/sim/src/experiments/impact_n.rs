//! Figure 9: the impact of the total node count `N`.
//!
//! * Fig. 9a — rounds needed to reach given accuracy targets for `N = 50` vs `N = 100`
//!   (more nodes → more data diversity and better winners → fewer rounds).
//! * Fig. 9b — the mean winner payment and mean winner score as `N` grows (more competition
//!   → lower payments, higher scores; Theorem 2).

use crate::error::SimError;
use crate::scenario::{ScenarioRunner, ScenarioSpec};
use crate::series::{Series, Table};
use fmore_auction::game::{game_statistics, GameConfig};
use fmore_fl::config::FlConfig;
use fmore_fl::selection::SelectionStrategy;
use fmore_ml::dataset::TaskKind;

/// Result of the auction-side sweep over `N` (Fig. 9b) or `K` (Fig. 10b).
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionSweepPoint {
    /// The swept parameter value (`N` or `K`).
    pub value: usize,
    /// Mean payment per winner.
    pub mean_payment: f64,
    /// Mean score per winner.
    pub mean_score: f64,
}

/// The reproduction of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfN {
    /// For each accuracy target: rounds needed at `N = n_small` and `N = n_large`
    /// (`None` if the target was never reached within the round budget).
    pub rounds_to_accuracy: Vec<(f64, Option<usize>, Option<usize>)>,
    /// The small and large population sizes compared in Fig. 9a.
    pub populations: (usize, usize),
    /// Payment / score as a function of `N` (Fig. 9b).
    pub sweep: Vec<AuctionSweepPoint>,
}

impl ImpactOfN {
    /// The payment-vs-N series.
    pub fn payment_series(&self) -> Series {
        Series::new(
            "mean winner payment",
            self.sweep.iter().map(|p| p.value as f64).collect(),
            self.sweep.iter().map(|p| p.mean_payment).collect(),
        )
    }

    /// The score-vs-N series.
    pub fn score_series(&self) -> Series {
        Series::new(
            "mean winner score",
            self.sweep.iter().map(|p| p.value as f64).collect(),
            self.sweep.iter().map(|p| p.mean_score).collect(),
        )
    }

    /// Markdown table combining both panels.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Impact of N (Fig. 9)",
            &["accuracy target", "rounds (N small)", "rounds (N large)"],
        );
        for (target, small, large) in &self.rounds_to_accuracy {
            let fmt = |v: &Option<usize>| v.map_or("not reached".to_string(), |r| r.to_string());
            t.push_row(&[format!("{:.0}%", target * 100.0), fmt(small), fmt(large)]);
        }
        t
    }
}

/// Runs the paper's pure auction game (via [`fmore_auction::game`]) for a population of `n`
/// nodes and `k` winners and returns `(mean winner payment, mean winner score)` averaged
/// over `trials` independent games.
///
/// # Errors
///
/// Propagates auction-construction failures.
pub fn auction_game_statistics(
    n: usize,
    k: usize,
    trials: usize,
    seed: u64,
) -> Result<(f64, f64), fmore_auction::AuctionError> {
    let stats = game_statistics(&GameConfig::paper_simulation(n, k, trials), seed)?;
    Ok((stats.mean_payment, stats.mean_score))
}

/// Configuration for the Fig. 9 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfNConfig {
    /// The two populations compared in Fig. 9a.
    pub populations: (usize, usize),
    /// Accuracy targets of Fig. 9a.
    pub accuracy_targets: Vec<f64>,
    /// Round budget for the training runs.
    pub rounds: usize,
    /// Base FL configuration (clients/partition are overridden per population).
    pub fl: FlConfig,
    /// Values of `N` swept in Fig. 9b.
    pub sweep_values: Vec<usize>,
    /// Winner count `K` used in the sweep.
    pub k: usize,
    /// Auction games averaged per sweep point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl ImpactOfNConfig {
    /// Quick configuration for tests.
    pub fn quick() -> Self {
        Self {
            populations: (8, 16),
            accuracy_targets: vec![0.5, 0.7],
            rounds: 4,
            fl: FlConfig::fast_test(TaskKind::MnistO),
            sweep_values: vec![20, 40, 80],
            k: 5,
            trials: 2,
            seed: 7,
        }
    }

    /// The paper's configuration: `N ∈ {50, 100}` for Fig. 9a, `N ∈ {50 … 200}` for Fig. 9b,
    /// `K = 20`.
    pub fn paper() -> Self {
        let mut fl = FlConfig::paper_simulation(TaskKind::MnistF);
        fl.model = fmore_fl::config::ModelChoice::FastSurrogate;
        fl.train_samples = 8_000;
        fl.test_samples = 1_000;
        Self {
            populations: (50, 100),
            accuracy_targets: vec![0.70, 0.80, 0.82, 0.84, 0.86],
            rounds: 20,
            fl,
            sweep_values: vec![50, 80, 110, 140, 170, 200],
            k: 20,
            trials: 5,
            seed: 7,
        }
    }
}

/// The declarative specs of Fig. 9a: one FMore training scenario per population size.
pub fn specs(config: &ImpactOfNConfig) -> Vec<ScenarioSpec> {
    let (n_small, n_large) = config.populations;
    [n_small, n_large]
        .into_iter()
        .map(|n| {
            ScenarioSpec::new(
                format!("N={n}"),
                config.fl.clone(),
                SelectionStrategy::fmore(),
                config.rounds,
                config.seed,
            )
            .with_population(n)
        })
        .collect()
}

/// Reproduces Fig. 9: the two training runs of panel (a) and the auction-game sweep of
/// panel (b), every independent piece in parallel on the runner’s pool.
///
/// # Errors
///
/// Propagates trainer and auction errors.
pub fn run(runner: &ScenarioRunner, config: &ImpactOfNConfig) -> Result<ImpactOfN, SimError> {
    let outcomes = runner.run_all(&specs(config))?;
    let rounds_to_accuracy = config
        .accuracy_targets
        .iter()
        .map(|&target| {
            (
                target,
                outcomes[0].history.rounds_to_accuracy(target),
                outcomes[1].history.rounds_to_accuracy(target),
            )
        })
        .collect();

    let (k, trials, seed) = (config.k, config.trials, config.seed);
    let sweep = runner
        .map(config.sweep_values.clone(), move |n| {
            let stats = game_statistics(
                &GameConfig::paper_simulation(n, k.min(n), trials),
                seed + n as u64,
            )?;
            Ok(AuctionSweepPoint {
                value: n,
                mean_payment: stats.mean_payment,
                mean_score: stats.mean_score,
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, fmore_auction::AuctionError>>()?;
    Ok(ImpactOfN {
        rounds_to_accuracy,
        populations: config.populations,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_payment_falling_and_score_rising_with_n() {
        // Theorem 2 / Fig. 9b: more competition lowers payments and raises winner scores.
        let small = auction_game_statistics(20, 5, 4, 1).unwrap();
        let large = auction_game_statistics(80, 5, 4, 1).unwrap();
        assert!(
            large.0 <= small.0 + 0.05,
            "mean payment should not rise with N: {small:?} -> {large:?}"
        );
        assert!(
            large.1 >= small.1 - 0.05,
            "mean score should not fall with N: {small:?} -> {large:?}"
        );
    }

    #[test]
    fn quick_run_produces_both_panels() {
        let result = run(&ScenarioRunner::new(), &ImpactOfNConfig::quick()).unwrap();
        assert_eq!(result.rounds_to_accuracy.len(), 2);
        assert_eq!(result.sweep.len(), 3);
        assert_eq!(result.payment_series().len(), 3);
        assert_eq!(result.score_series().len(), 3);
        let md = result.to_table().to_markdown();
        assert!(md.contains("Impact of N"));
        assert!(md.contains('%'));
    }

    #[test]
    fn paper_config_matches_figure_axes() {
        let c = ImpactOfNConfig::paper();
        assert_eq!(c.populations, (50, 100));
        assert_eq!(c.sweep_values.first(), Some(&50));
        assert_eq!(c.sweep_values.last(), Some(&200));
        assert_eq!(c.k, 20);
    }
}
