//! The declarative experiment registry: every paper figure as a named, data-described entry.
//!
//! The registry is the single catalogue of what this reproduction can regenerate. Each entry
//! names the experiment, the paper figure it reproduces, and a runner function that executes
//! the experiment's scenarios through a [`ScenarioRunner`] and returns presentation-ready
//! tables. Drivers (examples, benches, CI smoke runs) iterate the registry instead of
//! hard-coding module calls, so adding a figure is one new entry plus its spec — no new
//! driver code.

use crate::error::SimError;
use crate::experiments::{
    accuracy, adversary_soak, chaos_soak, cluster, dynamics, headline, impact_k, impact_n,
    impact_psi, scale, scores, service_soak,
};
use crate::scenario::ScenarioRunner;
use crate::series::Table;
use fmore_ml::dataset::TaskKind;

/// How expensive a registry run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Sub-second configurations for tests, CI, and smoke runs.
    Quick,
    /// The full Section V parameters (minutes per experiment).
    Paper,
}

/// The output of one registry experiment: presentation-ready Markdown tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// The registry name of the experiment.
    pub name: &'static str,
    /// The produced tables (one per figure panel, typically).
    pub tables: Vec<Table>,
}

impl ExperimentReport {
    /// Renders every table as one Markdown document.
    pub fn to_markdown(&self) -> String {
        self.tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n\n")
    }
}

type RunFn = fn(&ScenarioRunner, Fidelity) -> Result<ExperimentReport, SimError>;

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDef {
    /// Registry name (stable, kebab-case).
    pub name: &'static str,
    /// The paper figure(s) the experiment reproduces.
    pub figure: &'static str,
    /// One-line description.
    pub summary: &'static str,
    run: RunFn,
}

impl ExperimentDef {
    /// Runs the experiment at the requested fidelity on the given runner.
    ///
    /// # Errors
    ///
    /// Propagates scenario failures.
    pub fn run(
        &self,
        runner: &ScenarioRunner,
        fidelity: Fidelity,
    ) -> Result<ExperimentReport, SimError> {
        (self.run)(runner, fidelity)
    }
}

fn accuracy_config(fidelity: Fidelity) -> accuracy::AccuracyConfig {
    match fidelity {
        Fidelity::Quick => accuracy::AccuracyConfig::quick(TaskKind::MnistO),
        Fidelity::Paper => accuracy::AccuracyConfig::paper(TaskKind::MnistO),
    }
}

fn cluster_config(fidelity: Fidelity) -> cluster::ClusterExperimentConfig {
    match fidelity {
        Fidelity::Quick => cluster::ClusterExperimentConfig::quick(),
        Fidelity::Paper => cluster::ClusterExperimentConfig::paper(),
    }
}

fn headline_targets(fidelity: Fidelity) -> (f64, f64) {
    match fidelity {
        Fidelity::Quick => (0.3, 0.0),
        Fidelity::Paper => (0.95, 0.5),
    }
}

fn accuracy_report(figure: &accuracy::AccuracyFigure) -> ExperimentReport {
    ExperimentReport {
        name: "accuracy",
        tables: vec![figure.to_table()],
    }
}

fn cluster_report(figure: &cluster::ClusterFigure) -> ExperimentReport {
    ExperimentReport {
        name: "cluster",
        tables: vec![figure.to_table()],
    }
}

fn headline_report(
    figure: &accuracy::AccuracyFigure,
    cluster_figure: &cluster::ClusterFigure,
    fidelity: Fidelity,
) -> ExperimentReport {
    let (accuracy_target, cluster_target) = headline_targets(fidelity);
    let sim_headline = headline::simulation_headline(figure, accuracy_target);
    let cluster_headline = headline::cluster_headline(cluster_figure, cluster_target);
    ExperimentReport {
        name: "headline",
        tables: vec![headline::headline_table(
            &[sim_headline],
            Some(&cluster_headline),
        )],
    }
}

fn run_accuracy(runner: &ScenarioRunner, fidelity: Fidelity) -> Result<ExperimentReport, SimError> {
    let figure = accuracy::run(runner, &accuracy_config(fidelity))?;
    Ok(accuracy_report(&figure))
}

fn run_scores(runner: &ScenarioRunner, fidelity: Fidelity) -> Result<ExperimentReport, SimError> {
    let dist = scores::run(runner, &accuracy_config(fidelity))?;
    Ok(ExperimentReport {
        name: "scores",
        tables: vec![dist.to_table()],
    })
}

fn run_impact_n(runner: &ScenarioRunner, fidelity: Fidelity) -> Result<ExperimentReport, SimError> {
    let config = match fidelity {
        Fidelity::Quick => impact_n::ImpactOfNConfig::quick(),
        Fidelity::Paper => impact_n::ImpactOfNConfig::paper(),
    };
    let result = impact_n::run(runner, &config)?;
    Ok(ExperimentReport {
        name: "impact-n",
        tables: vec![result.to_table()],
    })
}

fn run_impact_k(runner: &ScenarioRunner, fidelity: Fidelity) -> Result<ExperimentReport, SimError> {
    let config = match fidelity {
        Fidelity::Quick => impact_k::ImpactOfKConfig::quick(),
        Fidelity::Paper => impact_k::ImpactOfKConfig::paper(),
    };
    let result = impact_k::run(runner, &config)?;
    Ok(ExperimentReport {
        name: "impact-k",
        tables: vec![result.to_table()],
    })
}

fn run_impact_psi(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let config = match fidelity {
        Fidelity::Quick => impact_psi::ImpactOfPsiConfig::quick(),
        Fidelity::Paper => impact_psi::ImpactOfPsiConfig::paper(),
    };
    let result = impact_psi::run(runner, &config)?;
    Ok(ExperimentReport {
        name: "impact-psi",
        tables: vec![result.to_table()],
    })
}

fn run_cluster(runner: &ScenarioRunner, fidelity: Fidelity) -> Result<ExperimentReport, SimError> {
    let figure = cluster::run(runner, &cluster_config(fidelity))?;
    Ok(cluster_report(&figure))
}

fn run_headline(runner: &ScenarioRunner, fidelity: Fidelity) -> Result<ExperimentReport, SimError> {
    let figure = accuracy::run(runner, &accuracy_config(fidelity))?;
    let cluster_figure = cluster::run(runner, &cluster_config(fidelity))?;
    Ok(headline_report(&figure, &cluster_figure, fidelity))
}

fn dynamics_config(fidelity: Fidelity) -> dynamics::DynamicsExperimentConfig {
    match fidelity {
        Fidelity::Quick => dynamics::DynamicsExperimentConfig::quick(),
        Fidelity::Paper => dynamics::DynamicsExperimentConfig::paper(),
    }
}

fn run_churn_dropout(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let sweep = dynamics::run_dropout_sweep(runner, &dynamics_config(fidelity))?;
    Ok(ExperimentReport {
        name: "churn-dropout",
        tables: vec![sweep.to_table()],
    })
}

fn run_churn_time(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let curves = dynamics::run_churn_curves(runner, &dynamics_config(fidelity))?;
    Ok(ExperimentReport {
        name: "churn-time",
        tables: vec![curves.to_table()],
    })
}

fn run_churn_waste(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let sweep = dynamics::run_waste_sweep(runner, &dynamics_config(fidelity))?;
    Ok(ExperimentReport {
        name: "churn-waste",
        tables: vec![sweep.to_table()],
    })
}

fn scale_config(fidelity: Fidelity) -> scale::ScaleConfig {
    match fidelity {
        Fidelity::Quick => scale::ScaleConfig::quick(),
        Fidelity::Paper => scale::ScaleConfig::paper(),
    }
}

fn run_scale_selection(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let figure = scale::run_selection(runner, &scale_config(fidelity))?;
    Ok(ExperimentReport {
        name: "scale-selection",
        tables: vec![figure.to_table()],
    })
}

fn run_scale_memory(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let figure = scale::run_memory(runner, &scale_config(fidelity))?;
    Ok(ExperimentReport {
        name: "scale-memory",
        tables: vec![figure.to_table()],
    })
}

fn run_scale_parity(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let figure = scale::run_parity(runner, &scale_config(fidelity))?;
    Ok(ExperimentReport {
        name: "scale-parity",
        tables: vec![figure.to_table()],
    })
}

fn run_service_soak(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let config = match fidelity {
        Fidelity::Quick => service_soak::SoakConfig::quick(),
        Fidelity::Paper => service_soak::SoakConfig::paper(),
    };
    service_soak::run(runner, &config)
}

fn run_chaos_soak(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let config = match fidelity {
        Fidelity::Quick => chaos_soak::ChaosConfig::quick(),
        Fidelity::Paper => chaos_soak::ChaosConfig::paper(),
    };
    chaos_soak::run(runner, &config)
}

fn run_adversary_soak(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<ExperimentReport, SimError> {
    let config = match fidelity {
        Fidelity::Quick => adversary_soak::AdversaryConfig::quick(),
        Fidelity::Paper => adversary_soak::AdversaryConfig::paper(),
    };
    adversary_soak::run(runner, &config)
}

/// Every experiment of the paper's evaluation, in figure order.
pub const REGISTRY: &[ExperimentDef] = &[
    ExperimentDef {
        name: "accuracy",
        figure: "Figs. 4-7",
        summary: "accuracy & loss per round for FMore / RandFL / FixFL",
        run: run_accuracy,
    },
    ExperimentDef {
        name: "scores",
        figure: "Fig. 8",
        summary: "distribution of winner quality scores per scheme",
        run: run_scores,
    },
    ExperimentDef {
        name: "impact-n",
        figure: "Fig. 9",
        summary: "rounds-to-accuracy and (payment, score) as N varies",
        run: run_impact_n,
    },
    ExperimentDef {
        name: "impact-k",
        figure: "Fig. 10",
        summary: "rounds-to-accuracy and (payment, score) as K varies",
        run: run_impact_k,
    },
    ExperimentDef {
        name: "impact-psi",
        figure: "Fig. 11",
        summary: "training speed and winner-rank spread as psi varies",
        run: run_impact_psi,
    },
    ExperimentDef {
        name: "cluster",
        figure: "Figs. 12-13",
        summary: "accuracy and cumulative time on the simulated 32-node cluster",
        run: run_cluster,
    },
    ExperimentDef {
        name: "headline",
        figure: "SS I / SS V text",
        summary: "headline round-reduction and accuracy-improvement percentages",
        run: run_headline,
    },
    ExperimentDef {
        name: "churn-dropout",
        figure: "new (SS I / SS VI dynamics)",
        summary: "final accuracy and time-to-accuracy as the winner dropout rate grows",
        run: run_churn_dropout,
    },
    ExperimentDef {
        name: "churn-time",
        figure: "Figs. 12-13 under churn",
        summary: "accuracy and cumulative time on the cluster under a dynamic environment",
        run: run_churn_time,
    },
    ExperimentDef {
        name: "churn-waste",
        figure: "new (SS I / SS VI dynamics)",
        summary: "payment waste and deadline misses as the straggler rate grows",
        run: run_churn_waste,
    },
    ExperimentDef {
        name: "scale-selection",
        figure: "new (population scale, SS V overhead)",
        summary: "streamed top-K selection rounds as N sweeps from 1e3 toward 1e6",
        run: run_scale_selection,
    },
    ExperimentDef {
        name: "scale-memory",
        figure: "new (population scale)",
        summary: "peak resident bid bytes: bounded streaming vs a dense O(N) store",
        run: run_scale_memory,
    },
    ExperimentDef {
        name: "scale-parity",
        figure: "new (population scale)",
        summary: "bit-parity of streamed winners/payments against the dense full-sort path",
        run: run_scale_parity,
    },
    ExperimentDef {
        name: "service-soak",
        figure: "new (SS I / SS VI always-on service)",
        summary: "N concurrent mixed-scheme jobs on one service, interleaved == solo",
        run: run_service_soak,
    },
    ExperimentDef {
        name: "chaos-soak",
        figure: "new (SS I / SS VI unreliable edge nodes)",
        summary: "fault-injected fleet: healthy == solo, faulted recover, checkpoint == solo",
        run: run_chaos_soak,
    },
    ExperimentDef {
        name: "adversary-soak",
        figure: "new (SS I / SS VI untrusted edge nodes)",
        summary: "Byzantine fleet: robust rules converge, FedAvg degrades, reputation bites",
        run: run_adversary_soak,
    },
];

/// Looks an experiment up by registry name.
///
/// # Errors
///
/// Returns [`SimError::UnknownExperiment`] for names not in the registry.
pub fn find(name: &str) -> Result<&'static ExperimentDef, SimError> {
    REGISTRY
        .iter()
        .find(|def| def.name == name)
        .ok_or_else(|| SimError::UnknownExperiment(name.to_string()))
}

/// Runs every registered experiment at the given fidelity, in registry order.
///
/// The `headline` entry is pure post-processing of the `accuracy` and `cluster` figures, so
/// a full registry run computes those figures exactly once and derives all three dependent
/// reports from them instead of re-training identical scenarios.
///
/// # Errors
///
/// Returns the first experiment failure.
pub fn run_all(
    runner: &ScenarioRunner,
    fidelity: Fidelity,
) -> Result<Vec<ExperimentReport>, SimError> {
    let accuracy_figure = accuracy::run(runner, &accuracy_config(fidelity))?;
    let cluster_figure = cluster::run(runner, &cluster_config(fidelity))?;
    REGISTRY
        .iter()
        .map(|def| match def.name {
            "accuracy" => Ok(accuracy_report(&accuracy_figure)),
            "cluster" => Ok(cluster_report(&cluster_figure)),
            "headline" => Ok(headline_report(&accuracy_figure, &cluster_figure, fidelity)),
            _ => def.run(runner, fidelity),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_sixteen_experiments() {
        assert_eq!(REGISTRY.len(), 16);
        let names: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
        for expected in [
            "accuracy",
            "scores",
            "impact-n",
            "impact-k",
            "impact-psi",
            "cluster",
            "headline",
            "churn-dropout",
            "churn-time",
            "churn-waste",
            "scale-selection",
            "scale-memory",
            "scale-parity",
            "service-soak",
            "chaos-soak",
            "adversary-soak",
        ] {
            assert!(names.contains(&expected), "missing experiment {expected}");
        }
        // Names are unique.
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn find_resolves_names_and_rejects_unknowns() {
        assert_eq!(find("cluster").unwrap().figure, "Figs. 12-13");
        assert!(matches!(find("nope"), Err(SimError::UnknownExperiment(_))));
    }

    #[test]
    fn every_experiment_runs_at_quick_fidelity() {
        let runner = ScenarioRunner::new();
        let reports = run_all(&runner, Fidelity::Quick).unwrap();
        assert_eq!(reports.len(), REGISTRY.len());
        for (def, report) in REGISTRY.iter().zip(&reports) {
            assert_eq!(def.name, report.name);
            assert!(!report.tables.is_empty(), "{} produced no tables", def.name);
            assert!(!report.to_markdown().is_empty());
        }
    }

    #[test]
    fn named_lookup_runs_a_single_experiment() {
        let runner = ScenarioRunner::new();
        let report = find("scores")
            .unwrap()
            .run(&runner, Fidelity::Quick)
            .unwrap();
        assert_eq!(report.name, "scores");
        assert!(report.to_markdown().contains("FMore"));
    }
}
