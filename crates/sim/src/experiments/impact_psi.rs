//! Figure 11: the impact of the admission probability ψ in ψ-FMore.
//!
//! * Fig. 11a — rounds needed to reach accuracy targets for a small vs a large ψ (small ψ
//!   trades training speed for data diversity).
//! * Fig. 11b — how many of the selected nodes come from the top-10 / top-20 / top-30 ranks
//!   of the score ordering, as ψ varies (large ψ concentrates on the top ranks).

use crate::error::SimError;
use crate::scenario::{ScenarioRunner, ScenarioSpec};
use crate::series::{Series, Table};
use fmore_auction::game::psi_rank_spread;
use fmore_fl::config::FlConfig;
use fmore_fl::selection::SelectionStrategy;
use fmore_ml::dataset::TaskKind;

/// How many winners fall into the top-10 / top-20 / top-30 score ranks for one ψ.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSpread {
    /// The admission probability ψ.
    pub psi: f64,
    /// Mean number of winners ranked in the top 10.
    pub top10: f64,
    /// Mean number of winners ranked in the top 20.
    pub top20: f64,
    /// Mean number of winners ranked in the top 30.
    pub top30: f64,
}

/// The reproduction of Fig. 11.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfPsi {
    /// For each accuracy target: rounds needed at the small and at the large ψ.
    pub rounds_to_accuracy: Vec<(f64, Option<usize>, Option<usize>)>,
    /// The two ψ values compared in Fig. 11a.
    pub psi_pair: (f64, f64),
    /// Winner-rank spread per ψ (Fig. 11b).
    pub rank_spread: Vec<RankSpread>,
}

impl ImpactOfPsi {
    /// Series of mean top-`rank` winners vs ψ, for `rank ∈ {10, 20, 30}`.
    pub fn rank_series(&self, rank: usize) -> Series {
        let ys = self
            .rank_spread
            .iter()
            .map(|r| match rank {
                10 => r.top10,
                20 => r.top20,
                _ => r.top30,
            })
            .collect();
        Series::new(
            format!("winners in top {rank}"),
            self.rank_spread.iter().map(|r| r.psi).collect(),
            ys,
        )
    }

    /// Markdown table for both panels.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Impact of ψ (Fig. 11)",
            &["ψ", "top-10", "top-20", "top-30"],
        );
        for r in &self.rank_spread {
            t.push_row(&[
                format!("{:.1}", r.psi),
                format!("{:.1}", r.top10),
                format!("{:.1}", r.top20),
                format!("{:.1}", r.top30),
            ]);
        }
        t
    }
}

/// Counts how many ψ-FMore winners come from the top-10/20/30 ranks of an `n`-node score
/// ordering, averaged over `trials` selections of `k` winners (via [`fmore_auction::game`]).
pub fn rank_spread_for_psi(psi: f64, n: usize, k: usize, trials: usize, seed: u64) -> RankSpread {
    let counts = psi_rank_spread(psi, n, k, trials, seed);
    RankSpread {
        psi,
        top10: counts.top10,
        top20: counts.top20,
        top30: counts.top30,
    }
}

/// Configuration for the Fig. 11 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfPsiConfig {
    /// The two ψ values compared in Fig. 11a (the paper uses 0.3 and 0.9).
    pub psi_pair: (f64, f64),
    /// Accuracy targets of Fig. 11a.
    pub accuracy_targets: Vec<f64>,
    /// Round budget for the training runs.
    pub rounds: usize,
    /// Base FL configuration.
    pub fl: FlConfig,
    /// ψ values swept in Fig. 11b.
    pub sweep_values: Vec<f64>,
    /// Population and winner count used for the rank-spread panel.
    pub n: usize,
    /// Winners per selection in the rank-spread panel.
    pub k: usize,
    /// Selections averaged per ψ.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl ImpactOfPsiConfig {
    /// Quick configuration for tests.
    pub fn quick() -> Self {
        Self {
            psi_pair: (0.3, 0.9),
            accuracy_targets: vec![0.5, 0.7],
            rounds: 4,
            fl: FlConfig::fast_test(TaskKind::MnistO),
            sweep_values: vec![0.3, 0.6, 0.9],
            n: 100,
            k: 20,
            trials: 20,
            seed: 21,
        }
    }

    /// The paper's configuration: ψ ∈ {0.3, 0.9} for Fig. 11a and ψ ∈ {0.3 … 0.9} for
    /// Fig. 11b with `N = 100`, `K = 20`.
    pub fn paper() -> Self {
        let mut fl = FlConfig::paper_simulation(TaskKind::MnistF);
        fl.model = fmore_fl::config::ModelChoice::FastSurrogate;
        fl.train_samples = 8_000;
        fl.test_samples = 1_000;
        // The ψ extension targets small-data scenarios; shrink the shards accordingly.
        fl.partition.size_range = (30, 150);
        Self {
            psi_pair: (0.3, 0.9),
            accuracy_targets: vec![0.70, 0.80, 0.82, 0.84, 0.86, 0.87],
            rounds: 30,
            fl,
            sweep_values: vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            n: 100,
            k: 20,
            trials: 200,
            seed: 21,
        }
    }
}

/// The declarative specs of Fig. 11a: one ψ-FMore training scenario per ψ value.
pub fn specs(config: &ImpactOfPsiConfig) -> Vec<ScenarioSpec> {
    let (psi_small, psi_large) = config.psi_pair;
    [psi_small, psi_large]
        .into_iter()
        .map(|psi| {
            ScenarioSpec::new(
                format!("psi={psi}"),
                config.fl.clone(),
                SelectionStrategy::psi_fmore(psi),
                config.rounds,
                config.seed,
            )
        })
        .collect()
}

/// Reproduces Fig. 11: the two training runs of panel (a) and the rank-spread sweep of
/// panel (b), every independent piece in parallel on the runner’s pool.
///
/// # Errors
///
/// Propagates trainer and auction errors.
pub fn run(runner: &ScenarioRunner, config: &ImpactOfPsiConfig) -> Result<ImpactOfPsi, SimError> {
    let outcomes = runner.run_all(&specs(config))?;
    let rounds_to_accuracy = config
        .accuracy_targets
        .iter()
        .map(|&target| {
            (
                target,
                outcomes[0].history.rounds_to_accuracy(target),
                outcomes[1].history.rounds_to_accuracy(target),
            )
        })
        .collect();

    let (n, k, trials, seed) = (config.n, config.k, config.trials, config.seed);
    let rank_spread = runner.map(config.sweep_values.clone(), move |psi| {
        rank_spread_for_psi(psi, n, k, trials, seed)
    });

    Ok(ImpactOfPsi {
        rounds_to_accuracy,
        psi_pair: config.psi_pair,
        rank_spread,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_psi_concentrates_winners_at_the_top() {
        // Fig. 11b: with ψ = 0.8 roughly two thirds of the selected nodes are in the top 30;
        // with ψ = 0.2 the selection is much more spread out.
        let low = rank_spread_for_psi(0.2, 100, 20, 200, 1);
        let high = rank_spread_for_psi(0.8, 100, 20, 200, 1);
        assert!(high.top30 > low.top30);
        assert!(high.top10 > low.top10);
        // Sanity: counts are bounded by K and by the rank width.
        for r in [&low, &high] {
            assert!(r.top10 <= 10.0 + 1e-9);
            assert!(r.top20 <= 20.0 + 1e-9);
            assert!(r.top30 <= 20.0 + 1e-9, "cannot select more than K nodes");
            assert!(r.top10 <= r.top20 && r.top20 <= r.top30);
        }
    }

    #[test]
    fn psi_08_selects_most_winners_from_top_30() {
        // The paper reports that with ψ = 0.8 roughly two thirds of the selected nodes are
        // among the top 30 scores; a literal score-order walk concentrates at least that much
        // (the exact fraction depends on tie handling the paper does not specify), so we
        // assert the qualitative claim: a clear majority of selections fall in the top 30.
        let spread = rank_spread_for_psi(0.8, 100, 20, 400, 3);
        let fraction = spread.top30 / 20.0;
        assert!(
            (0.6..=1.0).contains(&fraction),
            "top-30 fraction {fraction} should be a clear majority"
        );
    }

    #[test]
    fn quick_run_produces_both_panels() {
        let result = run(&ScenarioRunner::new(), &ImpactOfPsiConfig::quick()).unwrap();
        assert_eq!(result.rounds_to_accuracy.len(), 2);
        assert_eq!(result.rank_spread.len(), 3);
        assert_eq!(result.rank_series(10).len(), 3);
        assert_eq!(result.rank_series(30).len(), 3);
        assert!(result.to_table().to_markdown().contains("Impact of ψ"));
        assert_eq!(result.psi_pair, (0.3, 0.9));
    }

    #[test]
    fn paper_config_matches_figure_axes() {
        let c = ImpactOfPsiConfig::paper();
        assert_eq!(c.psi_pair, (0.3, 0.9));
        assert_eq!(c.sweep_values.len(), 7);
        assert_eq!(c.n, 100);
        assert_eq!(c.k, 20);
    }
}
