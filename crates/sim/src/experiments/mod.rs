//! One module per figure of the paper's evaluation.

pub mod accuracy;
pub mod cluster;
pub mod headline;
pub mod impact_k;
pub mod impact_n;
pub mod impact_psi;
pub mod scores;
