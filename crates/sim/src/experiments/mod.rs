//! One module per figure of the paper's evaluation, plus the declarative registry that
//! catalogues them all. Each module is a presentation layer over the scenario engine of
//! [`crate::scenario`]; none of them owns a training loop or constructs auction machinery.

pub mod accuracy;
pub mod adversary_soak;
pub mod chaos_soak;
pub mod cluster;
pub mod dynamics;
pub mod headline;
pub mod impact_k;
pub mod impact_n;
pub mod impact_psi;
pub mod registry;
pub mod scale;
pub mod scores;
pub mod service_soak;
