//! Figures 12–13: the simulated 32-node cluster deployment (accuracy and training time for
//! FMore vs RandFL on CIFAR-10).

use crate::error::SimError;
use crate::scenario::{ClusterScenarioSpec, ScenarioRunner};
use crate::series::{Series, Table};
use fmore_mec::cluster::{ClusterConfig, ClusterHistory, ClusterStrategy};

/// Configuration of the cluster experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterExperimentConfig {
    /// The underlying cluster configuration.
    pub cluster: ClusterConfig,
    /// Number of rounds (20 in the paper).
    pub rounds: usize,
    /// Accuracy targets for the time-to-accuracy panel of Fig. 13.
    pub accuracy_targets: Vec<f64>,
    /// Base seed.
    pub seed: u64,
}

impl ClusterExperimentConfig {
    /// Quick configuration for tests.
    pub fn quick() -> Self {
        Self {
            cluster: ClusterConfig::fast_test(),
            rounds: 3,
            accuracy_targets: vec![0.5, 0.7],
            seed: 33,
        }
    }

    /// The paper's deployment: 31 nodes, CIFAR-10, 20 rounds, time-to-accuracy targets
    /// 35%–60%.
    pub fn paper() -> Self {
        Self {
            cluster: ClusterConfig::paper_cluster(),
            rounds: 20,
            accuracy_targets: vec![0.35, 0.40, 0.45, 0.50, 0.55, 0.60],
            seed: 33,
        }
    }
}

/// One scheme's cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCurve {
    /// Scheme name ("FMore" or "RandFL").
    pub strategy: String,
    /// The full per-round history.
    pub history: ClusterHistory,
}

/// The reproduction of Figs. 12–13.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFigure {
    /// One curve per scheme.
    pub curves: Vec<ClusterCurve>,
    /// The accuracy targets evaluated for the time-to-accuracy panel.
    pub accuracy_targets: Vec<f64>,
}

impl ClusterFigure {
    /// Looks up a scheme by name.
    pub fn curve(&self, strategy: &str) -> Option<&ClusterCurve> {
        self.curves.iter().find(|c| c.strategy == strategy)
    }

    /// Accuracy-per-round series of a scheme (Fig. 12 left).
    pub fn accuracy_series(&self, strategy: &str) -> Series {
        let ys = self
            .curve(strategy)
            .map(|c| c.history.accuracy_series())
            .unwrap_or_default();
        Series::from_rounds(format!("{strategy} accuracy"), ys)
    }

    /// Cumulative-time-per-round series of a scheme (Fig. 13 left).
    pub fn time_series(&self, strategy: &str) -> Series {
        let ys = self
            .curve(strategy)
            .map(|c| c.history.cumulative_time_series())
            .unwrap_or_default();
        Series::from_rounds(format!("{strategy} cumulative time (s)"), ys)
    }

    /// Time (seconds) needed by a scheme to reach an accuracy target (Fig. 13 right).
    pub fn time_to_accuracy(&self, strategy: &str, target: f64) -> Option<f64> {
        self.curve(strategy)
            .and_then(|c| c.history.time_to_accuracy(target))
    }

    /// Markdown table with the per-round accuracy and cumulative time of every scheme.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["round".to_string()];
        for c in &self.curves {
            headers.push(format!("{} accuracy", c.strategy));
            headers.push(format!("{} time (s)", c.strategy));
        }
        let mut table = Table {
            title: "Cluster deployment: accuracy and training time (Figs. 12-13)".to_string(),
            headers,
            rows: Vec::new(),
        };
        let rounds = self
            .curves
            .iter()
            .map(|c| c.history.rounds.len())
            .max()
            .unwrap_or(0);
        for r in 0..rounds {
            let mut row = vec![(r + 1).to_string()];
            for c in &self.curves {
                let acc = c
                    .history
                    .rounds
                    .get(r)
                    .map_or(f64::NAN, |x| x.learning.accuracy);
                let time = c
                    .history
                    .rounds
                    .get(r)
                    .map_or(f64::NAN, |x| x.cumulative_secs);
                row.push(format!("{acc:.4}"));
                row.push(format!("{time:.1}"));
            }
            table.rows.push(row);
        }
        table
    }
}

/// The declarative specs of the cluster figure: one cluster scenario per scheme.
pub fn specs(config: &ClusterExperimentConfig) -> Vec<ClusterScenarioSpec> {
    [ClusterStrategy::FMore, ClusterStrategy::RandFL]
        .into_iter()
        .map(|strategy| {
            ClusterScenarioSpec::new(
                strategy.name(),
                config.cluster.clone(),
                strategy,
                config.rounds,
                config.seed,
            )
        })
        .collect()
}

/// Reproduces Figs. 12–13: runs the simulated cluster with FMore and with RandFL, in
/// parallel on the runner’s pool.
///
/// # Errors
///
/// Propagates cluster construction and training errors.
pub fn run(
    runner: &ScenarioRunner,
    config: &ClusterExperimentConfig,
) -> Result<ClusterFigure, SimError> {
    let outcomes = runner.run_clusters(&specs(config))?;
    let curves = outcomes
        .into_iter()
        .map(|o| ClusterCurve {
            strategy: o.strategy,
            history: o.history,
        })
        .collect();
    Ok(ClusterFigure {
        curves,
        accuracy_targets: config.accuracy_targets.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_compares_both_schemes() {
        let fig = run(&ScenarioRunner::new(), &ClusterExperimentConfig::quick()).unwrap();
        assert_eq!(fig.curves.len(), 2);
        assert!(fig.curve("FMore").is_some());
        assert!(fig.curve("RandFL").is_some());
        assert!(fig.curve("other").is_none());
        assert_eq!(fig.accuracy_series("FMore").len(), 3);
        assert_eq!(fig.time_series("RandFL").len(), 3);
        assert!(fig.time_series("FMore").last().unwrap() > 0.0);
        // Unknown strategies yield empty series and no time-to-accuracy.
        assert!(fig.accuracy_series("other").is_empty());
        assert!(fig.time_to_accuracy("other", 0.5).is_none());
        let md = fig.to_table().to_markdown();
        assert!(md.contains("FMore accuracy") && md.contains("RandFL time"));
    }

    #[test]
    fn time_to_accuracy_is_consistent_with_the_series() {
        let fig = run(&ScenarioRunner::new(), &ClusterExperimentConfig::quick()).unwrap();
        for strategy in ["FMore", "RandFL"] {
            if let Some(t) = fig.time_to_accuracy(strategy, 0.0) {
                let first_time = fig.curve(strategy).unwrap().history.rounds[0].cumulative_secs;
                assert_eq!(t, first_time);
            }
        }
    }

    #[test]
    fn paper_config_matches_section_v_c() {
        let c = ClusterExperimentConfig::paper();
        assert_eq!(c.rounds, 20);
        assert_eq!(c.cluster.nodes, 31);
        assert!(c.accuracy_targets.contains(&0.5));
    }
}
