//! The population-scale experiment family: selection rounds over lazily materialised node
//! populations, swept from thousands to a million bidders.
//!
//! Three registry entries ride on the same per-`N` machinery:
//!
//! * `scale-selection` — one full streamed selection round per population size (bid
//!   derivation → sharded scoring → bounded top-K → payments): winner statistics, the
//!   bounded standing store, and (at paper fidelity) the selection wall-clock;
//! * `scale-memory` — the stage's peak resident bid bytes against what a dense columnar
//!   store of the whole population would hold;
//! * `scale-parity` — on overlapping sizes, the streamed winner set and payments checked
//!   **bit-identical** against the dense full-sort [`fmore_auction::Auction::run`] path
//!   over the same bids.
//!
//! Bids are the capacity-capped equilibrium bids of the cluster's three-resource game,
//! priced through the O(1) tabulated ask path
//! ([`fmore_auction::EquilibriumSolver::tabulated_ask`]); node attributes come from a
//! [`fmore_mec::population::NodePopulation`] — derived per `(seed, i)`, never stored — so
//! the only `O(N)` cost of a round is arithmetic, not memory.
//!
//! Quick fidelity keeps every column deterministic (wall-clock is reported as `-`), so the
//! golden suite fingerprints these entries like any other figure; the committed
//! `BENCH_auction_scale.json` carries the measured times.

use crate::error::SimError;
use crate::scenario::ScenarioRunner;
use crate::series::Table;
use fmore_auction::{
    Additive, Auction, AuctionError, EquilibriumSolver, LinearCost, PricingRule, Quality,
    ScoringRule, SelectionRule, SubmittedBid,
};
use fmore_fl::engine::{auction_select_streamed, RoundEngine, StreamedAuction};
use fmore_fl::metrics::WinnerInfo;
use fmore_mec::population::{NodePopulation, PopulationSpec, SpecVersion};
use fmore_numerics::rng::derive_seed;
use fmore_numerics::{seeded_rng, UniformDist};
use std::sync::Arc;
use std::time::Instant;

/// Per-bid footprint of a dense columnar store at the scale game's three resource
/// dimensions: node id + three quality components + ask + score.
const DENSE_BID_BYTES: usize = 8 + 3 * 8 + 8 + 8;

/// The shard-filler closure type of the scale game: derives one index range of sealed bids
/// into a columnar store.
type ShardFiller = dyn Fn(std::ops::Range<usize>, &mut fmore_auction::BidStore) -> Result<(), AuctionError>
    + Send
    + Sync;

/// Configuration of the population-scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Population sizes `N` swept, in order.
    pub populations: Vec<usize>,
    /// Winners per round `K`.
    pub winners: usize,
    /// Bids per streamed shard.
    pub shard_size: usize,
    /// Standing candidates kept beyond `K` (pricing look-back + re-auction reserve).
    pub reserve: usize,
    /// Dense-path parity is checked for every `N` up to this bound.
    pub parity_limit: usize,
    /// θ grid resolution of the equilibrium tabulation.
    pub grid_size: usize,
    /// Base seed; each population point derives its own stream.
    pub seed: u64,
    /// Measure selection wall-clock (paper fidelity only — timings are not fingerprintable).
    pub timed: bool,
    /// RNG stream contract the populations derive bids under
    /// ([`SpecVersion::V1`] reproduces every committed golden; [`SpecVersion::V2`] is the
    /// fused fast path with its own goldens).
    pub spec_version: SpecVersion,
}

impl ScaleConfig {
    /// Sub-second configuration for tests and CI smoke runs.
    pub fn quick() -> Self {
        Self {
            populations: vec![1_000, 5_000, 20_000],
            winners: 64,
            shard_size: 4_096,
            reserve: 64,
            parity_limit: 5_000,
            grid_size: 96,
            seed: 4_242,
            timed: false,
            spec_version: SpecVersion::V1,
        }
    }

    /// The same configuration under a different population stream contract.
    pub fn with_spec_version(mut self, version: SpecVersion) -> Self {
        self.spec_version = version;
        self
    }

    /// The full sweep: `N` from 10³ to 10⁶, timed.
    pub fn paper() -> Self {
        Self {
            populations: vec![1_000, 10_000, 100_000, 1_000_000],
            winners: 64,
            shard_size: 8_192,
            reserve: 64,
            parity_limit: 10_000,
            grid_size: 128,
            seed: 4_242,
            timed: true,
            spec_version: SpecVersion::V1,
        }
    }
}

/// The per-`N` machinery shared by every scale entry (and by the `auction_scale` bench): a
/// lazily derived population, the tabulated equilibrium solver, and the auction of one
/// selection round.
pub struct ScaleGame {
    population: NodePopulation,
    solver: Arc<EquilibriumSolver>,
    auction: Auction,
    selection_seed: u64,
}

impl ScaleGame {
    /// Builds the game for a population of `n` nodes under `config` (solver tabulation
    /// happens here, once — not inside the per-round path). Selection is the paper's
    /// top-K; [`ScaleGame::with_selection`] swaps in another rule.
    ///
    /// # Errors
    ///
    /// Propagates population and solver construction failures.
    pub fn new(n: usize, config: &ScaleConfig) -> Result<Self, SimError> {
        Self::with_selection(n, config, SelectionRule::TopK)
    }

    /// [`ScaleGame::new`] under an explicit selection rule — the ψ-FMore sweeps of the
    /// scale bench ride on this constructor; everything else (population stream, solver
    /// tabulation, per-`N` selection seed) is identical, so a ψ game at the same `n`
    /// draws the very same bid population as the top-K game.
    ///
    /// # Errors
    ///
    /// Propagates population and solver construction failures.
    pub fn with_selection(
        n: usize,
        config: &ScaleConfig,
        selection: SelectionRule,
    ) -> Result<Self, SimError> {
        let spec = PopulationSpec::scale_default(n, derive_seed(config.seed, n as u64))
            .with_version(config.spec_version);
        let population = NodePopulation::new(spec)?;
        let scoring = Additive::new(vec![0.4, 0.3, 0.3])?;
        let cost = LinearCost::new(vec![0.3, 0.3, 0.4])?;
        let theta =
            UniformDist::new(spec.theta_range.0, spec.theta_range.1).map_err(AuctionError::from)?;
        let k = config.winners.min(n);
        let solver = EquilibriumSolver::builder()
            .scoring(scoring.clone())
            .cost(cost)
            .theta(theta)
            .bounds(vec![(0.0, 1.0); 3])
            .population(n)
            .winners(k)
            .grid_size(config.grid_size)
            .build()?;
        let auction = Auction::new(
            ScoringRule::new(scoring),
            k,
            selection,
            PricingRule::FirstPrice,
        );
        Ok(Self {
            population,
            solver: Arc::new(solver),
            auction,
            selection_seed: derive_seed(config.seed, 0xCA1E ^ n as u64),
        })
    }

    /// The shard filler: derives each node's capacity-capped tabulated equilibrium bid on
    /// demand — O(1) state per node, none of it retained.
    fn filler(&self) -> Arc<ShardFiller> {
        let population = self.population;
        let solver = Arc::clone(&self.solver);
        Arc::new(move |range, store| {
            // One fused derivation per node (bit-identical under v1 to the decomposed
            // theta + quality_into + tabulated_bid_into sequence it replaces; under v2
            // the fast single-stream path), the whole shard compiled under the runtime
            // AVX gate and appended through the store's trusted fast path.
            population.bid_range_into_store(range, 0, &solver, store)?;
            Ok(())
        })
    }

    /// One streamed selection round (bid derivation → sharded scoring → bounded top-K →
    /// payments).
    ///
    /// # Errors
    ///
    /// Propagates streaming-stage failures.
    pub fn run_streamed(
        &self,
        engine: &RoundEngine,
        config: &ScaleConfig,
    ) -> Result<StreamedAuction, SimError> {
        let mut rng = seeded_rng(self.selection_seed);
        let stage = auction_select_streamed(
            &self.auction,
            self.population.len(),
            config.shard_size,
            config.reserve,
            engine,
            self.filler(),
            &mut rng,
            |award| WinnerInfo {
                client: award.node.0 as usize,
                node: award.node,
                data_size: 1,
                categories: 1,
                score: award.score,
                payment: award.payment,
            },
        )?;
        Ok(stage)
    }

    /// The dense twin over the identical bids (only sensible at parity-check sizes).
    ///
    /// # Errors
    ///
    /// Propagates bid-derivation and dense-auction failures.
    pub fn run_dense(&self) -> Result<fmore_auction::AuctionOutcome, SimError> {
        let fill = self.filler();
        let mut store = fmore_auction::BidStore::with_capacity(3, self.population.len());
        fill(0..self.population.len(), &mut store)?;
        let bids: Vec<SubmittedBid> = (0..store.len())
            .map(|i| {
                SubmittedBid::new(
                    store.node(i),
                    Quality::new(store.quality(i).to_vec()),
                    store.ask(i),
                )
            })
            .collect();
        let mut rng = seeded_rng(self.selection_seed);
        Ok(self.auction.run(bids, &mut rng)?)
    }
}

/// One population point of the `scale-selection` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Population size `N`.
    pub n: usize,
    /// Bids streamed through the selector.
    pub offered: usize,
    /// Winners awarded.
    pub winners: usize,
    /// Total payment promised.
    pub total_payment: f64,
    /// Mean winner score.
    pub mean_score: f64,
    /// Standing candidates kept after selection.
    pub standing: usize,
    /// Selection wall-clock in milliseconds, when timed.
    ///
    /// Peak resident bid bytes are deliberately not recorded here: they scale with the
    /// engine's wave width, which would make the figure depend on the pool size. The
    /// `scale-memory` figure measures them on the inline engine, where the bound is the
    /// single-threaded `O(shard + K)`.
    pub selection_ms: Option<f64>,
}

/// The `scale-selection` figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleFigure {
    /// One point per swept population size.
    pub points: Vec<ScalePoint>,
}

impl ScaleFigure {
    /// Markdown table of the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Population-scale selection: streamed top-K over lazily derived bidders",
            &[
                "N",
                "bids",
                "winners",
                "total payment",
                "mean winner score",
                "standing",
                "sel ms",
            ],
        );
        for p in &self.points {
            t.push_row(&[
                p.n.to_string(),
                p.offered.to_string(),
                p.winners.to_string(),
                format!("{:.4}", p.total_payment),
                format!("{:.4}", p.mean_score),
                p.standing.to_string(),
                p.selection_ms
                    .map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}")),
            ]);
        }
        t
    }
}

/// Runs the `scale-selection` sweep.
///
/// # Errors
///
/// Propagates solver/auction construction and streaming failures.
pub fn run_selection(
    runner: &ScenarioRunner,
    config: &ScaleConfig,
) -> Result<ScaleFigure, SimError> {
    let engine = runner.engine();
    let mut points = Vec::with_capacity(config.populations.len());
    for &n in &config.populations {
        let game = ScaleGame::new(n, config)?;
        let started = Instant::now();
        let stage = game.run_streamed(&engine, config)?;
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let mean_score = if stage.winners.is_empty() {
            0.0
        } else {
            stage.winners.iter().map(|w| w.score).sum::<f64>() / stage.winners.len() as f64
        };
        points.push(ScalePoint {
            n,
            offered: stage.offered,
            winners: stage.winners.len(),
            total_payment: stage.winners.iter().map(|w| w.payment).sum(),
            mean_score,
            standing: stage.standing.len(),
            selection_ms: config.timed.then_some(elapsed_ms),
        });
    }
    Ok(ScaleFigure { points })
}

/// One row of the `scale-memory` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPoint {
    /// Population size `N`.
    pub n: usize,
    /// Peak resident bid bytes of the streamed stage (`O(width · shard + K)`).
    pub streamed_bytes: usize,
    /// Bytes a dense columnar store of the full population holds (`O(N)`).
    pub dense_bytes: usize,
}

/// The `scale-memory` figure.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryFigure {
    /// One point per swept population size.
    pub points: Vec<MemoryPoint>,
}

impl MemoryFigure {
    /// Markdown table of the comparison.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Population-scale memory: streamed peak vs dense bid store",
            &[
                "N",
                "streamed peak (KiB)",
                "dense store (KiB)",
                "dense/streamed",
            ],
        );
        for p in &self.points {
            let ratio = p.dense_bytes as f64 / p.streamed_bytes.max(1) as f64;
            t.push_row(&[
                p.n.to_string(),
                format!("{:.1}", p.streamed_bytes as f64 / 1024.0),
                format!("{:.1}", p.dense_bytes as f64 / 1024.0),
                format!("{ratio:.1}x"),
            ]);
        }
        t
    }
}

/// Runs the `scale-memory` comparison — the streamed stage is executed inline (width 1) so
/// the reported peak is the single-threaded `O(shard + K)` bound.
///
/// # Errors
///
/// Propagates solver/auction construction and streaming failures.
pub fn run_memory(
    _runner: &ScenarioRunner,
    config: &ScaleConfig,
) -> Result<MemoryFigure, SimError> {
    let engine = RoundEngine::inline();
    let mut points = Vec::with_capacity(config.populations.len());
    for &n in &config.populations {
        let game = ScaleGame::new(n, config)?;
        let stage = game.run_streamed(&engine, config)?;
        points.push(MemoryPoint {
            n,
            streamed_bytes: stage.peak_bid_bytes,
            dense_bytes: n * DENSE_BID_BYTES,
        });
    }
    Ok(MemoryFigure { points })
}

/// One row of the `scale-parity` check.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityPoint {
    /// Population size `N`.
    pub n: usize,
    /// Whether the streamed winner sequence equals the dense one node-for-node.
    pub winners_identical: bool,
    /// Maximum absolute payment difference across winners (bitwise-equal paths show 0).
    pub max_payment_delta: f64,
    /// Winners compared.
    pub winners: usize,
}

/// The `scale-parity` figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityFigure {
    /// One point per checked population size.
    pub points: Vec<ParityPoint>,
}

impl ParityFigure {
    /// Markdown table of the check.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Population-scale parity: streamed selection vs dense full-sort",
            &["N", "winners", "identical", "max |payment delta|"],
        );
        for p in &self.points {
            t.push_row(&[
                p.n.to_string(),
                p.winners.to_string(),
                if p.winners_identical { "yes" } else { "NO" }.to_string(),
                format!("{:.1e}", p.max_payment_delta),
            ]);
        }
        t
    }

    /// Whether every checked size was bit-identical.
    pub fn all_identical(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.winners_identical && p.max_payment_delta == 0.0)
    }
}

/// Runs the `scale-parity` check for every swept `N` within the config's parity bound.
///
/// # Errors
///
/// Propagates solver/auction construction, dense-run, and streaming failures.
pub fn run_parity(runner: &ScenarioRunner, config: &ScaleConfig) -> Result<ParityFigure, SimError> {
    let engine = runner.engine();
    let mut points = Vec::new();
    for &n in &config.populations {
        if n > config.parity_limit {
            continue;
        }
        let game = ScaleGame::new(n, config)?;
        let streamed = game.run_streamed(&engine, config)?;
        let dense = game.run_dense()?;
        let winners_identical = streamed.winners.len() == dense.winners().len()
            && streamed
                .winners
                .iter()
                .zip(dense.winners())
                .all(|(s, d)| s.node == d.node && s.score.to_bits() == d.score.to_bits());
        let max_payment_delta = streamed
            .winners
            .iter()
            .zip(dense.winners())
            .map(|(s, d)| (s.payment - d.payment).abs())
            .fold(0.0, f64::max);
        points.push(ParityPoint {
            n,
            winners_identical,
            max_payment_delta,
            winners: streamed.winners.len(),
        });
    }
    Ok(ParityFigure { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            populations: vec![500, 2_000],
            winners: 16,
            shard_size: 256,
            reserve: 16,
            parity_limit: 2_000,
            grid_size: 48,
            seed: 7,
            timed: false,
            spec_version: SpecVersion::V1,
        }
    }

    #[test]
    fn selection_sweep_produces_full_winner_sets() {
        let runner = ScenarioRunner::new();
        let figure = run_selection(&runner, &tiny()).unwrap();
        assert_eq!(figure.points.len(), 2);
        for p in &figure.points {
            assert_eq!(p.offered, p.n);
            assert_eq!(p.winners, 16);
            assert!(p.total_payment > 0.0);
            assert!(p.mean_score > 0.0);
            assert!(p.standing <= 32);
            assert_eq!(p.selection_ms, None);
        }
        let table = figure.to_table();
        assert_eq!(table.rows.len(), 2);
        assert!(table.to_markdown().contains("streamed top-K"));
    }

    #[test]
    fn selection_sweep_is_deterministic() {
        let runner = ScenarioRunner::new();
        let a = run_selection(&runner, &tiny()).unwrap();
        let b = run_selection(&ScenarioRunner::with_threads(1), &tiny()).unwrap();
        assert_eq!(a, b, "pool size must not change the sweep");
    }

    #[test]
    fn memory_comparison_shows_sublinear_growth() {
        let runner = ScenarioRunner::new();
        let figure = run_memory(&runner, &tiny()).unwrap();
        assert_eq!(figure.points.len(), 2);
        let small = &figure.points[0];
        let large = &figure.points[1];
        assert_eq!(large.dense_bytes, 4 * small.dense_bytes);
        // Streamed peak is bounded by the shard, so it cannot scale with N.
        assert!(large.streamed_bytes <= small.streamed_bytes * 2);
        assert!(figure.to_table().to_markdown().contains("dense/streamed"));
    }

    #[test]
    fn parity_holds_bit_for_bit_on_small_sizes() {
        let runner = ScenarioRunner::new();
        let figure = run_parity(&runner, &tiny()).unwrap();
        assert_eq!(figure.points.len(), 2);
        assert!(figure.all_identical(), "{:?}", figure.points);
        for p in &figure.points {
            assert_eq!(p.winners, 16);
        }
    }

    #[test]
    fn v2_spec_changes_the_draws_but_keeps_every_invariant() {
        let runner = ScenarioRunner::new();
        let v2 = tiny().with_spec_version(SpecVersion::V2);
        // The streamed/dense parity contract is version-independent…
        let parity = run_parity(&runner, &v2).unwrap();
        assert!(parity.all_identical(), "{:?}", parity.points);
        // …the sweep is deterministic across pool widths…
        let a = run_selection(&runner, &v2).unwrap();
        let b = run_selection(&ScenarioRunner::with_threads(1), &v2).unwrap();
        assert_eq!(a, b);
        // …and the v2 stream really is a different fleet than v1.
        let v1 = run_selection(&runner, &tiny()).unwrap();
        assert_ne!(a, v1, "v2 must not replay the v1 draws");
        for p in &a.points {
            assert_eq!(p.winners, 16);
            assert!(p.total_payment > 0.0);
        }
    }

    #[test]
    fn psi_selection_is_bit_identical_to_dense_and_stays_bounded() {
        let config = tiny();
        let engine = RoundEngine::inline();
        let mut peaks = Vec::new();
        for &n in &config.populations {
            let game = ScaleGame::with_selection(n, &config, SelectionRule::PsiFMore { psi: 0.8 })
                .unwrap();
            let streamed = game.run_streamed(&engine, &config).unwrap();
            let dense = game.run_dense().unwrap();
            assert_eq!(streamed.winners.len(), dense.winners().len());
            for (s, d) in streamed.winners.iter().zip(dense.winners()) {
                assert_eq!(s.node, d.node);
                assert_eq!(s.score.to_bits(), d.score.to_bits());
                assert_eq!(s.payment.to_bits(), d.payment.to_bits());
            }
            peaks.push(streamed.peak_bid_bytes);
        }
        // The bounded ψ admission keeps the peak at shard scale: quadrupling the
        // population must not move resident bid bytes past the shard-bounded envelope.
        assert!(
            peaks[1] <= peaks[0] * 2,
            "psi streamed peak grew with N: {peaks:?}"
        );
    }

    #[test]
    fn parity_respects_the_limit() {
        let mut config = tiny();
        config.parity_limit = 600;
        let figure = run_parity(&ScenarioRunner::new(), &config).unwrap();
        assert_eq!(figure.points.len(), 1, "only N=500 is within the limit");
    }
}
