//! Figures 4–7: model accuracy and loss per training round for FMore, RandFL, and FixFL.

use crate::error::SimError;
use crate::scenario::{ScenarioRunner, ScenarioSpec};
use crate::series::{Series, Table};
use fmore_fl::config::{FlConfig, ModelChoice};
use fmore_fl::metrics::TrainingHistory;
use fmore_fl::selection::SelectionStrategy;
use fmore_ml::dataset::TaskKind;

/// Configuration of one accuracy/loss figure (one task, all three schemes).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyConfig {
    /// Which paper task to train (selects the figure: 4 = MNIST-O, 5 = MNIST-F,
    /// 6 = CIFAR-10, 7 = HPNews).
    pub task: TaskKind,
    /// Number of federated rounds (20 in the paper).
    pub rounds: usize,
    /// The underlying federated-learning configuration.
    pub fl: FlConfig,
    /// Base RNG seed; every scheme gets a deterministic derived seed.
    pub seed: u64,
}

impl AccuracyConfig {
    /// A configuration that finishes in well under a second (tests, CI).
    pub fn quick(task: TaskKind) -> Self {
        Self {
            task,
            rounds: 3,
            fl: FlConfig::fast_test(task),
            seed: 42,
        }
    }

    /// The paper's simulator parameters (`N = 100`, `K = 20`, 20 rounds, non-IID), with the
    /// fast surrogate model so the full figure regenerates in minutes rather than hours (the
    /// selection dynamics — which clients win and how much data reaches the aggregator — are
    /// unchanged; see EXPERIMENTS.md).
    pub fn paper(task: TaskKind) -> Self {
        let mut fl = FlConfig::paper_simulation(task);
        fl.model = ModelChoice::FastSurrogate;
        fl.train_samples = 8_000;
        fl.test_samples = 1_000;
        Self {
            task,
            rounds: 20,
            fl,
            seed: 42,
        }
    }
}

/// The accuracy/loss curves of one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyCurve {
    /// Scheme name ("FMore", "RandFL", "FixFL").
    pub strategy: String,
    /// Accuracy per round.
    pub accuracy: Series,
    /// Loss per round.
    pub loss: Series,
    /// The full per-round history (winners, payments, scores).
    pub history: TrainingHistory,
}

/// The reproduction of one of Figs. 4–7.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyFigure {
    /// The task the figure was generated for.
    pub task: TaskKind,
    /// One curve per scheme.
    pub curves: Vec<StrategyCurve>,
}

impl AccuracyFigure {
    /// Looks up the curve of a scheme by name.
    pub fn curve(&self, strategy: &str) -> Option<&StrategyCurve> {
        self.curves.iter().find(|c| c.strategy == strategy)
    }

    /// Final accuracy of a scheme, `0.0` if the scheme is missing.
    pub fn final_accuracy(&self, strategy: &str) -> f64 {
        self.curve(strategy)
            .map_or(0.0, |c| c.history.final_accuracy())
    }

    /// Renders the per-round accuracy of every scheme as a Markdown table (the data behind
    /// the paper figure).
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["round".to_string()];
        headers.extend(
            self.curves
                .iter()
                .map(|c| format!("{} accuracy", c.strategy)),
        );
        headers.extend(self.curves.iter().map(|c| format!("{} loss", c.strategy)));
        let mut table = Table {
            title: format!("Accuracy and loss per round — {}", self.task.name()),
            headers,
            rows: Vec::new(),
        };
        let rounds = self
            .curves
            .iter()
            .map(|c| c.accuracy.len())
            .max()
            .unwrap_or(0);
        for r in 0..rounds {
            let mut row = vec![(r + 1).to_string()];
            for c in &self.curves {
                row.push(format!(
                    "{:.4}",
                    c.accuracy.ys.get(r).copied().unwrap_or(f64::NAN)
                ));
            }
            for c in &self.curves {
                row.push(format!(
                    "{:.4}",
                    c.loss.ys.get(r).copied().unwrap_or(f64::NAN)
                ));
            }
            table.rows.push(row);
        }
        table
    }
}

/// The declarative specs of one accuracy figure: one scenario per scheme, with derived
/// seeds in scheme order.
pub fn specs(config: &AccuracyConfig) -> Vec<ScenarioSpec> {
    [
        SelectionStrategy::fmore(),
        SelectionStrategy::random(),
        SelectionStrategy::fixed_first(config.fl.winners_per_round),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, strategy)| {
        let label = strategy.name().to_string();
        ScenarioSpec::new(
            label,
            config.fl.clone(),
            strategy,
            config.rounds,
            config.seed + i as u64,
        )
    })
    .collect()
}

fn curve_from_history(strategy: String, history: TrainingHistory) -> StrategyCurve {
    StrategyCurve {
        strategy,
        accuracy: Series::from_rounds("accuracy", history.accuracy_series()),
        loss: Series::from_rounds("loss", history.loss_series()),
        history,
    }
}

/// Runs one scheme through the scenario engine and returns its curve.
///
/// # Errors
///
/// Propagates configuration and auction errors from the scenario engine.
pub fn run_strategy(
    runner: &ScenarioRunner,
    config: &AccuracyConfig,
    strategy: SelectionStrategy,
    seed: u64,
) -> Result<StrategyCurve, SimError> {
    let label = strategy.name().to_string();
    let spec = ScenarioSpec::new(label, config.fl.clone(), strategy, config.rounds, seed);
    let outcome = runner.run(&spec)?;
    Ok(curve_from_history(outcome.strategy, outcome.history))
}

/// Reproduces one of Figs. 4–7: trains the task with FMore, RandFL, and FixFL (in parallel
/// on the runner’s pool) and returns the three curves.
///
/// # Errors
///
/// Propagates configuration and auction errors from the scenario engine.
pub fn run(runner: &ScenarioRunner, config: &AccuracyConfig) -> Result<AccuracyFigure, SimError> {
    let outcomes = runner.run_all(&specs(config))?;
    let curves = outcomes
        .into_iter()
        .map(|o| curve_from_history(o.strategy, o.history))
        .collect();
    Ok(AccuracyFigure {
        task: config.task,
        curves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_figure_has_three_schemes() {
        let fig = run(
            &ScenarioRunner::new(),
            &AccuracyConfig::quick(TaskKind::MnistO),
        )
        .unwrap();
        assert_eq!(fig.curves.len(), 3);
        assert!(fig.curve("FMore").is_some());
        assert!(fig.curve("RandFL").is_some());
        assert!(fig.curve("FixFL").is_some());
        assert!(fig.curve("Nope").is_none());
        for c in &fig.curves {
            assert_eq!(c.accuracy.len(), 3);
            assert_eq!(c.loss.len(), 3);
            assert!(c.accuracy.ys.iter().all(|a| (0.0..=1.0).contains(a)));
        }
        assert!(fig.final_accuracy("FMore") > 0.0);
        assert_eq!(fig.final_accuracy("Nope"), 0.0);
    }

    #[test]
    fn table_has_one_row_per_round() {
        let fig = run(
            &ScenarioRunner::new(),
            &AccuracyConfig::quick(TaskKind::MnistO),
        )
        .unwrap();
        let table = fig.to_table();
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.headers.len(), 1 + 3 + 3);
        assert!(table.to_markdown().contains("MNIST-O"));
    }

    #[test]
    fn paper_config_matches_section_v() {
        let c = AccuracyConfig::paper(TaskKind::Cifar10);
        assert_eq!(c.rounds, 20);
        assert_eq!(c.fl.clients, 100);
        assert_eq!(c.fl.winners_per_round, 20);
    }

    #[test]
    fn runs_are_deterministic() {
        let config = AccuracyConfig::quick(TaskKind::MnistO);
        let runner = ScenarioRunner::new();
        let a = run(&runner, &config).unwrap();
        let b = run(&runner, &config).unwrap();
        assert_eq!(a, b);
    }
}
