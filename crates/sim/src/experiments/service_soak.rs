//! The `service-soak` registry entry: N concurrent FL jobs of mixed schemes multiplexed on
//! one [`AuctionService`], with every job's interleaved history checked bit-identical to a
//! solo run of the same spec.
//!
//! Each job binds its own lazily derived [`NodePopulation`] (alternating the v1 and v2
//! stream contracts) and its own tabulated equilibrium solver into a round-aware
//! [`BidSource`], alternates FMore top-K with ψ-FMore selection, and attaches a synthetic
//! deadline model to half the fleet. Jobs are driven from one OS thread each through the
//! service's request/drain (backpressure) interface, all sharing the runner's worker pool —
//! the soak is precisely the noisy-neighbour regime the service's ownership contract has to
//! survive.

use crate::error::SimError;
use crate::experiments::registry::ExperimentReport;
use crate::scenario::ScenarioRunner;
use crate::series::Table;
use fmore_auction::{Additive, Auction, AuctionError, EquilibriumSolver, LinearCost};
use fmore_auction::{PricingRule, ScoringRule, SelectionRule};
use fmore_fl::engine::{FanOutGranularity, RoundEngine};
use fmore_fl::service::{AuctionService, BidSource, DeadlineSpec, JobSpec, ServiceConfig};
use fmore_mec::population::{NodePopulation, PopulationSpec, SpecVersion};
use fmore_numerics::rng::derive_seed;
use fmore_numerics::UniformDist;
use std::sync::Arc;

/// Configuration of the service soak.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Concurrent jobs driven through one service.
    pub jobs: usize,
    /// Rounds each job runs.
    pub rounds: usize,
    /// Bidder population per job.
    pub population: usize,
    /// Shard width of each job's bid stream.
    pub shard_size: usize,
    /// Winners per round `K`.
    pub winners: usize,
    /// Standing candidates kept beyond `K`.
    pub reserve: usize,
    /// θ grid resolution of each job's equilibrium tabulation.
    pub grid_size: usize,
    /// Base seed; job `j` derives its own stream as `derive_seed(seed, j)`.
    pub seed: u64,
    /// Dispatch granularity of every job's per-winner work stage (never changes
    /// histories; see [`fmore_fl::engine::FanOutGranularity`]).
    pub fan_out: FanOutGranularity,
}

impl SoakConfig {
    /// Sub-second configuration for tests, CI, and the golden suite.
    pub fn quick() -> Self {
        Self {
            jobs: 4,
            rounds: 3,
            population: 512,
            shard_size: 128,
            winners: 8,
            reserve: 8,
            grid_size: 48,
            seed: 7_171,
            fan_out: FanOutGranularity::PerWinner,
        }
    }

    /// The heavy soak: eight mixed-scheme tenants, larger populations, more rounds.
    pub fn paper() -> Self {
        Self {
            jobs: 8,
            rounds: 12,
            population: 8_192,
            shard_size: 1_024,
            winners: 16,
            reserve: 16,
            grid_size: 96,
            seed: 7_171,
            fan_out: FanOutGranularity::PerWinner,
        }
    }
}

fn scheme_for(j: usize) -> SelectionRule {
    if j.is_multiple_of(2) {
        SelectionRule::TopK
    } else {
        SelectionRule::PsiFMore { psi: 0.7 }
    }
}

fn version_for(j: usize) -> SpecVersion {
    if j % 4 < 2 {
        SpecVersion::V1
    } else {
        SpecVersion::V2
    }
}

fn scheme_name(rule: SelectionRule) -> &'static str {
    match rule {
        SelectionRule::TopK => "FMore",
        SelectionRule::PsiFMore { .. } => "psi-FMore",
    }
}

fn version_name(version: SpecVersion) -> &'static str {
    match version {
        SpecVersion::V1 => "v1",
        SpecVersion::V2 => "v2",
    }
}

/// Builds the soak's job specs: per-job populations of alternating stream contracts, mixed
/// selection rules, per-job seeds, deadlines on the odd half, and a deterministic synthetic
/// per-winner work closure standing in for local training.
///
/// # Errors
///
/// Propagates population and solver construction failures.
pub fn job_specs(config: &SoakConfig) -> Result<Vec<JobSpec>, SimError> {
    (0..config.jobs)
        .map(|j| {
            let seed = derive_seed(config.seed, j as u64 + 1);
            let version = version_for(j);
            let selection = scheme_for(j);
            let spec = PopulationSpec::scale_default(config.population, seed).with_version(version);
            let population = NodePopulation::new(spec)?;
            let scoring = Additive::new(vec![0.4, 0.3, 0.3])?;
            let cost = LinearCost::new(vec![0.3, 0.3, 0.4])?;
            let theta = UniformDist::new(spec.theta_range.0, spec.theta_range.1)
                .map_err(AuctionError::from)?;
            let k = config.winners.min(config.population);
            let solver = EquilibriumSolver::builder()
                .scoring(scoring.clone())
                .cost(cost)
                .theta(theta)
                .bounds(vec![(0.0, 1.0); 3])
                .population(config.population)
                .winners(k)
                .grid_size(config.grid_size)
                .build()?;
            let solver = Arc::new(solver);
            let source: Arc<BidSource> = Arc::new(move |range, round, store| {
                population.bid_range_into_store(range, round, &solver, store)
            });
            Ok(JobSpec {
                name: format!(
                    "job{j}-{}-{}",
                    scheme_name(selection),
                    version_name(version)
                ),
                population: config.population,
                shard_size: config.shard_size,
                reserve: config.reserve,
                auction: Auction::new(
                    ScoringRule::new(scoring),
                    k,
                    selection,
                    PricingRule::FirstPrice,
                ),
                seed,
                deadline: (j % 2 == 1).then(DeadlineSpec::lenient),
                max_pending: 4,
                update_dim: 0,
                watchdog: None,
                faults: None,
                adversaries: None,
                reputation: None,
                aggregation: JobSpec::default_aggregation(),
                fan_out: config.fan_out,
                source,
                // Deterministic stand-in for local training: pure in (round, slot, winner).
                work: Some(Arc::new(|round, slot, winner| {
                    (winner.score + winner.payment) * (1.0 + (round as f64 + slot as f64).sqrt())
                })),
            })
        })
        .collect()
}

/// Runs every job solo (its own fresh service on the same pool), `rounds` rounds each,
/// returning the per-job history fingerprints.
///
/// # Errors
///
/// Propagates service failures (every soak round is expected to succeed).
pub fn solo_fingerprints(
    engine: &RoundEngine,
    specs: &[JobSpec],
    rounds: usize,
) -> Result<Vec<u64>, SimError> {
    specs
        .iter()
        .map(|spec| {
            let service = AuctionService::with_engine(ServiceConfig::default(), engine.clone());
            let id = service.admit(spec.clone())?;
            for _ in 0..rounds {
                service.run_round(id)?;
            }
            Ok(service.close(id)?.fingerprint())
        })
        .collect()
}

/// One driven soak: admits every spec into one shared service and drives each job from its
/// own OS thread through the backpressure interface (request until the queue refuses, then
/// drain), until every job has run `rounds` rounds. Returns the per-job histories' final
/// summaries as table rows plus the fingerprint comparison against solo runs.
///
/// # Errors
///
/// Propagates service failures.
pub fn run(runner: &ScenarioRunner, config: &SoakConfig) -> Result<ExperimentReport, SimError> {
    let engine = runner.engine();
    let specs = job_specs(config)?;
    let solo = solo_fingerprints(&engine, &specs, config.rounds)?;

    let service = AuctionService::with_engine(
        ServiceConfig {
            max_jobs: config.jobs,
            max_pending: 4,
        },
        engine,
    );
    let ids: Vec<_> = specs
        .iter()
        .map(|spec| service.admit(spec.clone()))
        .collect::<Result<_, _>>()?;

    std::thread::scope(|scope| -> Result<(), SimError> {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let service = &service;
                let rounds = config.rounds;
                scope.spawn(move || -> Result<(), SimError> {
                    let mut remaining = rounds;
                    while remaining > 0 {
                        // Fill the bounded queue, then drain it: the service's intended
                        // request/run rhythm under sustained traffic.
                        while remaining > 0 {
                            match service.request_round(id) {
                                Ok(()) => remaining -= 1,
                                Err(fmore_fl::FlError::Backpressure { .. }) => break,
                                Err(e) => return Err(e.into()),
                            }
                        }
                        service.run_pending(id)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload))?;
        }
        Ok(())
    })?;

    let mut table = Table::new(
        format!("Service soak: {} concurrent jobs on one pool", config.jobs),
        &[
            "job",
            "scheme",
            "stream",
            "rounds",
            "failed",
            "winners/round",
            "total payment",
            "matches solo",
        ],
    );
    for (j, (&id, spec)) in ids.iter().zip(&specs).enumerate() {
        let history = service.history(id)?;
        let completed = history.completed();
        let failed = history.failed();
        let (winners, payment) = history
            .rounds
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .fold((0usize, 0.0f64), |(w, p), s| {
                (w + s.winners.len(), p + s.total_payment)
            });
        let matches = history.fingerprint() == solo[j];
        table.push_row(&[
            spec.name.clone(),
            scheme_name(scheme_for(j)).to_string(),
            version_name(version_for(j)).to_string(),
            completed.to_string(),
            failed.to_string(),
            format!("{:.1}", winners as f64 / completed.max(1) as f64),
            format!("{payment:.4}"),
            if matches { "yes" } else { "NO" }.to_string(),
        ]);
        if !matches {
            return Err(SimError::Fl(fmore_fl::FlError::InvalidConfig(format!(
                "job {} interleaved history diverged from its solo run",
                spec.name
            ))));
        }
    }
    Ok(ExperimentReport {
        name: "service-soak",
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_is_deterministic_and_matches_solo() {
        let runner = ScenarioRunner::with_threads(2);
        let a = run(&runner, &SoakConfig::quick()).unwrap();
        let b = run(&runner, &SoakConfig::quick()).unwrap();
        assert_eq!(a, b, "the soak report is bit-stable");
        let md = a.to_markdown();
        assert!(md.contains("FMore"));
        assert!(md.contains("psi-FMore"));
        assert!(md.contains("v2"));
        assert!(!md.contains("NO"), "every job matched its solo history");
    }

    #[test]
    fn specs_mix_schemes_contracts_and_seeds() {
        let specs = job_specs(&SoakConfig::quick()).unwrap();
        assert_eq!(specs.len(), 4);
        let names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "job0-FMore-v1",
                "job1-psi-FMore-v1",
                "job2-FMore-v2",
                "job3-psi-FMore-v2",
            ]
        );
        let seeds: std::collections::BTreeSet<_> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), specs.len(), "every job gets its own stream");
        assert!(specs[1].deadline.is_some() && specs[0].deadline.is_none());
    }
}
