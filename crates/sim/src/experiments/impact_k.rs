//! Figure 10: the impact of the winner count `K`.
//!
//! * Fig. 10a — rounds needed to reach accuracy targets for a small vs a large `K` (a larger
//!   `K` feeds more data per round and speeds up training).
//! * Fig. 10b — the mean winner payment rises and the mean winner score falls as `K` grows
//!   (weaker competition per slot; Theorem 3).

use crate::error::SimError;
use crate::experiments::impact_n::AuctionSweepPoint;
use crate::scenario::{ScenarioRunner, ScenarioSpec};
use crate::series::{Series, Table};
use fmore_auction::game::{game_statistics, GameConfig};
use fmore_fl::config::FlConfig;
use fmore_fl::selection::SelectionStrategy;
use fmore_ml::dataset::TaskKind;

/// The reproduction of Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfK {
    /// For each accuracy target: rounds needed at the small and at the large `K`.
    pub rounds_to_accuracy: Vec<(f64, Option<usize>, Option<usize>)>,
    /// The two winner counts compared in Fig. 10a.
    pub winner_counts: (usize, usize),
    /// Payment / score as a function of `K` (Fig. 10b).
    pub sweep: Vec<AuctionSweepPoint>,
}

impl ImpactOfK {
    /// The payment-vs-K series.
    pub fn payment_series(&self) -> Series {
        Series::new(
            "mean winner payment",
            self.sweep.iter().map(|p| p.value as f64).collect(),
            self.sweep.iter().map(|p| p.mean_payment).collect(),
        )
    }

    /// The score-vs-K series.
    pub fn score_series(&self) -> Series {
        Series::new(
            "mean winner score",
            self.sweep.iter().map(|p| p.value as f64).collect(),
            self.sweep.iter().map(|p| p.mean_score).collect(),
        )
    }

    /// Markdown table for the rounds-to-accuracy panel.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Impact of K (Fig. 10)",
            &["accuracy target", "rounds (K small)", "rounds (K large)"],
        );
        for (target, small, large) in &self.rounds_to_accuracy {
            let fmt = |v: &Option<usize>| v.map_or("not reached".to_string(), |r| r.to_string());
            t.push_row(&[format!("{:.0}%", target * 100.0), fmt(small), fmt(large)]);
        }
        t
    }
}

/// Configuration for the Fig. 10 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactOfKConfig {
    /// The two winner counts compared in Fig. 10a (the paper uses 5 and 25).
    pub winner_counts: (usize, usize),
    /// Accuracy targets of Fig. 10a.
    pub accuracy_targets: Vec<f64>,
    /// Round budget for the training runs.
    pub rounds: usize,
    /// Base FL configuration (the winner count is overridden per run).
    pub fl: FlConfig,
    /// Values of `K` swept in Fig. 10b.
    pub sweep_values: Vec<usize>,
    /// Population `N` used in the sweep.
    pub n: usize,
    /// Auction games averaged per sweep point.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl ImpactOfKConfig {
    /// Quick configuration for tests.
    pub fn quick() -> Self {
        Self {
            winner_counts: (2, 6),
            accuracy_targets: vec![0.5, 0.7],
            rounds: 4,
            fl: FlConfig::fast_test(TaskKind::MnistO),
            sweep_values: vec![2, 5, 8],
            n: 30,
            trials: 2,
            seed: 9,
        }
    }

    /// The paper's configuration: `K ∈ {5, 25}` for Fig. 10a and `K ∈ {5 … 35}` for Fig. 10b
    /// with `N = 100`.
    pub fn paper() -> Self {
        let mut fl = FlConfig::paper_simulation(TaskKind::MnistF);
        fl.model = fmore_fl::config::ModelChoice::FastSurrogate;
        fl.train_samples = 8_000;
        fl.test_samples = 1_000;
        Self {
            winner_counts: (5, 25),
            accuracy_targets: vec![0.70, 0.80, 0.82, 0.84, 0.86],
            rounds: 20,
            fl,
            sweep_values: vec![5, 10, 15, 20, 25, 30, 35],
            n: 100,
            trials: 5,
            seed: 9,
        }
    }
}

/// The declarative specs of Fig. 10a: one FMore training scenario per winner count.
pub fn specs(config: &ImpactOfKConfig) -> Vec<ScenarioSpec> {
    let (k_small, k_large) = config.winner_counts;
    [k_small, k_large]
        .into_iter()
        .map(|k| {
            ScenarioSpec::new(
                format!("K={k}"),
                config.fl.clone(),
                SelectionStrategy::fmore(),
                config.rounds,
                config.seed,
            )
            .with_winners(k)
        })
        .collect()
}

/// Reproduces Fig. 10: the two training runs of panel (a) and the auction-game sweep of
/// panel (b), every independent piece in parallel on the runner’s pool.
///
/// # Errors
///
/// Propagates trainer and auction errors.
pub fn run(runner: &ScenarioRunner, config: &ImpactOfKConfig) -> Result<ImpactOfK, SimError> {
    let outcomes = runner.run_all(&specs(config))?;
    let rounds_to_accuracy = config
        .accuracy_targets
        .iter()
        .map(|&target| {
            (
                target,
                outcomes[0].history.rounds_to_accuracy(target),
                outcomes[1].history.rounds_to_accuracy(target),
            )
        })
        .collect();

    let (n, trials, seed) = (config.n, config.trials, config.seed);
    let sweep = runner
        .map(config.sweep_values.clone(), move |k| {
            let k = k.min(n);
            let stats =
                game_statistics(&GameConfig::paper_simulation(n, k, trials), seed + k as u64)?;
            Ok(AuctionSweepPoint {
                value: k,
                mean_payment: stats.mean_payment,
                mean_score: stats.mean_score,
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, fmore_auction::AuctionError>>()?;
    Ok(ImpactOfK {
        rounds_to_accuracy,
        winner_counts: config.winner_counts,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::impact_n::auction_game_statistics;

    #[test]
    fn payment_rises_and_score_falls_with_k() {
        // Theorem 3 / Fig. 10b. The payment effect is small relative to per-game noise, so
        // average enough games for the direction to be stable.
        let small = auction_game_statistics(40, 4, 16, 2).unwrap();
        let large = auction_game_statistics(40, 20, 16, 2).unwrap();
        assert!(
            large.0 >= small.0 - 0.05,
            "mean payment should not fall with K: {small:?} -> {large:?}"
        );
        assert!(
            large.1 <= small.1 + 0.05,
            "mean score should not rise with K: {small:?} -> {large:?}"
        );
    }

    #[test]
    fn quick_run_produces_both_panels() {
        let result = run(&ScenarioRunner::new(), &ImpactOfKConfig::quick()).unwrap();
        assert_eq!(result.rounds_to_accuracy.len(), 2);
        assert_eq!(result.sweep.len(), 3);
        assert!(result.payment_series().len() == 3 && result.score_series().len() == 3);
        assert!(result.to_table().to_markdown().contains("Impact of K"));
        assert_eq!(result.winner_counts, (2, 6));
    }

    #[test]
    fn paper_config_matches_figure_axes() {
        let c = ImpactOfKConfig::paper();
        assert_eq!(c.winner_counts, (5, 25));
        assert_eq!(c.sweep_values, vec![5, 10, 15, 20, 25, 30, 35]);
        assert_eq!(c.n, 100);
    }
}
