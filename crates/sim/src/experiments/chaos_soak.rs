//! The `chaos-soak` registry entry: the service-soak fleet with half its tenants running
//! under an active [`FaultPlan`] — injected bid-shard panics, work-task panics and stalls,
//! mid-round dropouts, and corrupted model updates — while the other half stays healthy.
//!
//! The soak asserts the full robustness contract in one run:
//!
//! * **Blast-radius zero** — every *healthy* job's interleaved history is bit-identical to
//!   its solo run (faulted neighbours on the same pool change nothing).
//! * **Recovery within budget** — every *faulted* job completes all its rounds: the
//!   watchdog retries each failed attempt (fresh fault draws, identical auction RNG), and
//!   the chaos preset's `faulty_attempts = 1` makes the first retry structurally clean.
//!   Faults, retries, and backoff appear as typed entries in the job's `RoundRecord`s.
//! * **Checkpoint = uninterrupted** — each job checkpointed mid-run, serialised to bytes,
//!   and restored onto a fresh service finishes with a history fingerprint identical to
//!   the solo run's.

use crate::error::SimError;
use crate::experiments::registry::ExperimentReport;
use crate::experiments::service_soak::{self, SoakConfig};
use crate::scenario::ScenarioRunner;
use crate::series::Table;
use fmore_fl::engine::RoundEngine;
use fmore_fl::service::{AuctionService, JobCheckpoint, JobSpec, ServiceConfig};
use fmore_fl::{FaultPlan, WatchdogSpec};
use fmore_numerics::rng::derive_seed;

/// Configuration of the chaos soak: a service-soak fleet plus the fault layer's knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The underlying fleet (jobs, rounds, populations, schemes).
    pub soak: SoakConfig,
    /// Dimension of the synthetic per-winner model updates every job aggregates (the
    /// corruption faults' target surface).
    pub update_dim: usize,
    /// Root seed of the fault streams; job `j` draws from `derive_seed(fault_seed, j)`.
    pub fault_seed: u64,
}

impl ChaosConfig {
    /// Sub-second configuration for tests, CI, and the golden suite.
    pub fn quick() -> Self {
        Self {
            soak: SoakConfig::quick(),
            update_dim: 8,
            fault_seed: 0xC4A0,
        }
    }

    /// The heavy soak: the eight-tenant paper fleet under the same fault rates.
    pub fn paper() -> Self {
        Self {
            soak: SoakConfig::paper(),
            update_dim: 32,
            fault_seed: 0xC4A0,
        }
    }
}

/// Whether fleet job `j` runs under an active fault plan (the odd half — the same half
/// that carries a deadline model, so stall charges land on a metered round clock).
fn faulted(j: usize) -> bool {
    j % 2 == 1
}

/// The watchdog every chaos tenant runs under. The 20 s simulated budget sits between a
/// clean round (≤ 10 s, the lenient deadline) and one injected 30 s stall, so a single
/// stall deterministically trips [`fmore_fl::FlError::RoundTimeout`] and exercises retry.
fn watchdog() -> WatchdogSpec {
    WatchdogSpec {
        round_budget_secs: 20.0,
        max_retries: 3,
        backoff_base_secs: 0.5,
        backoff_factor: 2.0,
    }
}

/// Builds the chaos fleet: the service-soak specs with updates + watchdog everywhere and a
/// [`FaultPlan::chaos`] on the odd half (whose names gain a `-chaos` suffix).
///
/// # Errors
///
/// Propagates population and solver construction failures.
pub fn job_specs(config: &ChaosConfig) -> Result<Vec<JobSpec>, SimError> {
    let mut specs = service_soak::job_specs(&config.soak)?;
    for (j, spec) in specs.iter_mut().enumerate() {
        spec.update_dim = config.update_dim;
        spec.watchdog = Some(watchdog());
        if faulted(j) {
            spec.faults = Some(FaultPlan::chaos(derive_seed(config.fault_seed, j as u64)));
            spec.name.push_str("-chaos");
        }
    }
    Ok(specs)
}

/// Runs `spec` for `rounds` rounds with a checkpoint/restore interruption at the halfway
/// point — checkpoint, serialise to bytes, decode, restore onto a *fresh* service — and
/// returns the final history fingerprint (to compare against the uninterrupted run's).
///
/// # Errors
///
/// Propagates service and checkpoint-codec failures.
fn interrupted_fingerprint(
    engine: &RoundEngine,
    spec: &JobSpec,
    rounds: usize,
) -> Result<u64, SimError> {
    let half = rounds / 2;
    let service = AuctionService::with_engine(ServiceConfig::default(), engine.clone());
    let id = service.admit(spec.clone())?;
    for _ in 0..half {
        let _ = service.run_round(id);
    }
    let bytes = service.checkpoint(id)?.to_bytes();
    let restored = JobCheckpoint::from_bytes(&bytes)?;
    let resumed = AuctionService::with_engine(ServiceConfig::default(), engine.clone());
    let rid = resumed.restore(spec.clone(), restored)?;
    for _ in half..rounds {
        let _ = resumed.run_round(rid);
    }
    Ok(resumed.close(rid)?.fingerprint())
}

/// One chaos soak: solo reference runs, the interleaved fleet on one shared service, and a
/// per-job checkpoint/restore leg, reported as one table with the three robustness verdicts
/// as columns. Any `NO` in a verdict column fails the run with a typed error.
///
/// # Errors
///
/// Propagates service failures, and fails when a healthy job diverges from solo, a faulted
/// job does not complete every round, or a checkpointed run diverges.
pub fn run(runner: &ScenarioRunner, config: &ChaosConfig) -> Result<ExperimentReport, SimError> {
    let engine = runner.engine();
    let specs = job_specs(config)?;
    let rounds = config.soak.rounds;
    let solo = service_soak::solo_fingerprints(&engine, &specs, rounds)?;

    // The interleaved fleet: every spec on one shared service, one driver thread per job
    // (the same request/drain rhythm as the service soak).
    let service = AuctionService::with_engine(
        ServiceConfig {
            max_jobs: config.soak.jobs,
            max_pending: 4,
        },
        engine.clone(),
    );
    let ids: Vec<_> = specs
        .iter()
        .map(|spec| service.admit(spec.clone()))
        .collect::<Result<_, _>>()?;
    std::thread::scope(|scope| -> Result<(), SimError> {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let service = &service;
                scope.spawn(move || -> Result<(), SimError> {
                    let mut remaining = rounds;
                    while remaining > 0 {
                        while remaining > 0 {
                            match service.request_round(id) {
                                Ok(()) => remaining -= 1,
                                Err(fmore_fl::FlError::Backpressure { .. }) => break,
                                Err(e) => return Err(e.into()),
                            }
                        }
                        service.run_pending(id)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload))?;
        }
        Ok(())
    })?;

    let mut table = Table::new(
        format!(
            "Chaos soak: {} tenants, fault plan on the odd half",
            config.soak.jobs
        ),
        &[
            "job",
            "faulted",
            "rounds",
            "retried rounds",
            "faults",
            "dropouts",
            "quarantined",
            "backoff s",
            "matches solo",
            "checkpoint ok",
        ],
    );
    for (j, (&id, spec)) in ids.iter().zip(&specs).enumerate() {
        let history = service.history(id)?;
        let completed = history.completed();
        let retried = history.rounds.iter().filter(|r| r.attempts > 1).count();
        let faults: usize = history.rounds.iter().map(|r| r.faults.len()).sum();
        let backoff: f64 = history.rounds.iter().map(|r| r.backoff_secs).sum();
        let (dropouts, quarantined) = history
            .rounds
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .fold((0usize, 0usize), |(d, q), s| {
                (d + s.dropouts, q + s.quarantined)
            });
        let matches = history.fingerprint() == solo[j];
        let checkpoint_ok = interrupted_fingerprint(&engine, spec, rounds)? == solo[j];
        table.push_row(&[
            spec.name.clone(),
            if faulted(j) { "yes" } else { "no" }.to_string(),
            completed.to_string(),
            retried.to_string(),
            faults.to_string(),
            dropouts.to_string(),
            quarantined.to_string(),
            format!("{backoff:.2}"),
            if matches { "yes" } else { "NO" }.to_string(),
            if checkpoint_ok { "yes" } else { "NO" }.to_string(),
        ]);

        let fail = |what: &str| {
            Err(SimError::Fl(fmore_fl::FlError::InvalidConfig(format!(
                "chaos soak: job {} {what}",
                spec.name
            ))))
        };
        if !matches {
            return fail("interleaved history diverged from its solo run");
        }
        if !checkpoint_ok {
            return fail("checkpoint/restore run diverged from the uninterrupted run");
        }
        if completed != rounds {
            return fail("did not recover every round within its retry budget");
        }
        if faulted(j) {
            if faults == 0 {
                return fail("ran under a chaos plan but recorded no faults");
            }
            for record in &history.rounds {
                if record.attempts > 1 {
                    if record.retry_errors.len() as u32 != record.attempts - 1 {
                        return fail("recorded retries without their typed errors");
                    }
                    if !record.retry_errors.iter().all(WatchdogSpec::retryable) {
                        return fail("retried a non-retryable error");
                    }
                }
            }
        } else if faults != 0 {
            return fail("is plan-free but recorded injected faults");
        }
    }
    Ok(ExperimentReport {
        name: "chaos-soak",
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_chaos_soak_is_deterministic_and_survives() {
        let runner = ScenarioRunner::with_threads(2);
        let a = run(&runner, &ChaosConfig::quick()).unwrap();
        let b = run(&runner, &ChaosConfig::quick()).unwrap();
        assert_eq!(a, b, "the chaos report is bit-stable");
        let md = a.to_markdown();
        assert!(md.contains("-chaos"), "faulted tenants are labelled");
        assert!(!md.contains("NO"), "every verdict column is green");
    }

    #[test]
    fn specs_decorate_the_fleet_and_fault_the_odd_half() {
        let config = ChaosConfig::quick();
        let specs = job_specs(&config).unwrap();
        assert_eq!(specs.len(), config.soak.jobs);
        for (j, spec) in specs.iter().enumerate() {
            assert_eq!(spec.update_dim, config.update_dim);
            assert!(spec.watchdog.is_some());
            assert_eq!(spec.faults.is_some(), faulted(j));
            assert_eq!(spec.name.ends_with("-chaos"), faulted(j));
        }
        // Faulted jobs draw from distinct fault streams.
        let seeds: std::collections::BTreeSet<_> = specs
            .iter()
            .filter_map(|s| s.faults.as_ref().map(|p| p.seed))
            .collect();
        assert_eq!(seeds.len(), specs.len() / 2);
    }

    #[test]
    fn chaos_rates_actually_fire_in_a_quick_fleet() {
        // Drive the first faulted tenant directly: the chaos preset's rates over a quick
        // fleet must actually exercise injection and the watchdog's retry path, so the
        // soak's green verdicts are not vacuous. (Deterministic: same seeds every run.)
        let config = ChaosConfig::quick();
        let spec = job_specs(&config).unwrap().into_iter().nth(1).unwrap();
        assert!(spec.faults.is_some());
        let engine = ScenarioRunner::with_threads(2).engine();
        let service = AuctionService::with_engine(ServiceConfig::default(), engine);
        let id = service.admit(spec).unwrap();
        for _ in 0..config.soak.rounds {
            let _ = service.run_round(id);
        }
        let history = service.close(id).unwrap();
        assert_eq!(
            history.completed(),
            config.soak.rounds,
            "every round recovered"
        );
        let faults: usize = history.rounds.iter().map(|r| r.faults.len()).sum();
        assert!(faults > 0, "the chaos plan injected nothing");
        assert!(
            history.rounds.iter().any(|r| r.attempts > 1),
            "the watchdog never retried"
        );
    }
}
