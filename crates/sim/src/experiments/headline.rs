//! The paper's headline claims (§I, §V, §VII):
//!
//! * simulations: FMore reduces training rounds by ~51.3% on average and improves model
//!   accuracy by ~28% (LSTM) compared with RandFL,
//! * cluster deployment: training time reduced by ~38.4% and accuracy improved by ~44.9%.
//!
//! This module computes the same quantities from reproduction runs so EXPERIMENTS.md can
//! report paper-vs-measured values side by side.

use crate::experiments::accuracy::AccuracyFigure;
use crate::experiments::cluster::ClusterFigure;
use crate::series::Table;

/// Relative reduction `(baseline − ours) / baseline`, as a percentage. Returns `None` when
/// the baseline is not positive.
pub fn relative_reduction_pct(ours: f64, baseline: f64) -> Option<f64> {
    if baseline <= 0.0 {
        return None;
    }
    Some((baseline - ours) / baseline * 100.0)
}

/// Relative improvement `(ours − baseline) / baseline`, as a percentage. Returns `None` when
/// the baseline is not positive.
pub fn relative_improvement_pct(ours: f64, baseline: f64) -> Option<f64> {
    if baseline <= 0.0 {
        return None;
    }
    Some((ours - baseline) / baseline * 100.0)
}

/// Headline metrics extracted from one accuracy figure (one task).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationHeadline {
    /// Task name.
    pub task: String,
    /// The accuracy target used for the round-reduction comparison.
    pub accuracy_target: f64,
    /// Rounds FMore needed to reach the target (if reached).
    pub fmore_rounds: Option<usize>,
    /// Rounds RandFL needed to reach the target (if reached).
    pub randfl_rounds: Option<usize>,
    /// Round reduction in percent (if both reached the target).
    pub round_reduction_pct: Option<f64>,
    /// Final-round accuracy improvement of FMore over RandFL, in percent.
    pub accuracy_improvement_pct: Option<f64>,
}

/// Computes the simulation headline numbers for one task figure.
///
/// `accuracy_target` should be the per-task threshold the paper uses (95% for MNIST-O, 84%
/// for MNIST-F, 50% for CIFAR-10, 46% for HPNews).
pub fn simulation_headline(figure: &AccuracyFigure, accuracy_target: f64) -> SimulationHeadline {
    let fmore = figure.curve("FMore");
    let randfl = figure.curve("RandFL");
    let fmore_rounds = fmore.and_then(|c| c.history.rounds_to_accuracy(accuracy_target));
    let randfl_rounds = randfl.and_then(|c| c.history.rounds_to_accuracy(accuracy_target));
    let round_reduction_pct = match (fmore_rounds, randfl_rounds) {
        (Some(f), Some(r)) => relative_reduction_pct(f as f64, r as f64),
        _ => None,
    };
    let accuracy_improvement_pct = match (fmore, randfl) {
        (Some(f), Some(r)) => {
            relative_improvement_pct(f.history.final_accuracy(), r.history.final_accuracy())
        }
        _ => None,
    };
    SimulationHeadline {
        task: figure.task.name().to_string(),
        accuracy_target,
        fmore_rounds,
        randfl_rounds,
        round_reduction_pct,
        accuracy_improvement_pct,
    }
}

/// Headline metrics extracted from the cluster figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterHeadline {
    /// The accuracy target used for the time comparison (50% for CIFAR-10 in the paper).
    pub accuracy_target: f64,
    /// Simulated seconds FMore needed to reach the target.
    pub fmore_secs: Option<f64>,
    /// Simulated seconds RandFL needed to reach the target.
    pub randfl_secs: Option<f64>,
    /// Training-time reduction in percent.
    pub time_reduction_pct: Option<f64>,
    /// Final-round accuracy improvement of FMore over RandFL, in percent.
    pub accuracy_improvement_pct: Option<f64>,
}

/// Computes the cluster headline numbers (Fig. 12–13 summary: −38.4% time, +44.9% accuracy
/// in the paper).
pub fn cluster_headline(figure: &ClusterFigure, accuracy_target: f64) -> ClusterHeadline {
    let fmore_secs = figure.time_to_accuracy("FMore", accuracy_target);
    let randfl_secs = figure.time_to_accuracy("RandFL", accuracy_target);
    let time_reduction_pct = match (fmore_secs, randfl_secs) {
        (Some(f), Some(r)) => relative_reduction_pct(f, r),
        _ => None,
    };
    let accuracy_improvement_pct = match (figure.curve("FMore"), figure.curve("RandFL")) {
        (Some(f), Some(r)) => {
            relative_improvement_pct(f.history.final_accuracy(), r.history.final_accuracy())
        }
        _ => None,
    };
    ClusterHeadline {
        accuracy_target,
        fmore_secs,
        randfl_secs,
        time_reduction_pct,
        accuracy_improvement_pct,
    }
}

/// Renders a set of simulation headlines plus the cluster headline as one Markdown table.
pub fn headline_table(
    simulations: &[SimulationHeadline],
    cluster: Option<&ClusterHeadline>,
) -> Table {
    let mut t = Table::new(
        "Headline metrics: FMore vs RandFL",
        &["experiment", "round/time reduction", "accuracy improvement"],
    );
    let fmt_pct = |v: Option<f64>| v.map_or("n/a".to_string(), |p| format!("{p:.1}%"));
    for s in simulations {
        t.push_row(&[
            format!(
                "simulation {} (target {:.0}%)",
                s.task,
                s.accuracy_target * 100.0
            ),
            fmt_pct(s.round_reduction_pct),
            fmt_pct(s.accuracy_improvement_pct),
        ]);
    }
    if let Some(c) = cluster {
        t.push_row(&[
            format!(
                "cluster CIFAR-10 (target {:.0}%)",
                c.accuracy_target * 100.0
            ),
            fmt_pct(c.time_reduction_pct),
            fmt_pct(c.accuracy_improvement_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::accuracy::{run as run_accuracy, AccuracyConfig};
    use crate::experiments::cluster::{run as run_cluster, ClusterExperimentConfig};
    use crate::scenario::ScenarioRunner;
    use fmore_ml::dataset::TaskKind;

    #[test]
    fn relative_helpers() {
        assert_eq!(relative_reduction_pct(10.0, 20.0), Some(50.0));
        assert!((relative_improvement_pct(0.6, 0.4).unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(relative_reduction_pct(1.0, 0.0), None);
        assert_eq!(relative_improvement_pct(1.0, -1.0), None);
    }

    #[test]
    fn simulation_headline_from_quick_run() {
        let figure = run_accuracy(
            &ScenarioRunner::new(),
            &AccuracyConfig::quick(TaskKind::MnistO),
        )
        .unwrap();
        let headline = simulation_headline(&figure, 0.3);
        assert_eq!(headline.task, "MNIST-O");
        assert_eq!(headline.accuracy_target, 0.3);
        // Accuracy improvement is computable whenever both curves exist.
        assert!(headline.accuracy_improvement_pct.is_some());
    }

    #[test]
    fn cluster_headline_from_quick_run() {
        let figure =
            run_cluster(&ScenarioRunner::new(), &ClusterExperimentConfig::quick()).unwrap();
        let headline = cluster_headline(&figure, 0.0);
        // Target 0.0 is reached in round 1 by both schemes.
        assert!(headline.fmore_secs.is_some());
        assert!(headline.randfl_secs.is_some());
        assert!(headline.time_reduction_pct.is_some());
        assert!(headline.accuracy_improvement_pct.is_some());
    }

    #[test]
    fn table_renders_all_rows() {
        let sim = SimulationHeadline {
            task: "CIFAR-10".into(),
            accuracy_target: 0.5,
            fmore_rounds: Some(8),
            randfl_rounds: Some(17),
            round_reduction_pct: relative_reduction_pct(8.0, 17.0),
            accuracy_improvement_pct: Some(28.0),
        };
        let cluster = ClusterHeadline {
            accuracy_target: 0.5,
            fmore_secs: Some(427.7),
            randfl_secs: Some(1552.7),
            time_reduction_pct: relative_reduction_pct(427.7, 1552.7),
            accuracy_improvement_pct: Some(44.9),
        };
        let md = headline_table(&[sim], Some(&cluster)).to_markdown();
        assert!(md.contains("simulation CIFAR-10"));
        assert!(md.contains("cluster CIFAR-10"));
        assert!(
            md.contains("52.9%"),
            "8 vs 17 rounds is a 52.9% reduction: {md}"
        );
        assert!(md.contains("44.9%"));
        // Missing values render as n/a.
        let incomplete = SimulationHeadline {
            task: "HPNews".into(),
            accuracy_target: 0.46,
            fmore_rounds: None,
            randfl_rounds: None,
            round_reduction_pct: None,
            accuracy_improvement_pct: None,
        };
        let md = headline_table(&[incomplete], None).to_markdown();
        assert!(md.contains("n/a"));
    }
}
