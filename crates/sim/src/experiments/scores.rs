//! Figure 8: the distribution of the scores of the nodes each scheme selects.
//!
//! FMore deliberately selects high-score nodes (lots of data, many categories, low cost);
//! RandFL selects uniformly; FixFL is stuck with whatever its fixed set offers. The paper
//! visualises this as the cumulative proportion of selected nodes per score bucket. Here the
//! same per-scheme winner-score samples are produced along with the score distribution of
//! the whole population.

use crate::error::SimError;
use crate::experiments::accuracy::AccuracyConfig;
use crate::scenario::{ScenarioRunner, ScenarioSpec};
use crate::series::{Series, Table};
use fmore_auction::{CobbDouglas, ScoringFunction};
use fmore_fl::selection::SelectionStrategy;
use fmore_numerics::stats::Histogram;

/// Winner-score samples of one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeScores {
    /// Scheme name.
    pub strategy: String,
    /// Quality score `s(q)` of every selected node over all rounds.
    pub winner_scores: Vec<f64>,
}

/// The reproduction of Fig. 8 for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreDistribution {
    /// Quality scores of the entire node population (the "Total" curve of Fig. 8).
    pub population_scores: Vec<f64>,
    /// Winner scores per scheme.
    pub schemes: Vec<SchemeScores>,
}

impl ScoreDistribution {
    /// Cumulative proportion of scores ≤ each bin edge, over `bins` equal-width bins — the
    /// format the paper plots.
    pub fn cumulative_proportions(&self, scores: &[f64], bins: usize) -> Series {
        if scores.is_empty() {
            return Series::new("empty", vec![], vec![]);
        }
        let lo = self
            .population_scores
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .population_scores
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if hi > lo {
            (lo, hi)
        } else {
            (lo - 0.5, lo + 0.5)
        };
        let mut hist = Histogram::new(lo, hi + 1e-9, bins.max(1));
        hist.extend(scores.iter().copied());
        let proportions = hist.proportions();
        let mut cumulative = Vec::with_capacity(proportions.len());
        let mut acc = 0.0;
        for p in proportions {
            acc += p;
            cumulative.push(acc);
        }
        Series::new("cumulative proportion", hist.bin_centers(), cumulative)
    }

    /// Mean winner score of a scheme (0 if absent).
    pub fn mean_winner_score(&self, strategy: &str) -> f64 {
        self.schemes
            .iter()
            .find(|s| s.strategy == strategy)
            .map_or(0.0, |s| fmore_numerics::stats::mean(&s.winner_scores))
    }

    /// Markdown table of mean/median winner score per scheme.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Winner score distribution (Fig. 8)",
            &["scheme", "mean score", "median score", "samples"],
        );
        let mut row = |name: &str, scores: &[f64]| {
            table.push_row(&[
                name.to_string(),
                format!("{:.3}", fmore_numerics::stats::mean(scores)),
                format!(
                    "{:.3}",
                    fmore_numerics::stats::percentile(scores, 50.0).unwrap_or(0.0)
                ),
                scores.len().to_string(),
            ]);
        };
        row("Total population", &self.population_scores);
        for scheme in &self.schemes {
            row(&scheme.strategy, &scheme.winner_scores);
        }
        table
    }
}

/// Computes the quality score `s(q1, q2)` of a winner from the information recorded in the
/// training history (data size and category count), using the simulator's scoring function.
fn winner_quality_score(
    scoring: &CobbDouglas,
    data_size: usize,
    categories: usize,
    max_data: f64,
    num_classes: usize,
) -> f64 {
    let q1 = (data_size as f64 / max_data).clamp(0.0, 1.0);
    let q2 = if num_classes > 0 {
        categories as f64 / num_classes as f64
    } else {
        0.0
    };
    scoring.value(&[q1, q2])
}

/// Reproduces Fig. 8: runs FMore, RandFL, and FixFL on the configured task and collects the
/// quality scores of every selected node, plus the score distribution of the whole
/// population.
///
/// # Errors
///
/// Propagates configuration and auction errors from the scenario engine.
pub fn run(
    runner: &ScenarioRunner,
    config: &AccuracyConfig,
) -> Result<ScoreDistribution, SimError> {
    let scoring =
        CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).expect("static scoring parameters are valid");
    let max_data = config.fl.partition.size_range.1 as f64;

    // Population scores: what every client could offer at full availability.
    let probe_spec = ScenarioSpec::new(
        "population probe",
        config.fl.clone(),
        SelectionStrategy::random(),
        0,
        config.seed,
    );
    let probe = runner.trainer(&probe_spec)?;
    let num_classes = 10;
    let population_scores: Vec<f64> = probe
        .clients()
        .iter()
        .map(|c| {
            winner_quality_score(
                &scoring,
                c.shard().size(),
                c.shard().categories,
                max_data,
                num_classes,
            )
        })
        .collect();

    // One scenario per scheme, run in parallel on the runner's pool (same seeds as the
    // former sequential loop, so histories are unchanged).
    let specs: Vec<ScenarioSpec> = [
        SelectionStrategy::fmore(),
        SelectionStrategy::random(),
        SelectionStrategy::fixed_first(config.fl.winners_per_round),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, strategy)| {
        ScenarioSpec::new(
            strategy.name(),
            config.fl.clone(),
            strategy,
            config.rounds,
            config.seed + 100 + i as u64,
        )
    })
    .collect();
    let mut schemes = Vec::new();
    for outcome in runner.run_all(&specs)? {
        let winner_scores: Vec<f64> = outcome
            .history
            .rounds
            .iter()
            .flat_map(|r| r.winners.iter())
            .map(|w| {
                winner_quality_score(&scoring, w.data_size, w.categories, max_data, num_classes)
            })
            .collect();
        schemes.push(SchemeScores {
            strategy: outcome.strategy,
            winner_scores,
        });
    }
    Ok(ScoreDistribution {
        population_scores,
        schemes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_ml::dataset::TaskKind;

    #[test]
    fn fmore_selects_higher_scores_than_random() {
        let config = AccuracyConfig::quick(TaskKind::MnistO);
        let dist = run(&ScenarioRunner::new(), &config).unwrap();
        assert_eq!(dist.schemes.len(), 3);
        let fmore = dist.mean_winner_score("FMore");
        let rand = dist.mean_winner_score("RandFL");
        assert!(
            fmore >= rand,
            "FMore mean winner score {fmore} should be at least RandFL's {rand}"
        );
        assert_eq!(dist.mean_winner_score("absent"), 0.0);
        assert!(!dist.population_scores.is_empty());
    }

    #[test]
    fn cumulative_proportions_reach_one() {
        let config = AccuracyConfig::quick(TaskKind::MnistO);
        let dist = run(&ScenarioRunner::new(), &config).unwrap();
        let series = dist.cumulative_proportions(&dist.population_scores, 8);
        assert_eq!(series.len(), 8);
        assert!((series.last().unwrap() - 1.0).abs() < 1e-9);
        // Monotone non-decreasing.
        assert!(series.ys.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        // Empty input yields an empty series.
        assert!(dist.cumulative_proportions(&[], 8).is_empty());
    }

    #[test]
    fn table_lists_population_and_all_schemes() {
        let config = AccuracyConfig::quick(TaskKind::MnistO);
        let dist = run(&ScenarioRunner::new(), &config).unwrap();
        let md = dist.to_table().to_markdown();
        assert!(md.contains("Total population"));
        assert!(md.contains("FMore"));
        assert!(md.contains("RandFL"));
        assert!(md.contains("FixFL"));
    }
}
