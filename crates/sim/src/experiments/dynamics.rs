//! Dynamic-MEC robustness experiments (beyond the paper's static figures).
//!
//! The paper argues (§I, §VI) that an incentive mechanism for MEC must hold up in a
//! *dynamic* environment — nodes join, leave, straggle, and drop mid-round — but evaluates
//! on a cluster where every selected winner finishes. These experiments run the
//! churn-capable cluster loop of [`fmore_mec::dynamics`] to quantify the robustness claims:
//!
//! * **dropout sweep** — final accuracy and time-to-accuracy for FMore vs RandFL as the
//!   per-winner dropout rate grows (does the auction's node quality cushion churn?),
//! * **churn curves** — the Figs. 12–13 accuracy/time comparison re-run under a moderate
//!   churn model,
//! * **waste sweep** — payment waste and deadline misses as the straggler rate grows (what
//!   does churn cost the aggregator in incentive spend?).
//!
//! Like every experiment, these are declarative specs handed to the shared
//! [`ScenarioRunner`]; all sweep points of a figure run in parallel on the worker pool and
//! results are bit-identical across pool sizes.

use crate::error::SimError;
use crate::scenario::{ClusterOutcome, ClusterScenarioSpec, ScenarioRunner};
use crate::series::Table;
use fmore_mec::cluster::{ClusterConfig, ClusterStrategy};
use fmore_mec::dynamics::{ChurnModel, DynamicsConfig};

/// Configuration of the dynamic-MEC experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsExperimentConfig {
    /// The base (static) cluster configuration; churn is attached per sweep point.
    pub cluster: ClusterConfig,
    /// Cluster rounds per scenario.
    pub rounds: usize,
    /// Per-winner dropout rates swept by the dropout experiment.
    pub dropout_rates: Vec<f64>,
    /// Per-winner straggler rates swept by the waste experiment.
    pub straggler_rates: Vec<f64>,
    /// Multiplicative slowdown applied to stragglers.
    pub straggler_slowdown: f64,
    /// Server deadline per delivery wave, in simulated seconds.
    pub deadline_secs: f64,
    /// Accuracy target for the time-to-accuracy column.
    pub accuracy_target: f64,
    /// Base seed (every scenario of a figure shares it, so schemes face the same world).
    pub seed: u64,
}

impl DynamicsExperimentConfig {
    /// Quick configuration for tests and CI: a 12-node cluster, slightly larger than
    /// `ClusterConfig::fast_test` so the accuracy signal rises above the evaluation noise of
    /// a tiny test set, still finishing in a few seconds.
    pub fn quick() -> Self {
        let mut cluster = ClusterConfig::fast_test();
        cluster.nodes = 12;
        cluster.winners_per_round = 4;
        cluster.fl.clients = 12;
        cluster.fl.winners_per_round = 4;
        cluster.fl.partition.clients = 12;
        cluster.fl.train_samples = 1_200;
        cluster.fl.test_samples = 400;
        Self {
            cluster,
            rounds: 4,
            dropout_rates: vec![0.0, 0.2, 0.5],
            straggler_rates: vec![0.0, 0.4, 0.8],
            straggler_slowdown: 4.0,
            deadline_secs: 60.0,
            accuracy_target: 0.3,
            seed: 45,
        }
    }

    /// The paper-scale configuration: the 31-node cluster over 20 rounds.
    pub fn paper() -> Self {
        Self {
            cluster: ClusterConfig::paper_cluster(),
            rounds: 20,
            dropout_rates: vec![0.0, 0.1, 0.2, 0.3, 0.4],
            straggler_rates: vec![0.0, 0.1, 0.2, 0.3, 0.4],
            straggler_slowdown: 3.0,
            deadline_secs: 90.0,
            accuracy_target: 0.5,
            seed: 41,
        }
    }

    /// The dynamics attached to one sweep point.
    fn dynamics(&self, dropout: f64, straggler: f64) -> DynamicsConfig {
        DynamicsConfig::new(
            ChurnModel::stable()
                .with_dropout(dropout)
                .with_stragglers(straggler, self.straggler_slowdown),
        )
        .with_deadline(self.deadline_secs)
    }

    fn spec(
        &self,
        label: String,
        strategy: ClusterStrategy,
        dropout: f64,
        straggler: f64,
    ) -> ClusterScenarioSpec {
        ClusterScenarioSpec::new(
            label,
            self.cluster.clone(),
            strategy,
            self.rounds,
            self.seed,
        )
        .with_dynamics(self.dynamics(dropout, straggler))
    }
}

/// One point of the dropout sweep: both schemes under the same dropout rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DropoutPoint {
    /// The per-winner dropout rate.
    pub rate: f64,
    /// FMore's run at this rate.
    pub fmore: ClusterOutcome,
    /// RandFL's run at this rate.
    pub randfl: ClusterOutcome,
}

/// The dropout sweep: FMore vs RandFL as the dropout rate grows.
#[derive(Debug, Clone, PartialEq)]
pub struct DropoutSweep {
    /// One point per swept rate, in rate order.
    pub points: Vec<DropoutPoint>,
    /// The accuracy target of the time-to-accuracy column.
    pub accuracy_target: f64,
}

impl DropoutSweep {
    /// Markdown table: per rate, each scheme's final accuracy, completion rate, and
    /// time-to-target.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Dropout sweep: graceful degradation under churn (dynamic MEC)",
            &[
                "dropout rate",
                "FMore final acc",
                "RandFL final acc",
                "FMore completion",
                "RandFL completion",
                "FMore t-to-acc (s)",
                "RandFL t-to-acc (s)",
            ],
        );
        let fmt_time = |t: Option<f64>| t.map_or("-".to_string(), |t| format!("{t:.1}"));
        for p in &self.points {
            table.push_row(&[
                format!("{:.2}", p.rate),
                format!("{:.4}", p.fmore.history.final_accuracy()),
                format!("{:.4}", p.randfl.history.final_accuracy()),
                format!("{:.3}", p.fmore.history.mean_completion_rate()),
                format!("{:.3}", p.randfl.history.mean_completion_rate()),
                fmt_time(p.fmore.history.time_to_accuracy(self.accuracy_target)),
                fmt_time(p.randfl.history.time_to_accuracy(self.accuracy_target)),
            ]);
        }
        table
    }
}

/// Runs the dropout sweep: every (rate, scheme) scenario in parallel on the runner's pool.
///
/// # Errors
///
/// Propagates cluster construction and training failures.
pub fn run_dropout_sweep(
    runner: &ScenarioRunner,
    config: &DynamicsExperimentConfig,
) -> Result<DropoutSweep, SimError> {
    let mut specs = Vec::new();
    for &rate in &config.dropout_rates {
        for strategy in [ClusterStrategy::FMore, ClusterStrategy::RandFL] {
            specs.push(config.spec(
                format!("{} dropout={rate:.2}", strategy.name()),
                strategy,
                rate,
                0.0,
            ));
        }
    }
    let mut outcomes = runner.run_clusters(&specs)?.into_iter();
    let points = config
        .dropout_rates
        .iter()
        .map(|&rate| DropoutPoint {
            rate,
            fmore: outcomes.next().expect("one FMore outcome per rate"),
            randfl: outcomes.next().expect("one RandFL outcome per rate"),
        })
        .collect();
    Ok(DropoutSweep {
        points,
        accuracy_target: config.accuracy_target,
    })
}

/// The Figs. 12–13 comparison re-run under a moderate churn model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnCurves {
    /// One outcome per scheme, FMore first.
    pub outcomes: Vec<ClusterOutcome>,
    /// The accuracy target of the time-to-accuracy summary row.
    pub accuracy_target: f64,
}

impl ChurnCurves {
    /// Markdown table: per-round accuracy and cumulative time of every scheme, plus summary
    /// rows with the churn accounting and each scheme's time to the accuracy target.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["round".to_string()];
        for o in &self.outcomes {
            headers.push(format!("{} accuracy", o.strategy));
            headers.push(format!("{} time (s)", o.strategy));
        }
        let mut table = Table {
            title: "Cluster comparison under churn: accuracy and training time (dynamic MEC)"
                .to_string(),
            headers,
            rows: Vec::new(),
        };
        let rounds = self
            .outcomes
            .iter()
            .map(|o| o.history.rounds.len())
            .max()
            .unwrap_or(0);
        for r in 0..rounds {
            let mut row = vec![(r + 1).to_string()];
            for o in &self.outcomes {
                let acc = o
                    .history
                    .rounds
                    .get(r)
                    .map_or(f64::NAN, |x| x.learning.accuracy);
                let time = o
                    .history
                    .rounds
                    .get(r)
                    .map_or(f64::NAN, |x| x.cumulative_secs);
                row.push(format!("{acc:.4}"));
                row.push(format!("{time:.1}"));
            }
            table.rows.push(row);
        }
        let mut summary = vec!["dropouts/replacements".to_string()];
        for o in &self.outcomes {
            summary.push(format!("{}", o.history.total_dropouts()));
            summary.push(format!("{}", o.history.total_replacements()));
        }
        table.rows.push(summary);
        let mut target_row = vec![format!("t-to-acc {:.2} (s)", self.accuracy_target)];
        for o in &self.outcomes {
            let t = o
                .history
                .time_to_accuracy(self.accuracy_target)
                .map_or("-".to_string(), |t| format!("{t:.1}"));
            target_row.push(t);
            target_row.push(String::new());
        }
        table.rows.push(target_row);
        table
    }
}

/// Runs the churn-curve comparison: both schemes under the same moderate churn model.
///
/// # Errors
///
/// Propagates cluster construction and training failures.
pub fn run_churn_curves(
    runner: &ScenarioRunner,
    config: &DynamicsExperimentConfig,
) -> Result<ChurnCurves, SimError> {
    let churn = ChurnModel::edge_default().with_stragglers(0.2, config.straggler_slowdown);
    let dynamics = DynamicsConfig::new(churn).with_deadline(config.deadline_secs);
    let specs: Vec<ClusterScenarioSpec> = [ClusterStrategy::FMore, ClusterStrategy::RandFL]
        .into_iter()
        .map(|strategy| {
            ClusterScenarioSpec::new(
                format!("{} under churn", strategy.name()),
                config.cluster.clone(),
                strategy,
                config.rounds,
                config.seed,
            )
            .with_dynamics(dynamics)
        })
        .collect();
    Ok(ChurnCurves {
        outcomes: runner.run_clusters(&specs)?,
        accuracy_target: config.accuracy_target,
    })
}

/// One point of the straggler/waste sweep (FMore only — RandFL pays nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct WastePoint {
    /// The per-winner straggler rate.
    pub rate: f64,
    /// FMore's run at this rate.
    pub outcome: ClusterOutcome,
}

/// The straggler sweep: what churn costs the aggregator in wasted incentive spend.
#[derive(Debug, Clone, PartialEq)]
pub struct WasteSweep {
    /// One point per swept rate, in rate order.
    pub points: Vec<WastePoint>,
}

impl WasteSweep {
    /// Markdown table: per rate, the useful and wasted payment and the churn counters.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Straggler sweep: payment waste under deadline pressure (dynamic MEC)",
            &[
                "straggler rate",
                "useful payment",
                "wasted payment",
                "stragglers",
                "deadline misses",
                "completion",
            ],
        );
        for p in &self.points {
            let h = &p.outcome.history;
            let useful: f64 = h.rounds.iter().map(|r| r.learning.total_payment()).sum();
            table.push_row(&[
                format!("{:.2}", p.rate),
                format!("{useful:.3}"),
                format!("{:.3}", h.total_wasted_payment()),
                format!("{}", h.total_stragglers()),
                format!("{}", h.total_deadline_misses()),
                format!("{:.3}", h.mean_completion_rate()),
            ]);
        }
        table
    }
}

/// Runs the straggler/waste sweep for FMore.
///
/// # Errors
///
/// Propagates cluster construction and training failures.
pub fn run_waste_sweep(
    runner: &ScenarioRunner,
    config: &DynamicsExperimentConfig,
) -> Result<WasteSweep, SimError> {
    let specs: Vec<ClusterScenarioSpec> = config
        .straggler_rates
        .iter()
        .map(|&rate| {
            config.spec(
                format!("FMore stragglers={rate:.2}"),
                ClusterStrategy::FMore,
                0.0,
                rate,
            )
        })
        .collect();
    let outcomes = runner.run_clusters(&specs)?;
    Ok(WasteSweep {
        points: config
            .straggler_rates
            .iter()
            .zip(outcomes)
            .map(|(&rate, outcome)| WastePoint { rate, outcome })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_sweep_compares_both_schemes_per_rate() {
        let config = DynamicsExperimentConfig::quick();
        let sweep = run_dropout_sweep(&ScenarioRunner::new(), &config).unwrap();
        assert_eq!(sweep.points.len(), config.dropout_rates.len());
        for p in &sweep.points {
            assert_eq!(p.fmore.strategy, "FMore");
            assert_eq!(p.randfl.strategy, "RandFL");
            assert_eq!(p.fmore.history.rounds.len(), config.rounds);
        }
        // Zero dropout completes everything; heavy dropout does not.
        assert_eq!(sweep.points[0].fmore.history.total_dropouts(), 0);
        assert!((sweep.points[0].fmore.history.mean_completion_rate() - 1.0).abs() < 1e-12);
        let heavy = sweep.points.last().unwrap();
        assert!(heavy.fmore.history.total_dropouts() > 0);
        let md = sweep.to_table().to_markdown();
        assert!(md.contains("FMore final acc") && md.contains("0.50"));
    }

    #[test]
    fn fmore_degrades_more_gracefully_than_randfl_under_dropout() {
        // The acceptance criterion of the dynamics subsystem: at every swept dropout rate
        // FMore reaches at least RandFL's final accuracy, and whenever RandFL reaches the
        // accuracy target at all, FMore reaches it no later in simulated time.
        let config = DynamicsExperimentConfig::quick();
        let sweep = run_dropout_sweep(&ScenarioRunner::new(), &config).unwrap();
        for p in &sweep.points {
            assert!(
                p.fmore.history.final_accuracy() >= p.randfl.history.final_accuracy(),
                "FMore {:.4} must not fall below RandFL {:.4} at dropout {:.2}",
                p.fmore.history.final_accuracy(),
                p.randfl.history.final_accuracy(),
                p.rate
            );
            if let Some(randfl_t) = p.randfl.history.time_to_accuracy(config.accuracy_target) {
                let fmore_t = p
                    .fmore
                    .history
                    .time_to_accuracy(config.accuracy_target)
                    .expect("FMore reaches any target RandFL reaches");
                assert!(
                    fmore_t <= randfl_t,
                    "dropout {:.2}: FMore time-to-accuracy {fmore_t:.1}s must not exceed \
                     RandFL's {randfl_t:.1}s",
                    p.rate
                );
            }
        }
    }

    #[test]
    fn churn_curves_report_both_schemes_and_accounting() {
        let config = DynamicsExperimentConfig::quick();
        let curves = run_churn_curves(&ScenarioRunner::new(), &config).unwrap();
        assert_eq!(curves.outcomes.len(), 2);
        assert_eq!(curves.outcomes[0].strategy, "FMore");
        assert_eq!(curves.outcomes[1].strategy, "RandFL");
        let md = curves.to_table().to_markdown();
        assert!(md.contains("FMore accuracy") && md.contains("dropouts/replacements"));
        assert!(
            md.contains("t-to-acc 0.30"),
            "summary must report time to the accuracy target"
        );
    }

    #[test]
    fn waste_sweep_grows_with_the_straggler_rate() {
        let config = DynamicsExperimentConfig::quick();
        let sweep = run_waste_sweep(&ScenarioRunner::new(), &config).unwrap();
        assert_eq!(sweep.points.len(), config.straggler_rates.len());
        // No stragglers, no waste.
        assert_eq!(sweep.points[0].outcome.history.total_wasted_payment(), 0.0);
        assert_eq!(sweep.points[0].outcome.history.total_stragglers(), 0);
        // The heaviest rate produces straggler events.
        let heavy = sweep.points.last().unwrap();
        assert!(heavy.outcome.history.total_stragglers() > 0);
        assert!(
            heavy.outcome.history.total_stragglers()
                >= sweep.points[0].outcome.history.total_stragglers()
        );
        let md = sweep.to_table().to_markdown();
        assert!(md.contains("wasted payment"));
    }

    #[test]
    fn paper_config_scales_up_the_quick_one() {
        let q = DynamicsExperimentConfig::quick();
        let p = DynamicsExperimentConfig::paper();
        assert!(p.rounds > q.rounds);
        assert_eq!(p.cluster.nodes, 31);
        assert!(p.dropout_rates.len() >= q.dropout_rates.len());
    }
}
