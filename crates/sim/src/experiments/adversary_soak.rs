//! The `adversary-soak` registry entry: Byzantine bidders inside the always-on service.
//!
//! Two legs, one report:
//!
//! * **Convergence study** — a self-contained descent toward a known optimum with ~30 % of
//!   the members Byzantine (seeded sign-flips, 25× scaled gradients, free-riding zero
//!   updates). Every [`AggregationRule`] aggregates the same poisoned batches; the robust
//!   rules must finish within 5 accuracy points of the clean run while plain FedAvg
//!   degrades by more than 5 points under the identical attack.
//! * **Fleet with a reputation loop** — the service-soak fleet with an
//!   [`AdversaryPlan::byzantine`] on the odd half of its tenants: untruthful bids
//!   (overbids, predatory underbids, quality misreports, a seeded cartel) plus poisoned
//!   updates, screened by per-job robust rules whose quarantine verdicts feed a
//!   [`fmore_fl::ReputationSpec`] ledger back into bid selection. The soak asserts that
//!   every tenant's interleaved history is bit-identical to its solo run, that the
//!   adversarial jobs actually quarantine something, and that the reputation loop drives
//!   the adversarial win-rate down from the early to the late half of the run.
//!
//! Everything is a pure function of the committed seeds: both legs replay bit-for-bit at
//! any pool width, so the verdict columns are stable across machines and runs.

use crate::error::SimError;
use crate::experiments::registry::ExperimentReport;
use crate::experiments::service_soak::{self, SoakConfig};
use crate::scenario::ScenarioRunner;
use crate::series::Table;
use fmore_fl::service::{AuctionService, JobSpec, ServiceConfig};
use fmore_fl::{
    AdversaryClock, AdversaryPlan, AggregationRule, AggregationScratch, CoordinateMedian, FedAvg,
    Krum, MedianNormScreen, ReputationSpec, ScreenPolicy, TrimmedMean,
};
use fmore_numerics::rng::derive_seed;
use std::sync::Arc;

/// Configuration of the adversary soak: the convergence study's shape plus the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryConfig {
    /// The underlying fleet (jobs, rounds, populations, schemes).
    pub soak: SoakConfig,
    /// Dimension of the synthetic per-winner model updates (the poisons' target surface).
    pub update_dim: usize,
    /// Members of the convergence study's aggregation panel.
    pub panel: usize,
    /// Rounds of descent in the convergence study.
    pub descent_rounds: usize,
    /// Root seed of the adversary streams; job `j` draws from
    /// `derive_seed(adversary_seed, j)`.
    pub adversary_seed: u64,
}

impl AdversaryConfig {
    /// Sub-second configuration for tests, CI, and the golden suite.
    pub fn quick() -> Self {
        Self {
            soak: SoakConfig {
                // The reputation loop only bites when a caught node would otherwise
                // re-win: a small bidder pool (repeat offenders dominate the book) and
                // more rounds than the plain service soak (time to learn who poisons).
                population: 64,
                shard_size: 32,
                rounds: 8,
                ..SoakConfig::quick()
            },
            update_dim: 8,
            panel: 10,
            descent_rounds: 20,
            adversary_seed: 0xADE7,
        }
    }

    /// The heavy soak: the eight-tenant paper fleet under the same adversary rates.
    pub fn paper() -> Self {
        Self {
            soak: SoakConfig::paper(),
            update_dim: 32,
            panel: 16,
            descent_rounds: 40,
            adversary_seed: 0xADE7,
        }
    }
}

/// Whether fleet job `j` runs under an active adversary plan (the odd half, mirroring the
/// chaos soak's layout so healthy/adversarial tenants alternate on the shared pool).
fn adversarial(j: usize) -> bool {
    j % 2 == 1
}

/// The robust rule assigned to adversarial fleet job `j` — cycled so one soak covers every
/// distance-screening backend against live bid distortion and update poisoning.
fn fleet_rule(j: usize) -> Arc<dyn AggregationRule> {
    match (j / 2) % 3 {
        0 => Arc::new(CoordinateMedian::default()),
        1 => Arc::new(TrimmedMean::new(2)),
        _ => Arc::new(Krum::new(2)),
    }
}

/// Builds the adversary fleet: the service-soak specs with synthetic updates everywhere
/// and, on the odd half, a Byzantine adversary plan + reputation ledger + robust
/// aggregation (whose names gain an `-adv` suffix).
///
/// # Errors
///
/// Propagates population and solver construction failures.
pub fn job_specs(config: &AdversaryConfig) -> Result<Vec<JobSpec>, SimError> {
    let mut specs = service_soak::job_specs(&config.soak)?;
    for (j, spec) in specs.iter_mut().enumerate() {
        spec.update_dim = config.update_dim;
        if adversarial(j) {
            spec.adversaries = Some(AdversaryPlan::byzantine(derive_seed(
                config.adversary_seed,
                j as u64,
            )));
            spec.reputation = Some(ReputationSpec::strict());
            spec.aggregation = fleet_rule(j);
            spec.name.push_str("-adv");
        }
    }
    Ok(specs)
}

/// A deterministic unit draw for the convergence study's honest gradient noise.
fn unit(seed: u64, round: u64, member: u64, coord: u64) -> f64 {
    let h = derive_seed(
        derive_seed(derive_seed(seed, round), member.wrapping_add(1)),
        coord.wrapping_add(1),
    );
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One descent curve: `descent_rounds` rounds of noisy steps toward the all-threes optimum,
/// aggregated by `rule`, with `plan`'s seeded members poisoning their updates. Returns the
/// final accuracy (100 at the optimum, 0 at or beyond the start) and the total quarantines.
fn descend(
    config: &AdversaryConfig,
    rule: &dyn AggregationRule,
    plan: &AdversaryPlan,
) -> (f64, usize) {
    const DIM: usize = 16;
    const LR: f64 = 0.3;
    let clock = AdversaryClock::new(plan, 0x5EED);
    let target = vec![3.0; DIM];
    let mut w = [0.0; DIM];
    let start_dist: f64 = target.iter().map(|t| t * t).sum::<f64>().sqrt();
    let mut scratch = AggregationScratch::new();
    let mut out = Vec::new();
    let mut quarantined = 0;
    for round in 1..=config.descent_rounds as u64 {
        let updates: Vec<Vec<f64>> = (0..config.panel as u64)
            .map(|member| {
                let mut params: Vec<f64> = (0..DIM)
                    .map(|d| {
                        let noise = (unit(plan.seed, round, member, d as u64) - 0.5) * 0.02;
                        w[d] + LR * (target[d] - w[d]) + noise
                    })
                    .collect();
                if let Some(poison) = clock.update_poison(plan, round, member) {
                    poison.apply(plan, &mut params);
                }
                params
            })
            .collect();
        let borrowed: Vec<(&[f64], f64)> = updates.iter().map(|u| (u.as_slice(), 1.0)).collect();
        // A fully quarantined round (the Err arm) publishes nothing: the model carries
        // over, exactly as the service's retry path leaves the global model untouched.
        if let Ok(screened) = rule.aggregate_with(&borrowed, &mut out, &mut scratch) {
            quarantined += screened.quarantined.len();
            if !out.is_empty() {
                w.copy_from_slice(&out);
            }
        }
    }
    let dist: f64 = w
        .iter()
        .zip(&target)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let accuracy = 100.0 * (1.0 - (dist / start_dist).min(1.0));
    (accuracy, quarantined)
}

/// The convergence study's aggregation panel: every rule the crate ships, with the three
/// distance-screening backends flagged as the ones the ≤ 5-point verdict gates on. The
/// median-norm screen is weight- and direction-blind (a sign-flipped update keeps its
/// norm), so it rides along unjudged — the table still shows how far it gets.
fn panel() -> Vec<(Arc<dyn AggregationRule>, bool)> {
    vec![
        (Arc::new(FedAvg), false),
        (Arc::new(MedianNormScreen(ScreenPolicy::default())), false),
        (Arc::new(CoordinateMedian::default()), true),
        (Arc::new(TrimmedMean::new(3)), true),
        (Arc::new(Krum::new(3)), true),
    ]
}

/// The adversarial winner share of one completed round, recomputed from the committed
/// seeds: membership is a pure function of `(plan seed ⊕ job seed, node)`.
fn adversarial_wins(
    clock: &AdversaryClock,
    plan: &AdversaryPlan,
    summary: &fmore_fl::service::RoundSummary,
) -> usize {
    summary
        .winners
        .iter()
        .filter(|w| clock.is_adversary(plan, w.node.0))
        .count()
}

/// One adversary soak: the convergence panel, then the interleaved fleet with solo
/// reference runs, reported as two tables. Any `NO` in a verdict column fails the run with
/// a typed error.
///
/// # Errors
///
/// Propagates service failures, and fails when a robust rule drifts more than 5 points
/// from clean, FedAvg fails to degrade under attack, any tenant diverges from its solo
/// run, an adversarial job never quarantines, or the adversarial win-rate fails to fall.
pub fn run(
    runner: &ScenarioRunner,
    config: &AdversaryConfig,
) -> Result<ExperimentReport, SimError> {
    let fail = |what: String| Err(SimError::Fl(fmore_fl::FlError::InvalidConfig(what)));

    // Leg 1: the convergence study. Clean reference = FedAvg with an all-honest plan.
    let honest = AdversaryPlan::honest(0xBEE5);
    let attack = AdversaryPlan::byzantine(0xBEE5);
    let (clean, _) = descend(config, &FedAvg, &honest);
    let mut convergence = Table::new(
        format!(
            "Byzantine convergence: {}-member panel, {} rounds, ~30% poisoned",
            config.panel, config.descent_rounds
        ),
        &[
            "rule",
            "clean acc",
            "attacked acc",
            "gap",
            "quarantined",
            "verdict",
        ],
    );
    for (rule, judged) in panel() {
        let (attacked, quarantined) = descend(config, rule.as_ref(), &attack);
        let gap = clean - attacked;
        let verdict = if judged {
            if gap <= 5.0 {
                "robust"
            } else {
                "NO"
            }
        } else if rule.name() == "fedavg" {
            if gap > 5.0 {
                "degrades"
            } else {
                "NO"
            }
        } else {
            "unjudged"
        };
        convergence.push_row(&[
            rule.name().to_string(),
            format!("{clean:.1}"),
            format!("{attacked:.1}"),
            format!("{gap:.1}"),
            quarantined.to_string(),
            verdict.to_string(),
        ]);
        if judged && gap > 5.0 {
            return fail(format!(
                "adversary soak: rule {} drifted {gap:.1} points from clean (> 5)",
                rule.name()
            ));
        }
        if rule.name() == "fedavg" && gap <= 5.0 {
            return fail(format!(
                "adversary soak: plain FedAvg lost only {gap:.1} points under attack — \
                 the poison stream is vacuous"
            ));
        }
    }

    // Leg 2: the fleet. Solo reference runs, then every spec interleaved on one service.
    let engine = runner.engine();
    let specs = job_specs(config)?;
    let rounds = config.soak.rounds;
    let solo = service_soak::solo_fingerprints(&engine, &specs, rounds)?;
    let service = AuctionService::with_engine(
        ServiceConfig {
            max_jobs: config.soak.jobs,
            max_pending: 4,
        },
        engine,
    );
    let ids: Vec<_> = specs
        .iter()
        .map(|spec| service.admit(spec.clone()))
        .collect::<Result<_, _>>()?;
    std::thread::scope(|scope| -> Result<(), SimError> {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let service = &service;
                scope.spawn(move || -> Result<(), SimError> {
                    let mut remaining = rounds;
                    while remaining > 0 {
                        while remaining > 0 {
                            match service.request_round(id) {
                                Ok(()) => remaining -= 1,
                                Err(fmore_fl::FlError::Backpressure { .. }) => break,
                                Err(e) => return Err(e.into()),
                            }
                        }
                        service.run_pending(id)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload))?;
        }
        Ok(())
    })?;

    let mut fleet = Table::new(
        format!(
            "Adversary soak: {} tenants, Byzantine plan + reputation on the odd half",
            config.soak.jobs
        ),
        &[
            "job",
            "rule",
            "adversarial",
            "rounds",
            "quarantined",
            "adv wins early",
            "adv wins late",
            "matches solo",
        ],
    );
    let half = rounds / 2;
    let (mut early_total, mut late_total) = (0usize, 0usize);
    let mut fleet_quarantined = 0usize;
    for (j, (&id, spec)) in ids.iter().zip(&specs).enumerate() {
        let history = service.history(id)?;
        let completed = history.completed();
        let quarantined: usize = history
            .rounds
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|s| s.quarantined)
            .sum();
        let (mut early, mut late) = (0usize, 0usize);
        if let Some(plan) = &spec.adversaries {
            let clock = AdversaryClock::new(plan, spec.seed);
            for record in &history.rounds {
                if let Ok(summary) = &record.outcome {
                    let wins = adversarial_wins(&clock, plan, summary);
                    if (record.round as usize) <= half {
                        early += wins;
                    } else {
                        late += wins;
                    }
                }
            }
            early_total += early;
            late_total += late;
            fleet_quarantined += quarantined;
        }
        let matches = history.fingerprint() == solo[j];
        fleet.push_row(&[
            spec.name.clone(),
            spec.aggregation.name().to_string(),
            if adversarial(j) { "yes" } else { "no" }.to_string(),
            completed.to_string(),
            quarantined.to_string(),
            early.to_string(),
            late.to_string(),
            if matches { "yes" } else { "NO" }.to_string(),
        ]);
        if !matches {
            return fail(format!(
                "adversary soak: job {} interleaved history diverged from its solo run",
                spec.name
            ));
        }
        if completed != rounds {
            return fail(format!(
                "adversary soak: job {} completed {completed}/{rounds} rounds",
                spec.name
            ));
        }
        if !adversarial(j) && quarantined != 0 {
            return fail(format!(
                "adversary soak: healthy job {} quarantined {quarantined} updates",
                spec.name
            ));
        }
    }
    if fleet_quarantined == 0 {
        return fail("adversary soak: no adversarial job quarantined anything".to_string());
    }
    if late_total >= early_total {
        return fail(format!(
            "adversary soak: adversarial wins did not fall ({early_total} early vs \
             {late_total} late) — the reputation loop is not biting"
        ));
    }

    Ok(ExperimentReport {
        name: "adversary-soak",
        tables: vec![convergence, fleet],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_adversary_soak_is_deterministic_and_green() {
        let runner = ScenarioRunner::with_threads(2);
        let a = run(&runner, &AdversaryConfig::quick()).unwrap();
        let b = run(&runner, &AdversaryConfig::quick()).unwrap();
        assert_eq!(a, b, "the adversary report is bit-stable");
        let md = a.to_markdown();
        assert!(md.contains("-adv"), "adversarial tenants are labelled");
        assert!(md.contains("robust"), "robust verdicts are rendered");
        assert!(md.contains("degrades"), "the FedAvg contrast is rendered");
        assert!(!md.contains("NO"), "every verdict column is green");
    }

    #[test]
    fn specs_decorate_the_fleet_on_the_odd_half() {
        let config = AdversaryConfig::quick();
        let specs = job_specs(&config).unwrap();
        assert_eq!(specs.len(), config.soak.jobs);
        for (j, spec) in specs.iter().enumerate() {
            assert_eq!(spec.update_dim, config.update_dim);
            assert_eq!(spec.adversaries.is_some(), adversarial(j));
            assert_eq!(spec.reputation.is_some(), adversarial(j));
            assert_eq!(spec.name.ends_with("-adv"), adversarial(j));
            if adversarial(j) {
                assert_ne!(spec.aggregation.name(), "median-norm");
            }
        }
        // Adversarial jobs draw from distinct seed streams.
        let seeds: std::collections::BTreeSet<_> = specs
            .iter()
            .filter_map(|s| s.adversaries.as_ref().map(|p| p.seed))
            .collect();
        assert_eq!(seeds.len(), specs.len() / 2);
    }

    #[test]
    fn descent_attack_actually_poisons_the_panel() {
        // The committed seeds must mark a real (non-empty, non-total) Byzantine minority,
        // so the convergence verdicts are not vacuous.
        let config = AdversaryConfig::quick();
        let attack = AdversaryPlan::byzantine(0xBEE5);
        let clock = AdversaryClock::new(&attack, 0x5EED);
        let byzantine = (0..config.panel as u64)
            .filter(|&m| clock.is_adversary(&attack, m))
            .count();
        assert!(byzantine > 0, "no panel member is Byzantine");
        assert!(
            byzantine * 2 < config.panel,
            "the Byzantine minority ({byzantine}/{}) must stay a minority",
            config.panel
        );
    }
}
