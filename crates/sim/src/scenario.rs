//! The unified scenario engine: declarative specs plus a pooled runner.
//!
//! A **scenario** is a data description of one training run — task, selection strategy,
//! round budget, seed — with no loop of its own. The [`ScenarioRunner`] executes scenarios
//! on the shared worker pool of [`fmore_fl::engine`]: independent scenarios (the sweep points
//! of a figure, the three schemes of an accuracy comparison) run in parallel, while each
//! scenario's own local training fans out on the same pool (nested fan-outs degrade to
//! inline execution inside pool workers, so the pool never deadlocks and determinism is
//! preserved).
//!
//! Every experiment module in [`crate::experiments`] is a thin presentation layer over this
//! engine: it declares specs, hands them to a runner, and formats the histories that come
//! back. Adding a new scenario — another scheme, another sweep axis, another task — is a data
//! change here, not a new copy of the round loop.

use crate::error::SimError;
use fmore_fl::engine::{shared_pool, RoundEngine, Task, WorkerPool};
use fmore_fl::metrics::TrainingHistory;
use fmore_fl::selection::SelectionStrategy;
use fmore_fl::trainer::FederatedTrainer;
use fmore_fl::FlConfig;
use fmore_fl::FlError;
use fmore_mec::cluster::{ClusterConfig, ClusterHistory, ClusterStrategy, MecCluster};
use fmore_mec::dynamics::DynamicsConfig;
use std::sync::Arc;

/// A declarative description of one federated-learning run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable label used in reports (e.g. `"FMore"`, `"N=100"`).
    pub label: String,
    /// The federated-learning configuration.
    pub fl: FlConfig,
    /// How participants are selected each round.
    pub strategy: SelectionStrategy,
    /// Number of federated rounds.
    pub rounds: usize,
    /// RNG seed; scenarios with the same spec and seed produce bit-identical histories.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Creates a scenario spec.
    pub fn new(
        label: impl Into<String>,
        fl: FlConfig,
        strategy: SelectionStrategy,
        rounds: usize,
        seed: u64,
    ) -> Self {
        Self {
            label: label.into(),
            fl,
            strategy,
            rounds,
            seed,
        }
    }

    /// Returns the spec with the population `N` replaced (partition follows; the winner
    /// count is clamped to the new population).
    pub fn with_population(mut self, n: usize) -> Self {
        self.fl.clients = n;
        self.fl.partition.clients = n;
        if self.fl.winners_per_round > n {
            self.fl.winners_per_round = n;
        }
        self
    }

    /// Returns the spec with the per-round winner count `K` replaced (clamped to `N`).
    pub fn with_winners(mut self, k: usize) -> Self {
        self.fl.winners_per_round = k.min(self.fl.clients);
        self
    }

    /// Returns the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec relabelled.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// The result of one executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The spec's label.
    pub label: String,
    /// The selection strategy's report name ("FMore", "RandFL", …).
    pub strategy: String,
    /// The full training history.
    pub history: TrainingHistory,
}

/// A declarative description of one MEC-cluster run (Figs. 12–13).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScenarioSpec {
    /// Human-readable label used in reports.
    pub label: String,
    /// The cluster configuration.
    pub cluster: ClusterConfig,
    /// The scheme the cluster runs.
    pub strategy: ClusterStrategy,
    /// Number of cluster rounds.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterScenarioSpec {
    /// Creates a cluster scenario spec.
    pub fn new(
        label: impl Into<String>,
        cluster: ClusterConfig,
        strategy: ClusterStrategy,
        rounds: usize,
        seed: u64,
    ) -> Self {
        Self {
            label: label.into(),
            cluster,
            strategy,
            rounds,
            seed,
        }
    }

    /// Returns the spec with churn/deadline dynamics attached (see
    /// [`fmore_mec::dynamics`]) — the knob that turns a static cluster scenario into a
    /// dynamic-MEC one.
    pub fn with_dynamics(mut self, dynamics: DynamicsConfig) -> Self {
        self.cluster.dynamics = Some(dynamics);
        self
    }

    /// Returns the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec relabelled.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// The result of one executed cluster scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// The spec's label.
    pub label: String,
    /// The scheme's report name.
    pub strategy: String,
    /// The full cluster history (learning metrics plus simulated wall-clock).
    pub history: ClusterHistory,
}

/// Executes scenarios on a worker pool shared with the round engine.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    pool: Arc<WorkerPool>,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioRunner {
    /// A runner on the process-wide shared pool.
    pub fn new() -> Self {
        Self {
            pool: shared_pool(),
        }
    }

    /// A runner on a private pool with `threads` workers (`0` means the default size); used
    /// by the determinism tests to compare 1-thread and N-thread execution.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            pool: Arc::new(WorkerPool::new(threads)),
        }
    }

    /// A runner submitting to an existing pool.
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        Self { pool }
    }

    /// The pool this runner submits to.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// A round engine bound to this runner's pool (what the executed trainers run on).
    pub fn engine(&self) -> RoundEngine {
        RoundEngine::with_pool(Arc::clone(&self.pool))
    }

    /// Builds (without running) the trainer a spec describes — for experiments that need to
    /// inspect the constructed population (e.g. the Fig. 8 score distribution).
    ///
    /// # Errors
    ///
    /// Propagates trainer-construction failures.
    pub fn trainer(&self, spec: &ScenarioSpec) -> Result<FederatedTrainer, SimError> {
        Ok(FederatedTrainer::with_engine(
            spec.fl.clone(),
            spec.strategy.clone(),
            spec.seed,
            self.engine(),
        )?)
    }

    /// Runs one scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates trainer-construction and auction failures.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioOutcome, SimError> {
        let mut trainer = self.trainer(spec)?;
        let strategy = trainer.strategy().name().to_string();
        let history = trainer.run(spec.rounds)?;
        Ok(ScenarioOutcome {
            label: spec.label.clone(),
            strategy,
            history,
        })
    }

    /// Runs independent scenarios in parallel on the pool, returning outcomes in spec order.
    ///
    /// # Errors
    ///
    /// Returns the first (in spec order) scenario failure.
    pub fn run_all(&self, specs: &[ScenarioSpec]) -> Result<Vec<ScenarioOutcome>, SimError> {
        let results = self.try_map(specs.to_vec(), {
            let pool = Arc::clone(&self.pool);
            move |spec: ScenarioSpec| ScenarioRunner::with_pool(Arc::clone(&pool)).run(&spec)
        })?;
        results.into_iter().collect()
    }

    /// Runs one cluster scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates cluster-construction, auction, and training failures.
    pub fn run_cluster(&self, spec: &ClusterScenarioSpec) -> Result<ClusterOutcome, SimError> {
        let mut cluster = MecCluster::with_engine(
            spec.cluster.clone(),
            spec.strategy,
            spec.seed,
            self.engine(),
        )?;
        let history = cluster.run(spec.rounds)?;
        Ok(ClusterOutcome {
            label: spec.label.clone(),
            strategy: spec.strategy.name().to_string(),
            history,
        })
    }

    /// Runs independent cluster scenarios in parallel on the pool, in spec order.
    ///
    /// # Errors
    ///
    /// Returns the first (in spec order) scenario failure.
    pub fn run_clusters(
        &self,
        specs: &[ClusterScenarioSpec],
    ) -> Result<Vec<ClusterOutcome>, SimError> {
        let results = self.try_map(specs.to_vec(), {
            let pool = Arc::clone(&self.pool);
            move |spec: ClusterScenarioSpec| {
                ScenarioRunner::with_pool(Arc::clone(&pool)).run_cluster(&spec)
            }
        })?;
        results.into_iter().collect()
    }

    /// Applies `f` to every input in parallel on the pool, preserving input order — the
    /// primitive behind sweep experiments (one auction game or training run per point).
    ///
    /// Panics if any task panics (the batch-driver contract: an experiment point that dies
    /// should abort its figure). Service-facing callers use
    /// [`ScenarioRunner::try_map`] instead, which surfaces the panic as a typed error.
    pub fn map<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        self.try_map(inputs, f)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Checked twin of [`ScenarioRunner::map`]: every task runs through the executor's
    /// panic-catching path, so one panicking input yields [`SimError::Fl`] (carrying the
    /// [`fmore_fl::JobPanic`] attribution) after every sibling completed — the pool and the
    /// caller both survive.
    ///
    /// # Errors
    ///
    /// The first (in input order) task panic, as a typed error.
    pub fn try_map<I, T, F>(&self, inputs: Vec<I>, f: F) -> Result<Vec<T>, SimError>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let tasks: Vec<Task<T>> = inputs
            .into_iter()
            .map(|input| {
                let f = Arc::clone(&f);
                Box::new(move || f(input)) as Task<T>
            })
            .collect();
        let mut out = Vec::with_capacity(tasks.len());
        for slot in self.pool.run_indexed_checked(tasks) {
            out.push(slot.map_err(FlError::from)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_ml::dataset::TaskKind;

    fn quick_spec(strategy: SelectionStrategy, seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(
            "quick",
            FlConfig::fast_test(TaskKind::MnistO),
            strategy,
            2,
            seed,
        )
    }

    #[test]
    fn spec_builders_keep_config_consistent() {
        let spec = quick_spec(SelectionStrategy::fmore(), 1)
            .with_population(6)
            .with_winners(10)
            .with_seed(5)
            .with_label("tuned");
        assert_eq!(spec.fl.clients, 6);
        assert_eq!(spec.fl.partition.clients, 6);
        assert_eq!(spec.fl.winners_per_round, 6, "K is clamped to N");
        assert_eq!(spec.seed, 5);
        assert_eq!(spec.label, "tuned");
        assert!(spec.fl.validate().is_ok());
    }

    #[test]
    fn runner_executes_a_scenario() {
        let runner = ScenarioRunner::new();
        let outcome = runner
            .run(&quick_spec(SelectionStrategy::fmore(), 3))
            .unwrap();
        assert_eq!(outcome.strategy, "FMore");
        assert_eq!(outcome.history.rounds.len(), 2);
        assert!(outcome.history.total_payment() > 0.0);
    }

    #[test]
    fn parallel_and_sequential_execution_agree() {
        let specs: Vec<ScenarioSpec> = [
            SelectionStrategy::fmore(),
            SelectionStrategy::random(),
            SelectionStrategy::fixed_first(4),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, s)| quick_spec(s, 10 + i as u64))
        .collect();

        let runner = ScenarioRunner::new();
        let parallel = runner.run_all(&specs).unwrap();
        let sequential: Vec<ScenarioOutcome> =
            specs.iter().map(|s| runner.run(s).unwrap()).collect();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel[0].strategy, "FMore");
        assert_eq!(parallel[1].strategy, "RandFL");
        assert_eq!(parallel[2].strategy, "FixFL");
    }

    #[test]
    fn pool_size_does_not_change_outcomes() {
        let spec = quick_spec(SelectionStrategy::fmore(), 21);
        let one = ScenarioRunner::with_threads(1).run(&spec).unwrap();
        let many = ScenarioRunner::with_threads(4).run(&spec).unwrap();
        assert_eq!(one, many);
    }

    #[test]
    fn cluster_scenarios_run_in_parallel() {
        use fmore_mec::cluster::ClusterConfig;
        let specs = vec![
            ClusterScenarioSpec::new(
                "fmore",
                ClusterConfig::fast_test(),
                ClusterStrategy::FMore,
                2,
                33,
            ),
            ClusterScenarioSpec::new(
                "randfl",
                ClusterConfig::fast_test(),
                ClusterStrategy::RandFL,
                2,
                33,
            ),
        ];
        let runner = ScenarioRunner::new();
        let outcomes = runner.run_clusters(&specs).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].strategy, "FMore");
        assert_eq!(outcomes[1].strategy, "RandFL");
        assert_eq!(outcomes[0].history.rounds.len(), 2);
        // Parallel matches sequential.
        assert_eq!(outcomes[0], runner.run_cluster(&specs[0]).unwrap());
    }

    #[test]
    fn cluster_spec_dynamics_knob_enables_churn() {
        use fmore_mec::cluster::ClusterConfig;
        use fmore_mec::dynamics::{ChurnModel, DynamicsConfig};
        let spec = ClusterScenarioSpec::new(
            "dynamic",
            ClusterConfig::fast_test(),
            ClusterStrategy::FMore,
            2,
            44,
        )
        .with_dynamics(DynamicsConfig::new(ChurnModel::edge_default()).with_deadline(90.0))
        .with_seed(45)
        .with_label("churny");
        assert!(spec.cluster.dynamics.is_some());
        assert_eq!(spec.seed, 45);
        assert_eq!(spec.label, "churny");
        let outcome = ScenarioRunner::new().run_cluster(&spec).unwrap();
        assert_eq!(outcome.history.rounds.len(), 2);
        // Pool size does not change a dynamic outcome either.
        let one = ScenarioRunner::with_threads(1).run_cluster(&spec).unwrap();
        assert_eq!(outcome, one);
    }

    #[test]
    fn map_preserves_input_order() {
        let runner = ScenarioRunner::with_threads(3);
        let squares = runner.map((0..32usize).collect(), |i| i * i);
        assert_eq!(squares, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_surfaces_panics_as_typed_errors() {
        let runner = ScenarioRunner::with_threads(2);
        let err = runner
            .try_map((0..8usize).collect(), |i| {
                assert!(i != 3, "input three dies");
                i * 2
            })
            .unwrap_err();
        assert!(
            matches!(err, SimError::Fl(FlError::JobPanic(ref p)) if p.slot == 3),
            "{err}"
        );
        // The pool survives the poisoned batch.
        assert_eq!(runner.try_map(vec![5usize], |i| i * 2).unwrap(), vec![10]);
    }

    #[test]
    fn failures_propagate_from_parallel_runs() {
        let mut bad = quick_spec(SelectionStrategy::fmore(), 1);
        bad.fl.winners_per_round = 0;
        let runner = ScenarioRunner::new();
        let err = runner.run_all(&[bad]).unwrap_err();
        assert!(matches!(err, SimError::Fl(_)));
    }
}
